//! Umbrella crate for the Tile-Wise Sparsity (SC'20) reproduction.
//!
//! Re-exports every workspace crate under one roof so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! ```
//! use tile_wise_repro::prelude::*;
//!
//! let weight = Matrix::random_uniform(64, 64, 1.0, 42);
//! let scores = ImportanceScores::magnitude(&weight);
//! assert_eq!(scores.shape(), weight.shape());
//! ```

pub use tilewise;
pub use tw_gpu_sim as gpu_sim;
pub use tw_models as models;
pub use tw_pruning as pruning;
pub use tw_serve as serve;
pub use tw_sparse as sparse;
pub use tw_tensor as tensor;

/// Commonly used types from across the workspace.
pub mod prelude {
    pub use tilewise::{
        AutoPlanner, Backend, ExecutionConfig, InferenceSession, KernelBackend, KernelRegistry,
        ModelEvaluation, PatternChoice, SparseModelReport, TewMatrix, TileWiseMatrix,
        TileWisePruner,
    };
    pub use tw_gpu_sim::{CoreKind, GpuDevice, KernelCounters};
    pub use tw_models::{
        Arrival, ArrivalProcess, ModelKind, RequestGenerator, TrafficClass, TrafficSpec, Workload,
    };
    pub use tw_pruning::{ImportanceScores, PruningPattern, SparsityTarget};
    pub use tw_serve::{
        serve_closed_loop, serve_open_loop, Admission, AdmissionConfig, ClassPolicy, GpuDwell,
        ServeConfig, ServeReport, Server, ShedReason,
    };
    pub use tw_sparse::{CscMatrix, CsrMatrix};
    pub use tw_tensor::{gemm, Matrix};
}
