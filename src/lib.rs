//! Umbrella crate for the Tile-Wise Sparsity (SC'20) reproduction.
//!
//! Re-exports every workspace crate under one roof so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! ```
//! use tile_wise_repro::prelude::*;
//!
//! let weight = Matrix::random_uniform(64, 64, 1.0, 42);
//! let scores = ImportanceScores::magnitude(&weight);
//! assert_eq!(scores.shape(), weight.shape());
//! ```

pub use tilewise;
pub use tw_cluster as cluster;
pub use tw_gpu_sim as gpu_sim;
pub use tw_memory as memory;
pub use tw_models as models;
pub use tw_pruning as pruning;
pub use tw_serve as serve;
pub use tw_sparse as sparse;
pub use tw_tensor as tensor;

/// Shared setup for the serving-flavoured examples (`serving`,
/// `traffic_scenarios`, `cluster`): build the auto-planned synthetic pruned
/// chain they all serve and print the one banner they all printed by hand
/// before.
pub mod demo {
    use std::sync::Arc;
    use tilewise::{Backend, InferenceSession};

    /// The demo defaults every serving example shares: 75% tile-wise
    /// sparsity at granularity 32, seed 42, auto-planned kernels.
    pub const SPARSITY: f64 = 0.75;
    /// Tile granularity of the demo chain.
    pub const GRANULARITY: usize = 32;
    /// Pruning seed of the demo chain.
    pub const SEED: u64 = 42;

    /// Builds the demo model's pruned tiles for `dims` (see
    /// [`InferenceSession::synthetic_tiles`]).
    pub fn tiles(dims: &[usize]) -> Vec<tilewise::TileWiseMatrix> {
        InferenceSession::synthetic_tiles(dims, SPARSITY, GRANULARITY, SEED)
    }

    /// Builds the auto-planned demo session over `dims` and prints the
    /// standard banner (layer count, plan, dims, sparsity).
    pub fn announced_session(dims: &[usize]) -> Arc<InferenceSession> {
        let session = Arc::new(InferenceSession::new(tiles(dims), Backend::Auto));
        println!(
            "serving a {}-layer chain, input dim {}, output dim {}, {:.1}% sparse, auto-planned kernels [{}]",
            session.num_layers(),
            session.input_dim(),
            session.output_dim(),
            session.sparsity() * 100.0,
            session.plan_summary(),
        );
        session
    }
}

/// Commonly used types from across the workspace.
pub mod prelude {
    pub use tilewise::{
        AutoPlanner, Backend, ExecutionConfig, InferenceSession, KernelBackend, KernelRegistry,
        ModelEvaluation, PatternChoice, SparseModelReport, TewMatrix, TileWiseMatrix,
        TileWisePruner,
    };
    pub use tw_cluster::{
        AutoscalerConfig, BalancerKind, Cluster, ClusterConfig, ClusterReport, LoadBalancer,
        Replica, ReplicaSpec,
    };
    pub use tw_gpu_sim::{CoreKind, GpuDevice, KernelCounters, TransferCost};
    pub use tw_memory::{
        EvictionPolicy, MemoryPool, ModelRegistry, PolicyKind, TileCache, TileKey, WeightTile,
    };
    pub use tw_models::{
        Arrival, ArrivalProcess, ModelKind, RequestGenerator, TrafficClass, TrafficSpec, Workload,
    };
    pub use tw_pruning::{ImportanceScores, PruningPattern, SparsityTarget};
    pub use tw_serve::{
        serve_closed_loop, serve_open_loop, Admission, AdmissionConfig, ClassPolicy, GpuDwell,
        MemoryConfig, ServeConfig, ServeReport, Server, ShedReason,
    };
    pub use tw_sparse::{CscMatrix, CsrMatrix};
    pub use tw_tensor::{gemm, Matrix};
}
