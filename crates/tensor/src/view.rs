//! Borrowed, strided views over a [`Matrix`].
//!
//! Views let the tiled GEMM code and the tile-wise pruning code address a
//! rectangular region of a larger matrix (an `A_tile` / `B_tile` in the
//! paper's terminology) without copying it.

use crate::matrix::Matrix;

/// An immutable rectangular view into a [`Matrix`].
#[derive(Clone, Copy, Debug)]
pub struct MatrixView<'a> {
    data: &'a [f32],
    /// Stride between consecutive rows of the view in the parent buffer.
    row_stride: usize,
    rows: usize,
    cols: usize,
}

impl<'a> MatrixView<'a> {
    /// A view over the entire matrix.
    pub fn full(m: &'a Matrix) -> Self {
        Self { data: m.as_slice(), row_stride: m.cols(), rows: m.rows(), cols: m.cols() }
    }

    /// A view over rows `[r0, r0+rows)` and columns `[c0, c0+cols)` of `m`.
    ///
    /// # Panics
    /// Panics if the window extends past the matrix bounds.
    pub fn window(m: &'a Matrix, r0: usize, c0: usize, rows: usize, cols: usize) -> Self {
        assert!(r0 + rows <= m.rows(), "row window out of bounds");
        assert!(c0 + cols <= m.cols(), "col window out of bounds");
        let start = r0 * m.cols() + c0;
        // The view's last addressable element is at offset
        // (rows-1)*row_stride + cols-1 relative to `start`.
        let end = if rows == 0 || cols == 0 { start } else { start + (rows - 1) * m.cols() + cols };
        Self { data: &m.as_slice()[start..end], row_stride: m.cols(), rows, cols }
    }

    /// Number of rows in the view.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the view.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.row_stride + c]
    }

    /// Row `r` of the view as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.row_stride;
        &self.data[start..start + self.cols]
    }

    /// Copies the view into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| self.get(r, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_fn(4, 5, |r, c| (r * 5 + c) as f32)
    }

    #[test]
    fn full_view_matches_matrix() {
        let m = sample();
        let v = MatrixView::full(&m);
        assert_eq!(v.rows(), 4);
        assert_eq!(v.cols(), 5);
        for r in 0..4 {
            for c in 0..5 {
                assert_eq!(v.get(r, c), m.get(r, c));
            }
        }
    }

    #[test]
    fn window_view_offsets() {
        let m = sample();
        let v = MatrixView::window(&m, 1, 2, 2, 3);
        assert_eq!(v.get(0, 0), m.get(1, 2));
        assert_eq!(v.get(1, 2), m.get(2, 4));
        assert_eq!(v.row(0), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn window_to_matrix_round_trip() {
        let m = sample();
        let v = MatrixView::window(&m, 0, 1, 3, 2);
        let owned = v.to_matrix();
        assert_eq!(owned, m.submatrix(0, 3, 1, 3));
    }

    #[test]
    fn empty_window_is_allowed() {
        let m = sample();
        let v = MatrixView::window(&m, 2, 2, 0, 0);
        assert_eq!(v.rows(), 0);
        assert_eq!(v.cols(), 0);
        assert_eq!(v.to_matrix().len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn window_out_of_bounds_panics() {
        let m = sample();
        let _ = MatrixView::window(&m, 3, 0, 2, 2);
    }
}
