//! Row-major dense `f32` matrix.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense, row-major `f32` matrix.
///
/// The matrix is the unit of weight storage throughout the workspace: DNN
/// weight matrices, im2col-lowered convolution filters, activation inputs and
/// GEMM outputs are all `Matrix` values.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of the (row, col) index.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (handy in tests).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows are not allowed");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// A matrix with entries drawn i.i.d. from `U(-scale, scale)`, seeded.
    pub fn random_uniform(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
    }

    /// A matrix with entries drawn i.i.d. from `N(0, std^2)`, seeded.
    pub fn random_normal(rows: usize, cols: usize, std: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = NormalApprox { std };
        Self::from_fn(rows, cols, |_, _| dist.sample(&mut rng))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the row-major backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the row-major backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access with bounds checking in debug builds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets a single element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A single row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A single row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a freshly allocated vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Extracts the sub-matrix of rows `[r0, r1)` and columns `[c0, c1)`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        Matrix::from_fn(r1 - r0, c1 - c0, |r, c| self.get(r0 + r, c0 + c))
    }

    /// Selects a subset of columns (in the given order) into a new matrix.
    pub fn select_cols(&self, cols: &[usize]) -> Matrix {
        Matrix::from_fn(self.rows, cols.len(), |r, i| self.get(r, cols[i]))
    }

    /// Selects a subset of rows (in the given order) into a new matrix.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        Matrix::from_fn(rows.len(), self.cols, |i, c| self.get(rows[i], c))
    }

    /// Number of exactly-zero elements.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&v| v == 0.0).count()
    }

    /// Number of non-zero elements.
    pub fn count_nonzeros(&self) -> usize {
        self.len() - self.count_zeros()
    }

    /// Fraction of elements that are exactly zero (the sparsity the paper
    /// reports).
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.count_zeros() as f64 / self.len() as f64
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of the absolute values of all elements.
    pub fn abs_sum(&self) -> f64 {
        self.data.iter().map(|v| v.abs() as f64).sum()
    }

    /// Element-wise in-place scaling.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Element-wise addition: `self + other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise subtraction: `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in sub");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in hadamard");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Zeroes every element whose corresponding mask entry is `false`.
    ///
    /// The mask must have the same shape as the matrix, in row-major order.
    pub fn apply_mask(&self, keep: &[bool]) -> Matrix {
        assert_eq!(keep.len(), self.len(), "mask length mismatch");
        let data = self.data.iter().zip(keep).map(|(&v, &k)| if k { v } else { 0.0 }).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Maximum absolute difference from another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in max_abs_diff");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }

    /// True when every element of the two matrices agrees within `tol`
    /// (see [`crate::approx_eq`]).
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(&a, &b)| crate::approx_eq(a, b, tol))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

/// A small Box-Muller based normal sampler so we avoid depending on
/// `rand_distr` from this low-level crate.
struct NormalApprox {
    std: f32,
}

impl Distribution<f32> for NormalApprox {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        z * self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert_eq!(m.count_zeros(), 12);
        assert_eq!(m.sparsity(), 1.0);
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_and_indexing() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 1)], 5.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_wrong_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::random_uniform(5, 7, 1.0, 42);
        let t = m.transpose();
        assert_eq!(t.shape(), (7, 5));
        assert_eq!(t.transpose(), m);
        assert_eq!(m.get(2, 3), t.get(3, 2));
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], 6.0);
        assert_eq!(s[(1, 1)], 11.0);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let cols = m.select_cols(&[2, 0]);
        assert_eq!(cols.shape(), (3, 2));
        assert_eq!(cols[(0, 0)], 2.0);
        assert_eq!(cols[(0, 1)], 0.0);
        let rows = m.select_rows(&[1]);
        assert_eq!(rows.shape(), (1, 3));
        assert_eq!(rows.row(0), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn sparsity_counts() {
        let m = Matrix::from_vec(2, 2, vec![0.0, 1.0, 0.0, 2.0]);
        assert_eq!(m.count_zeros(), 2);
        assert_eq!(m.count_nonzeros(), 2);
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mask_zeroes_elements() {
        let m = Matrix::filled(2, 2, 3.0);
        let masked = m.apply_mask(&[true, false, false, true]);
        assert_eq!(masked.as_slice(), &[3.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!((m.abs_sum() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn random_matrices_are_deterministic() {
        let a = Matrix::random_uniform(4, 4, 1.0, 7);
        let b = Matrix::random_uniform(4, 4, 1.0, 7);
        let c = Matrix::random_uniform(4, 4, 1.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_normal_has_reasonable_spread() {
        let m = Matrix::random_normal(100, 100, 1.0, 3);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / m.len() as f32;
        let var: f32 =
            m.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn max_abs_diff_and_approx_eq() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b.set(1, 1, 1.0005);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(a.max_abs_diff(&b) < 1e-3);
        b.set(0, 0, 2.0);
        assert!(!a.approx_eq(&b, 1e-3));
    }
}
