//! Dense GEMM kernels.
//!
//! The paper's entire premise is that commodity accelerators execute *tiled
//! dense GEMM*.  This module provides functionally exact CPU implementations
//! of the kernels the rest of the workspace relies on:
//!
//! * [`gemm`] — reference triple loop (ikj order, cache friendly for
//!   row-major operands).
//! * [`gemm_blocked`] — the tiled formulation mirroring Fig. 4 ①: the output
//!   is computed tile by tile, each tile touching `Ty` rows of `A` and `G`
//!   columns of `B`.
//! * [`gemm_par`] — rayon-parallel over output row blocks, standing in for
//!   the many-SM parallel execution.
//! * [`gemm_masked`] — GEMM that skips pruned rows/columns of `B` according
//!   to `mask_k` / `mask_n`, i.e. the `StreamMaskedGEMM` kernel of Listing 1.
//! * [`batched_gemm`] — the batched formulation used after tile re-packing.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// Shape of a GEMM `C(MxN) = A(MxK) * B(KxN)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
    /// Columns of `A` / rows of `B` (the reduction dimension).
    pub k: usize,
}

impl GemmShape {
    /// Convenience constructor.
    pub const fn new(m: usize, n: usize, k: usize) -> Self {
        Self { m, n, k }
    }

    /// Number of floating point operations (multiply + add counted
    /// separately), the quantity the paper's FLOPS-efficiency counter uses.
    pub const fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Bytes moved assuming each operand is read/written exactly once.
    pub const fn min_bytes(&self, elem_size: usize) -> u64 {
        ((self.m * self.k + self.k * self.n + self.m * self.n) * elem_size) as u64
    }
}

/// Reference GEMM: `C = A * B`.
///
/// # Panics
/// Panics if the inner dimensions do not agree.
pub fn gemm(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a.get(i, p);
            if aip == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            let c_row = c.row_mut(i);
            for j in 0..n {
                c_row[j] += aip * b_row[j];
            }
        }
    }
    c
}

/// GEMM accumulating into an existing output: `C += A * B`.
pub fn gemm_acc(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dimension mismatch");
    assert_eq!(c.shape(), (a.rows(), b.cols()), "GEMM output shape mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    for i in 0..m {
        for p in 0..k {
            let aip = a.get(i, p);
            if aip == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            let c_row = c.row_mut(i);
            for j in 0..n {
                c_row[j] += aip * b_row[j];
            }
        }
    }
}

/// Tiled GEMM with output tiles of `ty x g` (Fig. 4 ①).
///
/// Functionally identical to [`gemm`]; the tiling only changes the loop
/// structure, which is exactly the property the tile-wise pattern exploits.
pub fn gemm_blocked(a: &Matrix, b: &Matrix, ty: usize, g: usize) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dimension mismatch");
    assert!(ty > 0 && g > 0, "tile sizes must be positive");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i0 in (0..m).step_by(ty) {
        let i1 = (i0 + ty).min(m);
        for j0 in (0..n).step_by(g) {
            let j1 = (j0 + g).min(n);
            // One output tile: rows [i0, i1) x cols [j0, j1).
            for i in i0..i1 {
                for p in 0..k {
                    let aip = a.get(i, p);
                    if aip == 0.0 {
                        continue;
                    }
                    for j in j0..j1 {
                        c[(i, j)] += aip * b.get(p, j);
                    }
                }
            }
        }
    }
    c
}

/// Rayon-parallel GEMM, splitting the output by rows across the thread pool.
pub fn gemm_par(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = vec![0.0f32; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        for p in 0..k {
            let aip = a.get(i, p);
            if aip == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            for j in 0..n {
                c_row[j] += aip * b_row[j];
            }
        }
    });
    Matrix::from_vec(m, n, out)
}

/// Masked GEMM over one weight tile (Listing 1's `StreamMaskedGEMM`).
///
/// `mask_k[p]` is false when row `p` of `B` has been pruned (so the
/// corresponding column of `A` is skipped), and `mask_n[j]` is false when
/// column `j` of `B` has been pruned (so column `j` of `C` is left zero).
///
/// `b` is supplied *pre-compacted*: it contains only the kept rows/columns,
/// in their original relative order, exactly as the paper stores `B_tile`
/// after the offline pre-processing step.
pub fn gemm_masked(a: &Matrix, b_compact: &Matrix, mask_k: &[bool], mask_n: &[bool]) -> Matrix {
    let kept_k: Vec<usize> =
        mask_k.iter().enumerate().filter_map(|(i, &keep)| keep.then_some(i)).collect();
    let kept_n: Vec<usize> =
        mask_n.iter().enumerate().filter_map(|(j, &keep)| keep.then_some(j)).collect();
    assert_eq!(a.cols(), mask_k.len(), "mask_k length must match K");
    assert_eq!(
        b_compact.shape(),
        (kept_k.len(), kept_n.len()),
        "compacted B shape must match mask survivor counts"
    );
    let m = a.rows();
    let n = mask_n.len();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for (bp, &p) in kept_k.iter().enumerate() {
            let aip = a.get(i, p);
            if aip == 0.0 {
                continue;
            }
            let b_row = b_compact.row(bp);
            for (bj, &j) in kept_n.iter().enumerate() {
                c[(i, j)] += aip * b_row[bj];
            }
        }
    }
    c
}

/// Batched GEMM: `C_i = A * B_i` for every `B_i` in the batch, the execution
/// form the paper's batching optimisation (Fig. 7 ③) reduces to.
///
/// All `B_i` must share the same number of rows (`A.cols()`); their column
/// counts may differ (non-uniform tiles), in which case each output matches
/// its own `B_i`.
pub fn batched_gemm(a: &Matrix, bs: &[&Matrix]) -> Vec<Matrix> {
    bs.iter().map(|b| gemm(a, b)).collect()
}

/// Rayon-parallel batched GEMM.
pub fn batched_gemm_par(a: &Matrix, bs: &[&Matrix]) -> Vec<Matrix> {
    bs.par_iter().map(|b| gemm(a, b)).collect()
}

/// The serving-side batched entry point: many activation matrices against
/// one shared weight matrix, `C_i = A_i * B`, parallel over batch items.
///
/// This is the dual of [`batched_gemm_par`]: in a serving batch every
/// request brings its own activations while the (pruned) weights are shared,
/// so the batch axis lives on `A`.
pub fn gemm_many(activations: &[&Matrix], b: &Matrix) -> Vec<Matrix> {
    activations.par_iter().map(|a| gemm(a, b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_TOL;

    fn small_a() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]])
    }

    fn small_b() -> Matrix {
        Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]])
    }

    #[test]
    fn gemm_known_result() {
        let c = gemm(&small_a(), &small_b());
        let expected =
            Matrix::from_rows(&[&[27.0, 30.0, 33.0], &[61.0, 68.0, 75.0], &[95.0, 106.0, 117.0]]);
        assert!(c.approx_eq(&expected, DEFAULT_TOL));
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = Matrix::random_uniform(6, 6, 1.0, 1);
        let c = gemm(&a, &Matrix::identity(6));
        assert!(c.approx_eq(&a, DEFAULT_TOL));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_shape_mismatch_panics() {
        let _ = gemm(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }

    #[test]
    fn gemm_acc_accumulates() {
        let a = small_a();
        let b = small_b();
        let mut c = gemm(&a, &b);
        gemm_acc(&a, &b, &mut c);
        let doubled = {
            let mut d = gemm(&a, &b);
            d.scale(2.0);
            d
        };
        assert!(c.approx_eq(&doubled, DEFAULT_TOL));
    }

    #[test]
    fn blocked_matches_reference() {
        let a = Matrix::random_uniform(33, 47, 1.0, 2);
        let b = Matrix::random_uniform(47, 29, 1.0, 3);
        let reference = gemm(&a, &b);
        for (ty, g) in [(8, 8), (16, 32), (33, 29), (5, 7)] {
            let c = gemm_blocked(&a, &b, ty, g);
            assert!(c.approx_eq(&reference, DEFAULT_TOL), "tile {ty}x{g}");
        }
    }

    #[test]
    fn parallel_matches_reference() {
        let a = Matrix::random_uniform(40, 64, 1.0, 4);
        let b = Matrix::random_uniform(64, 24, 1.0, 5);
        assert!(gemm_par(&a, &b).approx_eq(&gemm(&a, &b), DEFAULT_TOL));
    }

    #[test]
    fn masked_gemm_equals_zeroed_dense() {
        let k = 12;
        let n = 10;
        let a = Matrix::random_uniform(7, k, 1.0, 6);
        let b = Matrix::random_uniform(k, n, 1.0, 7);
        let mask_k: Vec<bool> = (0..k).map(|i| i % 3 != 0).collect();
        let mask_n: Vec<bool> = (0..n).map(|j| j != 2 && j != 7).collect();

        // Dense reference: zero the pruned rows/cols of B.
        let mut b_zeroed = b.clone();
        for (p, &keep) in mask_k.iter().enumerate() {
            if !keep {
                for j in 0..n {
                    b_zeroed.set(p, j, 0.0);
                }
            }
        }
        for (j, &keep) in mask_n.iter().enumerate() {
            if !keep {
                for p in 0..k {
                    b_zeroed.set(p, j, 0.0);
                }
            }
        }
        let reference = gemm(&a, &b_zeroed);

        // Compacted B: only kept rows and cols.
        let kept_rows: Vec<usize> = (0..k).filter(|&p| mask_k[p]).collect();
        let kept_cols: Vec<usize> = (0..n).filter(|&j| mask_n[j]).collect();
        let b_compact = b.select_rows(&kept_rows).select_cols(&kept_cols);
        let c = gemm_masked(&a, &b_compact, &mask_k, &mask_n);
        assert!(c.approx_eq(&reference, DEFAULT_TOL));
    }

    #[test]
    fn masked_gemm_all_pruned_is_zero() {
        let a = Matrix::random_uniform(3, 4, 1.0, 8);
        let b_compact = Matrix::zeros(0, 0);
        let c = gemm_masked(&a, &b_compact, &[false; 4], &[false; 5]);
        assert_eq!(c.shape(), (3, 5));
        assert_eq!(c.count_zeros(), 15);
    }

    #[test]
    fn gemm_many_matches_individual() {
        let b = Matrix::random_uniform(16, 8, 1.0, 12);
        let a1 = Matrix::random_uniform(4, 16, 1.0, 13);
        let a2 = Matrix::random_uniform(9, 16, 1.0, 14);
        let outs = gemm_many(&[&a1, &a2], &b);
        assert_eq!(outs.len(), 2);
        assert!(outs[0].approx_eq(&gemm(&a1, &b), DEFAULT_TOL));
        assert!(outs[1].approx_eq(&gemm(&a2, &b), DEFAULT_TOL));
    }

    #[test]
    fn batched_matches_individual() {
        let a = Matrix::random_uniform(9, 16, 1.0, 9);
        let b1 = Matrix::random_uniform(16, 8, 1.0, 10);
        let b2 = Matrix::random_uniform(16, 5, 1.0, 11);
        let outs = batched_gemm(&a, &[&b1, &b2]);
        assert_eq!(outs.len(), 2);
        assert!(outs[0].approx_eq(&gemm(&a, &b1), DEFAULT_TOL));
        assert!(outs[1].approx_eq(&gemm(&a, &b2), DEFAULT_TOL));
        let outs_par = batched_gemm_par(&a, &[&b1, &b2]);
        assert!(outs_par[0].approx_eq(&outs[0], DEFAULT_TOL));
        assert!(outs_par[1].approx_eq(&outs[1], DEFAULT_TOL));
    }

    #[test]
    fn shape_flops_and_bytes() {
        let s = GemmShape::new(128, 768, 768);
        assert_eq!(s.flops(), 2 * 128 * 768 * 768);
        assert_eq!(s.min_bytes(2), ((128 * 768 + 768 * 768 + 128 * 768) * 2) as u64);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::DEFAULT_TOL;
    use proptest::prelude::*;

    fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
        (1..=max_dim, 1..=max_dim, any::<u64>())
            .prop_map(|(r, c, seed)| Matrix::random_uniform(r, c, 1.0, seed))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Blocked and parallel GEMM agree with the reference for arbitrary
        /// shapes and tile sizes.
        #[test]
        fn gemm_variants_agree(
            m in 1usize..24, n in 1usize..24, k in 1usize..24,
            ty in 1usize..16, g in 1usize..16, seed in any::<u64>(),
        ) {
            let a = Matrix::random_uniform(m, k, 1.0, seed);
            let b = Matrix::random_uniform(k, n, 1.0, seed.wrapping_add(1));
            let reference = gemm(&a, &b);
            prop_assert!(gemm_blocked(&a, &b, ty, g).approx_eq(&reference, DEFAULT_TOL));
            prop_assert!(gemm_par(&a, &b).approx_eq(&reference, DEFAULT_TOL));
        }

        /// (A * B)^T == B^T * A^T
        #[test]
        fn gemm_transpose_identity(a in arb_matrix(16), b_cols in 1usize..16, seed in any::<u64>()) {
            let b = Matrix::random_uniform(a.cols(), b_cols, 1.0, seed);
            let left = gemm(&a, &b).transpose();
            let right = gemm(&b.transpose(), &a.transpose());
            prop_assert!(left.approx_eq(&right, DEFAULT_TOL));
        }

        /// GEMM is linear in A: (A1 + A2) * B == A1*B + A2*B.
        #[test]
        fn gemm_is_linear(m in 1usize..12, n in 1usize..12, k in 1usize..12, seed in any::<u64>()) {
            let a1 = Matrix::random_uniform(m, k, 1.0, seed);
            let a2 = Matrix::random_uniform(m, k, 1.0, seed.wrapping_add(7));
            let b = Matrix::random_uniform(k, n, 1.0, seed.wrapping_add(13));
            let left = gemm(&a1.add(&a2), &b);
            let right = gemm(&a1, &b).add(&gemm(&a2, &b));
            prop_assert!(left.approx_eq(&right, 5e-3));
        }
    }
}
