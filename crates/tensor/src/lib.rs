//! Dense matrix substrate for the tile-wise sparsity reproduction.
//!
//! This crate provides the dense linear-algebra foundation that every other
//! crate builds on:
//!
//! * [`Matrix`] — a row-major `f32` matrix with the small set of operations
//!   the paper's workloads need (GEMM, transpose, masking, norms).
//! * [`mod@gemm`] — reference, blocked and rayon-parallel GEMM kernels plus the
//!   masked variants used by the tile-wise execution path.
//! * [`mod@im2col`] — the convolution-to-GEMM lowering used for VGG-16, exactly
//!   as the paper does ("the convolutional layer can be converted to GEMM
//!   through the img2col transformation").
//! * [`quant`] — software fp16 round-tripping, standing in for tensor-core
//!   half-precision storage.
//! * [`batch`] — the stacking convention serving batchers use to fuse
//!   per-request payloads into one activation matrix and back.
//!
//! Everything is deterministic and CPU-only; GPU behaviour is *modelled* by
//! the `tw-gpu-sim` crate, not executed here.

pub mod batch;
pub mod gemm;
pub mod im2col;
pub mod matrix;
pub mod quant;
pub mod view;

pub use batch::{stack_payloads, stack_rows, unstack_rows};
pub use gemm::{gemm, gemm_blocked, gemm_masked, gemm_par, GemmShape};
pub use im2col::{im2col, ConvShape};
pub use matrix::Matrix;
pub use view::MatrixView;

/// Tolerance used throughout the workspace when comparing f32 matrices that
/// were produced by different (but mathematically equivalent) kernels.
pub const DEFAULT_TOL: f32 = 1e-3;

/// Returns true when `a` and `b` agree within `tol` both absolutely and
/// relative to the magnitude of the values involved.
#[inline]
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0005, 1e-3));
        assert!(!approx_eq(1.0, 1.01, 1e-3));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(10_000.0, 10_005.0, 1e-3));
        assert!(!approx_eq(10_000.0, 10_200.0, 1e-3));
    }

    #[test]
    fn approx_eq_handles_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-6));
        assert!(approx_eq(0.0, 1e-7, 1e-6));
        assert!(!approx_eq(0.0, 0.5, 1e-3));
    }
}
