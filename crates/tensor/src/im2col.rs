//! Convolution-to-GEMM lowering (im2col).
//!
//! VGG-16's convolutional layers are pruned and executed as GEMMs after the
//! im2col transformation, as described in Sec. VII-A of the paper: "We prune
//! its weight matrix after applying the im2col method, which flattens the
//! filters in the same channel to a column".

use crate::matrix::Matrix;

/// Shape of a 2-D convolution in NCHW layout (single image).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (number of filters, `M` in the paper's Fig. 1).
    pub out_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Filter height (`R`).
    pub kernel_h: usize,
    /// Filter width (`S`).
    pub kernel_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvShape {
    /// A square convolution, the common case for VGG (3x3, stride 1, pad 1).
    pub fn square(in_channels: usize, out_channels: usize, size: usize, kernel: usize) -> Self {
        Self {
            in_channels,
            out_channels,
            in_h: size,
            in_w: size,
            kernel_h: kernel,
            kernel_w: kernel,
            stride: 1,
            padding: kernel / 2,
        }
    }

    /// Output height after the convolution.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output width after the convolution.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    /// The GEMM `M` dimension after lowering: number of output pixels (`E*F`).
    pub fn gemm_m(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// The GEMM `K` dimension after lowering: `C*R*S`.
    pub fn gemm_k(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }

    /// The GEMM `N` dimension after lowering: the number of filters.
    pub fn gemm_n(&self) -> usize {
        self.out_channels
    }

    /// Number of weight parameters in the convolution.
    pub fn weight_count(&self) -> usize {
        self.gemm_k() * self.gemm_n()
    }
}

/// Lowers an input feature map (shape `in_channels x in_h x in_w`, stored as
/// a `in_channels x (in_h*in_w)` matrix) into the im2col matrix of shape
/// `(out_h*out_w) x (in_channels*kernel_h*kernel_w)`.
///
/// The produced matrix left-multiplies the flattened weight matrix
/// (`gemm_k x gemm_n`) to yield the output feature map
/// (`gemm_m x out_channels`), matching the orientation in the paper's Fig. 4
/// where the weight matrix is the right-hand operand `B`.
pub fn im2col(input: &Matrix, shape: &ConvShape) -> Matrix {
    assert_eq!(
        input.shape(),
        (shape.in_channels, shape.in_h * shape.in_w),
        "input must be channels x (H*W)"
    );
    let out_h = shape.out_h();
    let out_w = shape.out_w();
    let mut out = Matrix::zeros(out_h * out_w, shape.gemm_k());
    for oy in 0..out_h {
        for ox in 0..out_w {
            let out_row = oy * out_w + ox;
            let mut col = 0;
            for c in 0..shape.in_channels {
                for ky in 0..shape.kernel_h {
                    for kx in 0..shape.kernel_w {
                        let iy = (oy * shape.stride + ky) as isize - shape.padding as isize;
                        let ix = (ox * shape.stride + kx) as isize - shape.padding as isize;
                        let v = if iy >= 0
                            && ix >= 0
                            && (iy as usize) < shape.in_h
                            && (ix as usize) < shape.in_w
                        {
                            input.get(c, iy as usize * shape.in_w + ix as usize)
                        } else {
                            0.0
                        };
                        out.set(out_row, col, v);
                        col += 1;
                    }
                }
            }
        }
    }
    out
}

/// Direct (non-lowered) convolution used as the correctness reference for
/// [`im2col`] in tests.  Weights are `out_channels x (in_channels*kh*kw)`.
pub fn conv2d_direct(input: &Matrix, weights: &Matrix, shape: &ConvShape) -> Matrix {
    assert_eq!(weights.shape(), (shape.out_channels, shape.gemm_k()));
    let out_h = shape.out_h();
    let out_w = shape.out_w();
    let mut out = Matrix::zeros(shape.out_channels, out_h * out_w);
    for oc in 0..shape.out_channels {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = 0.0;
                let mut widx = 0;
                for c in 0..shape.in_channels {
                    for ky in 0..shape.kernel_h {
                        for kx in 0..shape.kernel_w {
                            let iy = (oy * shape.stride + ky) as isize - shape.padding as isize;
                            let ix = (ox * shape.stride + kx) as isize - shape.padding as isize;
                            if iy >= 0
                                && ix >= 0
                                && (iy as usize) < shape.in_h
                                && (ix as usize) < shape.in_w
                            {
                                acc += input.get(c, iy as usize * shape.in_w + ix as usize)
                                    * weights.get(oc, widx);
                            }
                            widx += 1;
                        }
                    }
                }
                out.set(oc, oy * out_w + ox, acc);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use crate::DEFAULT_TOL;

    #[test]
    fn conv_shape_dimensions() {
        let s = ConvShape::square(64, 128, 56, 3);
        assert_eq!(s.out_h(), 56);
        assert_eq!(s.out_w(), 56);
        assert_eq!(s.gemm_m(), 56 * 56);
        assert_eq!(s.gemm_k(), 64 * 9);
        assert_eq!(s.gemm_n(), 128);
        assert_eq!(s.weight_count(), 64 * 9 * 128);
    }

    #[test]
    fn conv_shape_with_stride() {
        let s = ConvShape {
            in_channels: 3,
            out_channels: 8,
            in_h: 8,
            in_w: 8,
            kernel_h: 3,
            kernel_w: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(s.out_h(), 4);
        assert_eq!(s.out_w(), 4);
    }

    #[test]
    fn im2col_shape() {
        let s = ConvShape::square(3, 4, 5, 3);
        let input = Matrix::random_uniform(3, 25, 1.0, 1);
        let lowered = im2col(&input, &s);
        assert_eq!(lowered.shape(), (25, 27));
    }

    #[test]
    fn im2col_1x1_kernel_is_reshape() {
        let s = ConvShape {
            in_channels: 2,
            out_channels: 3,
            in_h: 4,
            in_w: 4,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            padding: 0,
        };
        let input = Matrix::random_uniform(2, 16, 1.0, 2);
        let lowered = im2col(&input, &s);
        assert_eq!(lowered.shape(), (16, 2));
        for pixel in 0..16 {
            for c in 0..2 {
                assert_eq!(lowered.get(pixel, c), input.get(c, pixel));
            }
        }
    }

    #[test]
    fn im2col_gemm_matches_direct_convolution() {
        let s = ConvShape::square(3, 5, 7, 3);
        let input = Matrix::random_uniform(3, 49, 1.0, 3);
        // weights: out_channels x K
        let weights = Matrix::random_uniform(5, s.gemm_k(), 1.0, 4);
        let direct = conv2d_direct(&input, &weights, &s);
        // Lowered: (M x K) * (K x N) = M x N, then compare against direct
        // which is out_channels x (out_h*out_w) = N x M.
        let lowered = im2col(&input, &s);
        let out = gemm(&lowered, &weights.transpose());
        assert!(out.transpose().approx_eq(&direct, DEFAULT_TOL));
    }

    #[test]
    fn im2col_padding_zeroes_border() {
        let s = ConvShape::square(1, 1, 3, 3);
        let input = Matrix::filled(1, 9, 1.0);
        let lowered = im2col(&input, &s);
        // Top-left output pixel: the first row/col of the 3x3 patch falls in
        // the padding region and must be zero.
        let first_patch = lowered.row(0);
        assert_eq!(first_patch[0], 0.0);
        assert_eq!(first_patch[4], 1.0);
    }
}
