//! Batch-stacking helpers.
//!
//! A serving batcher turns many independent requests into one activation
//! matrix (one request per row) before launching a batched kernel, and
//! splits the kernel's output back into per-request rows afterwards.  These
//! helpers are that boundary, shared by the `tw-serve` worker pool
//! ([`stack_rows`]) and the batched-vs-unbatched equivalence tests
//! ([`stack_payloads`] / [`unstack_rows`]) so every call site agrees on the
//! stacking convention (and on the error messages for ragged input).

use crate::matrix::Matrix;

/// Stacks per-request payload slices into one `batch x dim` activation
/// matrix, one request per row.
///
/// # Panics
/// Panics if `rows` is empty or the payloads have differing lengths.
pub fn stack_rows(rows: &[&[f32]]) -> Matrix {
    assert!(!rows.is_empty(), "cannot stack an empty batch");
    let dim = rows[0].len();
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            row.len(),
            dim,
            "ragged batch: row {} has {} values, row 0 has {dim}",
            i,
            row.len()
        );
    }
    Matrix::from_rows(rows)
}

/// [`stack_rows`] over owned payload vectors (the form requests arrive in).
pub fn stack_payloads(payloads: &[Vec<f32>]) -> Matrix {
    let rows: Vec<&[f32]> = payloads.iter().map(Vec::as_slice).collect();
    stack_rows(&rows)
}

/// Splits a batched output matrix back into one owned vector per request
/// row — the inverse of [`stack_rows`] after the forward pass.
pub fn unstack_rows(outputs: &Matrix) -> Vec<Vec<f32>> {
    (0..outputs.rows()).map(|r| outputs.row(r).to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_then_unstack_round_trips() {
        let payloads = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let m = stack_payloads(&payloads);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(unstack_rows(&m), payloads);
    }

    #[test]
    fn stack_rows_matches_from_rows() {
        let a = [0.5f32, -1.0];
        let b = [2.0f32, 3.0];
        let m = stack_rows(&[&a, &b]);
        assert_eq!(m, Matrix::from_rows(&[&a, &b]));
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        let _ = stack_rows(&[]);
    }

    #[test]
    #[should_panic(expected = "ragged batch")]
    fn ragged_batch_rejected() {
        let _ = stack_payloads(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
