//! Software fp16 (IEEE 754 binary16) conversion.
//!
//! The paper runs tensor-core inference in FP16 while training/CUDA-core
//! inference stay in FP32.  We reproduce the storage effect in software: a
//! round trip through [`f32_to_f16_bits`] / [`f16_bits_to_f32`] applies the
//! same precision loss the tensor-core path would see, which the tests use
//! to check that TW execution is robust to half-precision weights.

/// Converts an `f32` to IEEE binary16 bits with round-to-nearest-even.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mantissa = bits & 0x7f_ffff;

    if exp == 0xff {
        // Inf or NaN.
        let mant16 = if mantissa != 0 { 0x200 } else { 0 };
        return sign | 0x7c00 | mant16;
    }

    // Re-bias from 127 to 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        // Overflow -> infinity.
        return sign | 0x7c00;
    }
    if unbiased >= -14 {
        // Normal half-precision number.
        let half_exp = (unbiased + 15) as u32;
        let shifted = mantissa >> 13;
        let round_bit = (mantissa >> 12) & 1;
        let sticky = mantissa & 0xfff;
        let mut half = (half_exp << 10) | shifted;
        if round_bit == 1 && (sticky != 0 || (shifted & 1) == 1) {
            half += 1; // May carry into the exponent, which is correct.
        }
        return sign | half as u16;
    }
    if unbiased >= -24 {
        // Subnormal half-precision number.
        let full_mant = mantissa | 0x80_0000;
        let shift = (-14 - unbiased) as u32 + 13;
        let shifted = full_mant >> shift;
        let remainder = full_mant & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut half = shifted;
        if remainder > halfway || (remainder == halfway && (shifted & 1) == 1) {
            half += 1;
        }
        return sign | half as u16;
    }
    // Underflow to signed zero.
    sign
}

/// Converts IEEE binary16 bits back to an `f32`.
pub fn f16_bits_to_f32(half: u16) -> f32 {
    let sign = ((half & 0x8000) as u32) << 16;
    let exp = ((half >> 10) & 0x1f) as u32;
    let mant = (half & 0x3ff) as u32;

    let bits = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: value is mant * 2^-24; normalise to 1.f * 2^(-14-k).
            let mut m = mant;
            let mut shifts = 0u32;
            while m & 0x400 == 0 {
                m <<= 1;
                shifts += 1;
            }
            m &= 0x3ff;
            // mant * 2^-24 == 1.f * 2^(-14 - shifts), so the f32 exponent
            // field is (-14 - shifts) + 127 = 113 - shifts.
            let exp32 = 113 - shifts;
            sign | (exp32 << 23) | (m << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else {
        let exp32 = exp + 127 - 15;
        sign | (exp32 << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Rounds a value through fp16 and back, simulating half-precision storage.
#[inline]
pub fn quantize_f16(value: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(value))
}

/// Quantizes every element of a slice through fp16 in place.
pub fn quantize_slice_f16(values: &mut [f32]) {
    for v in values {
        *v = quantize_f16(*v);
    }
}

/// Maximum relative error introduced by one fp16 round trip for normal
/// values (half precision has a 10-bit mantissa).
pub const F16_MAX_RELATIVE_ERROR: f32 = 1.0 / 1024.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for v in [0.0f32, 1.0, -1.0, 2.0, 0.5, -0.25, 1024.0, 65504.0] {
            assert_eq!(quantize_f16(v), v, "value {v}");
        }
    }

    #[test]
    fn negative_zero_keeps_sign() {
        let q = quantize_f16(-0.0);
        assert_eq!(q, 0.0);
        assert!(q.is_sign_negative());
    }

    #[test]
    fn overflow_becomes_infinity() {
        assert!(quantize_f16(1.0e6).is_infinite());
        assert!(quantize_f16(-1.0e6).is_infinite());
        assert!(quantize_f16(-1.0e6) < 0.0);
    }

    #[test]
    fn underflow_flushes_to_zero() {
        assert_eq!(quantize_f16(1.0e-10), 0.0);
    }

    #[test]
    fn subnormals_are_representable() {
        // Smallest positive half subnormal is 2^-24 ~= 5.96e-8.
        let v = 6.0e-8f32;
        let q = quantize_f16(v);
        assert!(q > 0.0);
        assert!((q - v).abs() / v < 0.5);
    }

    #[test]
    fn nan_round_trips_as_nan() {
        assert!(quantize_f16(f32::NAN).is_nan());
    }

    #[test]
    fn relative_error_bound_on_normals() {
        let mut x = 0.001f32;
        while x < 1000.0 {
            let q = quantize_f16(x);
            let rel = (q - x).abs() / x;
            assert!(rel <= F16_MAX_RELATIVE_ERROR, "x={x} q={q} rel={rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn quantize_slice_applies_to_all() {
        let mut v = vec![0.1f32, 0.2, 0.3];
        quantize_slice_f16(&mut v);
        for (q, orig) in v.iter().zip([0.1f32, 0.2, 0.3]) {
            assert!((q - orig).abs() / orig <= F16_MAX_RELATIVE_ERROR);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Round-tripping twice is idempotent: fp16 values are fixed points.
        #[test]
        fn quantization_is_idempotent(v in -1.0e4f32..1.0e4) {
            let once = quantize_f16(v);
            let twice = quantize_f16(once);
            prop_assert_eq!(once.to_bits(), twice.to_bits());
        }

        /// Quantization never changes the sign of a (non-tiny) value.
        #[test]
        fn quantization_preserves_sign(v in 0.001f32..6.0e4) {
            prop_assert!(quantize_f16(v) > 0.0);
            prop_assert!(quantize_f16(-v) < 0.0);
        }

        /// Relative error is within the fp16 mantissa bound for normals.
        #[test]
        fn relative_error_bounded(v in 0.001f32..6.0e4) {
            let q = quantize_f16(v);
            prop_assert!(((q - v).abs() / v) <= F16_MAX_RELATIVE_ERROR);
        }
    }
}
