//! Block-wise (BW) pruning.
//!
//! BW "divides the weight matrix to small blocks, and treats a block as the
//! basic pruning unit" (Sec. III-A).  Blocks are ranked by their aggregate
//! importance and the lowest-scoring fraction is removed; the survivors run
//! as small dense GEMMs (BlockSparse).

use crate::importance::{smallest_k_indices, ImportanceScores};
use crate::pattern::{PatternMask, SparsityTarget};

/// Identifies one block inside one matrix of a global pruning problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct BlockRef {
    matrix: usize,
    block_row: usize,
    block_col: usize,
}

/// Prunes a single weight matrix block-wise to the target sparsity.
pub fn prune(scores: &ImportanceScores, block_size: usize, target: SparsityTarget) -> PatternMask {
    prune_global(std::slice::from_ref(scores), block_size, target)
        .pop()
        .expect("one mask per matrix")
}

/// Prunes several matrices block-wise with a global rank across all blocks
/// of all matrices, mirroring the global ranking used for TW so the
/// comparison between the two patterns is apples-to-apples.
pub fn prune_global(
    scores: &[ImportanceScores],
    block_size: usize,
    target: SparsityTarget,
) -> Vec<PatternMask> {
    assert!(block_size > 0, "block size must be positive");

    let mut block_refs = Vec::new();
    let mut block_scores = Vec::new();
    for (mi, s) in scores.iter().enumerate() {
        let (rows, cols) = s.shape();
        let brs = rows.div_ceil(block_size);
        let bcs = cols.div_ceil(block_size);
        for br in 0..brs {
            for bc in 0..bcs {
                block_refs.push(BlockRef { matrix: mi, block_row: br, block_col: bc });
                block_scores.push(s.block_sum(br * block_size, bc * block_size, block_size));
            }
        }
    }

    // Prune the lowest-scoring fraction of blocks.  Because edge blocks can
    // be smaller, we prune by block count (what BlockSparse's block-level
    // sparsity means) rather than element count.
    let prune_count = (target.fraction() * block_refs.len() as f64).round() as usize;
    let pruned_blocks = smallest_k_indices(&block_scores, prune_count);

    let mut masks: Vec<PatternMask> =
        scores.iter().map(|s| PatternMask::keep_all(s.rows(), s.cols())).collect();
    for idx in pruned_blocks {
        let bref = block_refs[idx];
        let s = &scores[bref.matrix];
        let mask = &mut masks[bref.matrix];
        let r0 = bref.block_row * block_size;
        let c0 = bref.block_col * block_size;
        for r in r0..(r0 + block_size).min(s.rows()) {
            for c in c0..(c0 + block_size).min(s.cols()) {
                mask.prune(r, c);
            }
        }
    }
    masks
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_tensor::Matrix;

    #[test]
    fn prunes_whole_blocks() {
        let scores = ImportanceScores::magnitude(&Matrix::random_uniform(8, 8, 1.0, 1));
        let mask = prune(&scores, 4, SparsityTarget::new(0.5));
        // 4 blocks of 4x4, half pruned -> 2 blocks fully zero.
        assert_eq!(mask.pruned_count(), 32);
        // Check each block is either fully kept or fully pruned.
        for br in 0..2 {
            for bc in 0..2 {
                let kept: usize = (0..4)
                    .flat_map(|i| (0..4).map(move |j| (br * 4 + i, bc * 4 + j)))
                    .filter(|&(r, c)| mask.keeps(r, c))
                    .count();
                assert!(kept == 0 || kept == 16, "block ({br},{bc}) is partially pruned");
            }
        }
    }

    #[test]
    fn prunes_lowest_scoring_blocks() {
        // Top-left block has large scores, the rest small.
        let scores = ImportanceScores::from_matrix(Matrix::from_fn(4, 4, |r, c| {
            if r < 2 && c < 2 {
                10.0
            } else {
                0.1
            }
        }));
        let mask = prune(&scores, 2, SparsityTarget::new(0.25));
        // Exactly one of the low-score blocks gets pruned, never the
        // top-left one.
        assert!(mask.keeps(0, 0));
        assert_eq!(mask.pruned_count(), 4);
    }

    #[test]
    fn block_size_one_is_element_wise() {
        let scores = ImportanceScores::magnitude(&Matrix::random_uniform(10, 10, 1.0, 2));
        let bw = prune(&scores, 1, SparsityTarget::new(0.4));
        let ew = crate::ew::prune(&scores, SparsityTarget::new(0.4));
        assert_eq!(bw, ew);
    }

    #[test]
    fn global_ranking_shifts_budget_between_matrices() {
        let weak = ImportanceScores::from_matrix(Matrix::filled(8, 8, 0.1));
        let strong = ImportanceScores::from_matrix(Matrix::filled(8, 8, 5.0));
        let masks = prune_global(&[weak, strong], 4, SparsityTarget::new(0.5));
        assert_eq!(masks[0].sparsity(), 1.0);
        assert_eq!(masks[1].sparsity(), 0.0);
    }

    #[test]
    fn non_multiple_dimensions() {
        let scores = ImportanceScores::magnitude(&Matrix::random_uniform(10, 6, 1.0, 3));
        let mask = prune(&scores, 4, SparsityTarget::new(0.5));
        // 3 block rows x 2 block cols = 6 blocks, 3 pruned.
        // The achieved element sparsity depends on which blocks are edge
        // blocks, but the mask must stay consistent block-wise.
        assert!(mask.sparsity() > 0.0 && mask.sparsity() < 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_size_panics() {
        let scores = ImportanceScores::magnitude(&Matrix::zeros(4, 4));
        let _ = prune(&scores, 0, SparsityTarget::new(0.5));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tw_tensor::Matrix;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Blocks are always pruned atomically: within any block, either all
        /// elements are kept or all are pruned.
        #[test]
        fn blocks_are_atomic(rows in 1usize..20, cols in 1usize..20, bs in 1usize..6,
                             target in 0.0f64..0.99, seed in any::<u64>()) {
            let scores = ImportanceScores::magnitude(&Matrix::random_uniform(rows, cols, 1.0, seed));
            let mask = prune(&scores, bs, SparsityTarget::new(target));
            for br in 0..rows.div_ceil(bs) {
                for bc in 0..cols.div_ceil(bs) {
                    let mut kept = 0usize;
                    let mut total = 0usize;
                    for r in br*bs..((br+1)*bs).min(rows) {
                        for c in bc*bs..((bc+1)*bs).min(cols) {
                            total += 1;
                            if mask.keeps(r, c) { kept += 1; }
                        }
                    }
                    prop_assert!(kept == 0 || kept == total);
                }
            }
        }

        /// BW retains no more importance than EW at the same achieved
        /// sparsity (EW is the upper bound).
        #[test]
        fn bw_bounded_by_ew(rows in 4usize..16, cols in 4usize..16, bs in 2usize..5,
                            target in 0.1f64..0.9, seed in any::<u64>()) {
            let scores = ImportanceScores::magnitude(&Matrix::random_uniform(rows, cols, 1.0, seed));
            let bw_mask = prune(&scores, bs, SparsityTarget::new(target));
            let achieved = bw_mask.sparsity();
            if achieved > 0.0 && achieved < 1.0 {
                let ew_mask = crate::ew::prune(&scores, SparsityTarget::new(achieved.min(0.999)));
                prop_assert!(
                    ew_mask.retained_importance(&scores) + 1e-9
                        >= bw_mask.retained_importance(&scores)
                );
            }
        }
    }
}
