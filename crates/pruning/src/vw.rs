//! Vector-wise (VW) pruning.
//!
//! VW "divides a column in the weight matrix to multiple vectors.  Within
//! each vector, it prunes a fixed portion of elements by the rank of their
//! importance scores" (Sec. III-A).  Every vector ends up with the same
//! sparsity, which is precisely why VW cannot adapt to the uneven sparsity
//! distribution that TW exploits (Sec. IV-B).

use crate::importance::{smallest_k_indices, ImportanceScores};
use crate::pattern::{PatternMask, SparsityTarget};

/// Prunes a weight matrix vector-wise: each column is cut into vectors of
/// `vector_size` contiguous rows and the same fraction is pruned in every
/// vector.
///
/// # Panics
/// Panics if `vector_size` is zero.
pub fn prune(scores: &ImportanceScores, vector_size: usize, target: SparsityTarget) -> PatternMask {
    assert!(vector_size > 0, "vector size must be positive");
    let (rows, cols) = scores.shape();
    let mut keep = vec![true; rows * cols];
    for c in 0..cols {
        let mut r0 = 0;
        while r0 < rows {
            let r1 = (r0 + vector_size).min(rows);
            let vec_len = r1 - r0;
            let vec_scores: Vec<f64> = (r0..r1).map(|r| scores.get(r, c) as f64).collect();
            // The same number of elements is pruned in every (full) vector.
            let prune_count = (target.fraction() * vec_len as f64).round() as usize;
            for local in smallest_k_indices(&vec_scores, prune_count) {
                keep[(r0 + local) * cols + c] = false;
            }
            r0 = r1;
        }
    }
    PatternMask::new(rows, cols, keep)
}

/// Prunes several matrices independently (VW has no global ranking — that is
/// its key limitation versus TW).
pub fn prune_all(
    scores: &[ImportanceScores],
    vector_size: usize,
    target: SparsityTarget,
) -> Vec<PatternMask> {
    scores.iter().map(|s| prune(s, vector_size, target)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_tensor::Matrix;

    #[test]
    fn every_vector_has_same_sparsity() {
        let scores = ImportanceScores::magnitude(&Matrix::random_uniform(32, 8, 1.0, 1));
        let mask = prune(&scores, 16, SparsityTarget::new(0.5));
        // Each 16-element vector must have exactly 8 pruned entries.
        for c in 0..8 {
            for v in 0..2 {
                let pruned = (v * 16..(v + 1) * 16).filter(|&r| !mask.keeps(r, c)).count();
                assert_eq!(pruned, 8, "col {c} vector {v}");
            }
        }
        assert!((mask.sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn prunes_lowest_scores_within_vector() {
        // Column with strictly increasing scores: the first half of each
        // vector must be pruned.
        let scores = ImportanceScores::from_matrix(Matrix::from_fn(8, 1, |r, _| (r + 1) as f32));
        let mask = prune(&scores, 4, SparsityTarget::new(0.5));
        assert!(!mask.keeps(0, 0));
        assert!(!mask.keeps(1, 0));
        assert!(mask.keeps(2, 0));
        assert!(mask.keeps(3, 0));
        assert!(!mask.keeps(4, 0));
        assert!(!mask.keeps(5, 0));
        assert!(mask.keeps(6, 0));
        assert!(mask.keeps(7, 0));
    }

    #[test]
    fn partial_trailing_vector_is_handled() {
        // 10 rows with vector size 4: last vector has 2 elements.
        let scores = ImportanceScores::magnitude(&Matrix::random_uniform(10, 3, 1.0, 2));
        let mask = prune(&scores, 4, SparsityTarget::new(0.5));
        // Each full vector prunes 2, the trailing 2-element vector prunes 1.
        for c in 0..3 {
            let pruned = (0..10).filter(|&r| !mask.keeps(r, c)).count();
            assert_eq!(pruned, 5, "col {c}");
        }
    }

    #[test]
    fn vw_cannot_adapt_to_uneven_columns() {
        // One very important column and one unimportant column: VW still
        // prunes them equally (this is the limitation TW fixes).
        let scores =
            ImportanceScores::from_matrix(Matrix::from_fn(
                16,
                2,
                |_, c| {
                    if c == 0 {
                        10.0
                    } else {
                        0.1
                    }
                },
            ));
        let mask = prune(&scores, 16, SparsityTarget::new(0.5));
        let col0_pruned = (0..16).filter(|&r| !mask.keeps(r, 0)).count();
        let col1_pruned = (0..16).filter(|&r| !mask.keeps(r, 1)).count();
        assert_eq!(col0_pruned, col1_pruned);
    }

    #[test]
    fn prune_all_processes_each_matrix() {
        let a = ImportanceScores::magnitude(&Matrix::random_uniform(16, 4, 1.0, 3));
        let b = ImportanceScores::magnitude(&Matrix::random_uniform(16, 4, 1.0, 4));
        let masks = prune_all(&[a, b], 8, SparsityTarget::new(0.25));
        assert_eq!(masks.len(), 2);
        for m in &masks {
            assert!((m.sparsity() - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_vector_size_panics() {
        let scores = ImportanceScores::magnitude(&Matrix::zeros(4, 4));
        let _ = prune(&scores, 0, SparsityTarget::new(0.5));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tw_tensor::Matrix;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// When the vector size divides the row count, the achieved sparsity
        /// is exactly round(V*s)/V regardless of the data.
        #[test]
        fn sparsity_is_uniform(v_exp in 1usize..4, n_vecs in 1usize..6, cols in 1usize..8,
                               target in 0.0f64..0.99, seed in any::<u64>()) {
            let v = 1 << v_exp; // 2,4,8
            let rows = v * n_vecs;
            let scores = ImportanceScores::magnitude(&Matrix::random_uniform(rows, cols, 1.0, seed));
            let mask = prune(&scores, v, SparsityTarget::new(target));
            let per_vec = (target * v as f64).round() as usize;
            prop_assert_eq!(mask.pruned_count(), per_vec * n_vecs * cols);
        }
    }
}
