//! Element-wise (EW) pruning — unstructured pruning by global score rank.
//!
//! EW imposes no constraint on the sparsity pattern and therefore retains the
//! most importance for a given sparsity; it is the accuracy upper bound every
//! other pattern is compared against (Sec. III-A).

use crate::importance::{smallest_k_indices, ImportanceScores};
use crate::pattern::{PatternMask, SparsityTarget};

/// Prunes a single weight matrix element-wise to the target sparsity.
///
/// Exactly `target.count_of(total)` elements with the smallest importance
/// scores are removed.
pub fn prune(scores: &ImportanceScores, target: SparsityTarget) -> PatternMask {
    let (rows, cols) = scores.shape();
    let total = rows * cols;
    let values: Vec<f64> = scores.as_slice().iter().map(|&v| v as f64).collect();
    let prune_count = target.count_of(total);
    let mut keep = vec![true; total];
    for idx in smallest_k_indices(&values, prune_count) {
        keep[idx] = false;
    }
    PatternMask::new(rows, cols, keep)
}

/// Prunes a set of weight matrices element-wise with a *global* rank across
/// all of them, which is how the paper prunes BERT's 72 matrices ("the
/// importance score of all elements in the 72 weight matrices are calculated
/// and globally ranked").  The per-matrix sparsities that result are uneven —
/// exactly the effect Fig. 5 shows.
pub fn prune_global(scores: &[ImportanceScores], target: SparsityTarget) -> Vec<PatternMask> {
    // Flatten all scores, remembering which matrix and offset they came from.
    let mut all: Vec<f64> = Vec::new();
    let mut offsets = Vec::with_capacity(scores.len());
    for s in scores {
        offsets.push(all.len());
        all.extend(s.as_slice().iter().map(|&v| v as f64));
    }
    let prune_count = target.count_of(all.len());
    let pruned = smallest_k_indices(&all, prune_count);

    let mut keeps: Vec<Vec<bool>> = scores.iter().map(|s| vec![true; s.as_slice().len()]).collect();
    for idx in pruned {
        // Find which matrix this flat index belongs to.
        let mi = match offsets.binary_search(&idx) {
            Ok(exact) => exact,
            Err(insert) => insert - 1,
        };
        keeps[mi][idx - offsets[mi]] = false;
    }
    scores
        .iter()
        .zip(keeps)
        .map(|(s, keep)| {
            let (r, c) = s.shape();
            PatternMask::new(r, c, keep)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_tensor::Matrix;

    #[test]
    fn prunes_exact_count() {
        let scores = ImportanceScores::magnitude(&Matrix::random_uniform(16, 16, 1.0, 1));
        let mask = prune(&scores, SparsityTarget::new(0.75));
        assert_eq!(mask.pruned_count(), 192);
        assert!((mask.sparsity() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn prunes_smallest_scores_first() {
        let scores = ImportanceScores::from_matrix(Matrix::from_rows(&[&[0.1, 0.9], &[0.5, 0.01]]));
        let mask = prune(&scores, SparsityTarget::new(0.5));
        assert!(!mask.keeps(1, 1)); // 0.01 pruned
        assert!(!mask.keeps(0, 0)); // 0.1 pruned
        assert!(mask.keeps(0, 1));
        assert!(mask.keeps(1, 0));
    }

    #[test]
    fn zero_target_prunes_nothing() {
        let scores = ImportanceScores::magnitude(&Matrix::random_uniform(8, 8, 1.0, 2));
        let mask = prune(&scores, SparsityTarget::new(0.0));
        assert_eq!(mask.pruned_count(), 0);
    }

    #[test]
    fn ew_retains_the_most_importance() {
        // EW at sparsity s keeps exactly the top (1-s) fraction of scores, so
        // no other mask of the same sparsity can retain more.
        let scores = ImportanceScores::magnitude(&Matrix::random_uniform(20, 20, 1.0, 3));
        let mask = prune(&scores, SparsityTarget::new(0.6));
        let retained = mask.retained_importance(&scores);

        // Compare against a random mask of the same sparsity.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut indices: Vec<usize> = (0..400).collect();
        indices.shuffle(&mut rng);
        let mut keep = vec![true; 400];
        for &i in indices.iter().take(240) {
            keep[i] = false;
        }
        let random_mask = PatternMask::new(20, 20, keep);
        assert!(retained >= random_mask.retained_importance(&scores));
    }

    #[test]
    fn global_pruning_is_uneven_across_matrices() {
        // One matrix with uniformly small scores, one with uniformly large
        // scores: global ranking should prune the small-score matrix much
        // harder (the Fig. 5 effect).
        let small = ImportanceScores::from_matrix(Matrix::filled(16, 16, 0.1));
        let large = ImportanceScores::from_matrix(Matrix::filled(16, 16, 10.0));
        let masks = prune_global(&[small, large], SparsityTarget::new(0.5));
        assert!(masks[0].sparsity() > 0.95);
        assert!(masks[1].sparsity() < 0.05);
        // Total pruned count is still the target.
        let pruned: usize = masks.iter().map(|m| m.pruned_count()).sum();
        assert_eq!(pruned, 256);
    }

    #[test]
    fn global_pruning_matches_single_matrix_when_one_input() {
        let scores = ImportanceScores::magnitude(&Matrix::random_uniform(12, 12, 1.0, 4));
        let single = prune(&scores, SparsityTarget::new(0.3));
        let global = prune_global(std::slice::from_ref(&scores), SparsityTarget::new(0.3));
        assert_eq!(global.len(), 1);
        assert_eq!(global[0], single);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tw_tensor::Matrix;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Achieved sparsity matches the target to within one element.
        #[test]
        fn sparsity_matches_target(rows in 1usize..20, cols in 1usize..20,
                                   target in 0.0f64..0.99, seed in any::<u64>()) {
            let scores = ImportanceScores::magnitude(&Matrix::random_uniform(rows, cols, 1.0, seed));
            let mask = prune(&scores, SparsityTarget::new(target));
            let total = (rows * cols) as f64;
            prop_assert!((mask.sparsity() - target).abs() <= 1.0 / total + 1e-9);
        }

        /// Every kept element's score is >= every pruned element's score.
        #[test]
        fn kept_scores_dominate_pruned(rows in 2usize..12, cols in 2usize..12,
                                       target in 0.1f64..0.9, seed in any::<u64>()) {
            let scores = ImportanceScores::magnitude(&Matrix::random_uniform(rows, cols, 1.0, seed));
            let mask = prune(&scores, SparsityTarget::new(target));
            let mut max_pruned = f64::NEG_INFINITY;
            let mut min_kept = f64::INFINITY;
            for r in 0..rows {
                for c in 0..cols {
                    let s = scores.get(r, c) as f64;
                    if mask.keeps(r, c) { min_kept = min_kept.min(s); } else { max_pruned = max_pruned.max(s); }
                }
            }
            if max_pruned.is_finite() && min_kept.is_finite() {
                prop_assert!(max_pruned <= min_kept + 1e-9);
            }
        }
    }
}
