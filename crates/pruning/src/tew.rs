//! Hybrid tile-element-wise (TEW) pruning.
//!
//! "In order to prune α percent of weights, the TEW first prunes α+δ percent
//! of weights with only TW, and then restores δ percent of the weight
//! elements with the highest importance scores." (Sec. IV-A)
//!
//! The restored elements form an element-wise overlay that is stored in CSC
//! per tile and executed on the CUDA cores, separately from the dense TW
//! part (Fig. 4 ④).

use crate::apriori::AprioriHints;
use crate::importance::{largest_k_indices, ImportanceScores};
use crate::pattern::{PatternMask, SparsityTarget};
use crate::tw::{self, TileWiseConfig, TileWiseMask};

/// The TEW pruning decision for one weight matrix: the structured TW part
/// plus the sparse element-wise overlay of restored weights.
#[derive(Clone, Debug, PartialEq)]
pub struct TewMask {
    /// The tile-wise part, pruned to `target + delta`.
    tw: TileWiseMask,
    /// Keep mask of the restored overlay elements only (disjoint from the TW
    /// survivors).
    overlay: PatternMask,
    /// The requested overlay fraction δ.
    delta: f64,
}

impl TewMask {
    /// The structured tile-wise component.
    pub fn tw(&self) -> &TileWiseMask {
        &self.tw
    }

    /// The overlay keep mask (restored elements only).
    pub fn overlay(&self) -> &PatternMask {
        &self.overlay
    }

    /// The requested overlay fraction δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of restored overlay elements.
    pub fn overlay_count(&self) -> usize {
        self.overlay.kept_count()
    }

    /// The combined keep mask: TW survivors plus overlay.
    pub fn combined_mask(&self) -> PatternMask {
        self.tw.to_pattern_mask().or(&self.overlay)
    }

    /// Achieved overall sparsity of the combined mask.
    pub fn sparsity(&self) -> f64 {
        self.combined_mask().sparsity()
    }
}

/// Prunes a single matrix with the TEW pattern.
pub fn prune(
    scores: &ImportanceScores,
    cfg: &TileWiseConfig,
    target: SparsityTarget,
    delta: f64,
) -> TewMask {
    prune_global(std::slice::from_ref(scores), cfg, target, delta, None)
        .pop()
        .expect("one mask per matrix")
}

/// Prunes a set of matrices with the TEW pattern under global ranking.
///
/// The TW phase targets `target + delta`; the overlay then restores the
/// `delta` fraction of elements (counted over all matrices) with the highest
/// importance among the TW-pruned positions.
pub fn prune_global(
    scores: &[ImportanceScores],
    cfg: &TileWiseConfig,
    target: SparsityTarget,
    delta: f64,
    hints: Option<&[AprioriHints]>,
) -> Vec<TewMask> {
    assert!(delta >= 0.0, "delta must be non-negative");
    let bumped = (target.fraction() + delta).min(0.9999);
    let tw_masks = tw::prune_global(scores, cfg, SparsityTarget::new(bumped), hints);

    // Gather all pruned positions across matrices with their scores.
    let total_elements: usize = scores.iter().map(|s| s.rows() * s.cols()).sum();
    let restore_count = (delta * total_elements as f64).round() as usize;

    let mut candidate_scores: Vec<f64> = Vec::new();
    let mut candidate_pos: Vec<(usize, usize, usize)> = Vec::new(); // (matrix, row, col)
    for (mi, (s, m)) in scores.iter().zip(&tw_masks).enumerate() {
        let flat = m.to_pattern_mask();
        for r in 0..s.rows() {
            for c in 0..s.cols() {
                if !flat.keeps(r, c) {
                    candidate_scores.push(s.get(r, c) as f64);
                    candidate_pos.push((mi, r, c));
                }
            }
        }
    }
    let restored = largest_k_indices(&candidate_scores, restore_count);

    let mut overlays: Vec<PatternMask> = scores
        .iter()
        .map(|s| PatternMask::new(s.rows(), s.cols(), vec![false; s.rows() * s.cols()]))
        .collect();
    for idx in restored {
        let (mi, r, c) = candidate_pos[idx];
        overlays[mi].restore(r, c);
    }

    tw_masks.into_iter().zip(overlays).map(|(tw, overlay)| TewMask { tw, overlay, delta }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_tensor::Matrix;

    fn scores(seed: u64) -> ImportanceScores {
        ImportanceScores::magnitude(&Matrix::random_normal(96, 96, 1.0, seed))
    }

    #[test]
    fn overlay_is_disjoint_from_tw_survivors() {
        let s = scores(1);
        let mask = prune(&s, &TileWiseConfig::with_granularity(32), SparsityTarget::new(0.7), 0.05);
        let tw_flat = mask.tw().to_pattern_mask();
        for r in 0..96 {
            for c in 0..96 {
                if mask.overlay().keeps(r, c) {
                    assert!(!tw_flat.keeps(r, c), "overlay overlaps TW survivor at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn achieves_target_sparsity() {
        let s = scores(2);
        for delta in [0.01, 0.05, 0.10] {
            let mask =
                prune(&s, &TileWiseConfig::with_granularity(32), SparsityTarget::new(0.75), delta);
            assert!(
                (mask.sparsity() - 0.75).abs() < 0.03,
                "delta {delta}: achieved {}",
                mask.sparsity()
            );
        }
    }

    #[test]
    fn overlay_size_matches_delta() {
        let s = scores(3);
        let delta = 0.05;
        let mask =
            prune(&s, &TileWiseConfig::with_granularity(32), SparsityTarget::new(0.7), delta);
        let expected = (delta * (96.0 * 96.0)).round() as usize;
        assert_eq!(mask.overlay_count(), expected);
    }

    #[test]
    fn tew_retains_more_importance_than_tw() {
        // Adding back the most important pruned elements can only help.
        let s = scores(4);
        let cfg = TileWiseConfig::with_granularity(32);
        let target = SparsityTarget::new(0.8);
        let tw_only = tw::prune(&s, &cfg, target).to_pattern_mask().retained_importance(&s);
        let tew = prune(&s, &cfg, target, 0.05);
        let tew_ret = tew.combined_mask().retained_importance(&s);
        assert!(
            tew_ret > tw_only,
            "TEW ({tew_ret}) should retain more importance than TW ({tw_only})"
        );
    }

    #[test]
    fn larger_delta_retains_more_importance() {
        let s = scores(5);
        let cfg = TileWiseConfig::with_granularity(64);
        let target = SparsityTarget::new(0.8);
        let r1 = prune(&s, &cfg, target, 0.01).combined_mask().retained_importance(&s);
        let r5 = prune(&s, &cfg, target, 0.05).combined_mask().retained_importance(&s);
        let r15 = prune(&s, &cfg, target, 0.15).combined_mask().retained_importance(&s);
        assert!(r5 >= r1 - 1e-6);
        assert!(r15 >= r5 - 1e-6);
    }

    #[test]
    fn zero_delta_is_pure_tw() {
        let s = scores(6);
        let cfg = TileWiseConfig::with_granularity(32);
        let mask = prune(&s, &cfg, SparsityTarget::new(0.6), 0.0);
        assert_eq!(mask.overlay_count(), 0);
        assert_eq!(
            mask.combined_mask(),
            tw::prune(&s, &cfg, SparsityTarget::new(0.6)).to_pattern_mask()
        );
    }

    #[test]
    fn global_tew_restores_where_it_matters_most() {
        // Matrix 0 has much higher scores in its pruned region, so it should
        // receive most of the overlay budget.
        let strong = ImportanceScores::from_matrix(Matrix::from_fn(48, 48, |r, c| {
            1.0 + ((r + c) % 7) as f32
        }));
        let weak = ImportanceScores::from_matrix(Matrix::from_fn(48, 48, |r, c| {
            0.001 * (1.0 + ((r + c) % 7) as f32)
        }));
        let masks = prune_global(
            &[strong, weak],
            &TileWiseConfig::with_granularity(16),
            SparsityTarget::new(0.7),
            0.05,
            None,
        );
        assert!(masks[0].overlay_count() >= masks[1].overlay_count());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delta_panics() {
        let s = scores(7);
        let _ = prune(&s, &TileWiseConfig::default(), SparsityTarget::new(0.5), -0.1);
    }
}
