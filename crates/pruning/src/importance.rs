//! Importance scores for pruning.
//!
//! The paper evaluates each weight's importance either by its magnitude
//! (Han et al.) or — the method actually used — by the first-order Taylor
//! approximation of the loss change incurred by removing it (Molchanov et
//! al.), Eq. (1)-(3):
//!
//! ```text
//! ΔL(w) ≈ | ∂L/∂w · w |
//! ```
//!
//! Both reduce to an element-wise score matrix; everything downstream
//! (thresholding, tile aggregation, global ranking) only consumes the
//! scores.

use tw_tensor::Matrix;

/// Which importance estimator to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ImportanceMethod {
    /// `|w|` — magnitude pruning (Han et al. 2015).
    Magnitude,
    /// `|w * grad|` — first-order Taylor score (Molchanov et al. 2019),
    /// the method the paper uses for BERT/NMT/VGG.
    #[default]
    Taylor,
}

/// An element-wise importance score matrix, same shape as the weight matrix
/// it was derived from.  Scores are non-negative.
#[derive(Clone, Debug, PartialEq)]
pub struct ImportanceScores {
    scores: Matrix,
}

impl ImportanceScores {
    /// Magnitude scores: `|w|`.
    pub fn magnitude(weights: &Matrix) -> Self {
        let scores =
            Matrix::from_fn(weights.rows(), weights.cols(), |r, c| weights.get(r, c).abs());
        Self { scores }
    }

    /// First-order Taylor scores: `|w * grad|` (Eq. 3).
    ///
    /// # Panics
    /// Panics if weights and gradients have different shapes.
    pub fn taylor(weights: &Matrix, grads: &Matrix) -> Self {
        assert_eq!(weights.shape(), grads.shape(), "weights/grads shape mismatch");
        let scores = Matrix::from_fn(weights.rows(), weights.cols(), |r, c| {
            (weights.get(r, c) * grads.get(r, c)).abs()
        });
        Self { scores }
    }

    /// Computes scores with the chosen method.  `grads` may be `None` only
    /// for [`ImportanceMethod::Magnitude`].
    pub fn compute(method: ImportanceMethod, weights: &Matrix, grads: Option<&Matrix>) -> Self {
        match method {
            ImportanceMethod::Magnitude => Self::magnitude(weights),
            ImportanceMethod::Taylor => {
                let grads = grads.expect("Taylor importance requires gradients");
                Self::taylor(weights, grads)
            }
        }
    }

    /// Wraps an arbitrary non-negative score matrix (used by tests and by
    /// synthetic workload generators that sample scores directly).
    pub fn from_matrix(scores: Matrix) -> Self {
        assert!(scores.as_slice().iter().all(|&v| v >= 0.0), "scores must be non-negative");
        Self { scores }
    }

    /// Shape of the underlying score matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.scores.shape()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.scores.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.scores.cols()
    }

    /// Score of a single element.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.scores.get(r, c)
    }

    /// The underlying score matrix.
    pub fn as_matrix(&self) -> &Matrix {
        &self.scores
    }

    /// All scores as a flat row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        self.scores.as_slice()
    }

    /// Sum of all scores (the denominator of retained-importance metrics).
    pub fn total(&self) -> f64 {
        self.scores.as_slice().iter().map(|&v| v as f64).sum()
    }

    /// Sum of scores in column `c`.
    pub fn col_sum(&self, c: usize) -> f64 {
        (0..self.rows()).map(|r| self.get(r, c) as f64).sum()
    }

    /// Sum of scores in row `r` restricted to the given columns (the score of
    /// a `(1, G)` row tile in Algorithm 1's row-pruning phase).
    pub fn row_sum_over_cols(&self, r: usize, cols: &[usize]) -> f64 {
        cols.iter().map(|&c| self.get(r, c) as f64).sum()
    }

    /// Sum of scores inside a `block_size x block_size` block whose top-left
    /// corner is `(r0, c0)` (clipped to the matrix bounds).
    pub fn block_sum(&self, r0: usize, c0: usize, block_size: usize) -> f64 {
        let r1 = (r0 + block_size).min(self.rows());
        let c1 = (c0 + block_size).min(self.cols());
        let mut acc = 0.0;
        for r in r0..r1 {
            for c in c0..c1 {
                acc += self.get(r, c) as f64;
            }
        }
        acc
    }

    /// Sum of scores of elements selected by a row-major keep mask; used to
    /// measure how much importance a pruning pattern retains.
    pub fn retained(&self, keep: &[bool]) -> f64 {
        assert_eq!(keep.len(), self.scores.len(), "mask length mismatch");
        self.scores.as_slice().iter().zip(keep).filter(|(_, &k)| k).map(|(&v, _)| v as f64).sum()
    }

    /// Fraction of total importance retained by a keep mask, in `[0, 1]`.
    pub fn retained_fraction(&self, keep: &[bool]) -> f64 {
        let total = self.total();
        if total == 0.0 {
            return 1.0;
        }
        self.retained(keep) / total
    }
}

/// Returns the value below which `fraction` of the inputs fall (the
/// `Percentile` primitive of Algorithm 1).  `fraction` is clamped to
/// `[0, 1]`.  With an empty input the result is 0.
pub fn percentile_threshold(values: &[f64], fraction: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let fraction = fraction.clamp(0.0, 1.0);
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("scores must not be NaN"));
    let k = (fraction * sorted.len() as f64).floor() as usize;
    if k == 0 {
        // Nothing should be pruned: return a threshold below the minimum.
        return f64::NEG_INFINITY;
    }
    if k >= sorted.len() {
        return f64::INFINITY;
    }
    sorted[k]
}

/// Selects the indices of the `count` smallest values (ties broken by index
/// order).  This is the primitive the pruning passes use so that the number
/// of pruned units is exact rather than threshold-dependent.
pub fn smallest_k_indices(values: &[f64], count: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[a].partial_cmp(&values[b]).expect("scores must not be NaN").then(a.cmp(&b))
    });
    idx.truncate(count.min(values.len()));
    idx
}

/// Selects the indices of the `count` largest values (ties broken by index
/// order).
pub fn largest_k_indices(values: &[f64], count: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b].partial_cmp(&values[a]).expect("scores must not be NaN").then(a.cmp(&b))
    });
    idx.truncate(count.min(values.len()));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_scores_are_abs() {
        let w = Matrix::from_rows(&[&[1.0, -2.0], &[0.0, -0.5]]);
        let s = ImportanceScores::magnitude(&w);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 0.0, 0.5]);
    }

    #[test]
    fn taylor_scores_are_abs_product() {
        let w = Matrix::from_rows(&[&[1.0, -2.0]]);
        let g = Matrix::from_rows(&[&[0.5, 0.25]]);
        let s = ImportanceScores::taylor(&w, &g);
        assert_eq!(s.as_slice(), &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn taylor_rejects_shape_mismatch() {
        let _ = ImportanceScores::taylor(&Matrix::zeros(2, 2), &Matrix::zeros(2, 3));
    }

    #[test]
    fn compute_dispatches() {
        let w = Matrix::from_rows(&[&[2.0, -3.0]]);
        let g = Matrix::from_rows(&[&[1.0, 1.0]]);
        let mag = ImportanceScores::compute(ImportanceMethod::Magnitude, &w, None);
        let tay = ImportanceScores::compute(ImportanceMethod::Taylor, &w, Some(&g));
        assert_eq!(mag.as_slice(), &[2.0, 3.0]);
        assert_eq!(tay.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "requires gradients")]
    fn taylor_without_grads_panics() {
        let _ = ImportanceScores::compute(ImportanceMethod::Taylor, &Matrix::zeros(2, 2), None);
    }

    #[test]
    fn aggregations() {
        let s =
            ImportanceScores::from_matrix(Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]));
        assert_eq!(s.total(), 21.0);
        assert_eq!(s.col_sum(1), 7.0);
        assert_eq!(s.row_sum_over_cols(1, &[0, 2]), 10.0);
        assert_eq!(s.block_sum(0, 0, 2), 12.0);
        assert_eq!(s.block_sum(0, 2, 2), 9.0); // clipped block
    }

    #[test]
    fn retained_fraction() {
        let s = ImportanceScores::from_matrix(Matrix::from_rows(&[&[1.0, 3.0]]));
        assert_eq!(s.retained(&[true, false]), 1.0);
        assert!((s.retained_fraction(&[false, true]) - 0.75).abs() < 1e-12);
        assert_eq!(s.retained_fraction(&[true, true]), 1.0);
    }

    #[test]
    fn retained_fraction_of_zero_scores_is_one() {
        let s = ImportanceScores::from_matrix(Matrix::zeros(2, 2));
        assert_eq!(s.retained_fraction(&[false; 4]), 1.0);
    }

    #[test]
    fn percentile_threshold_behaviour() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_threshold(&v, 0.0), f64::NEG_INFINITY);
        assert_eq!(percentile_threshold(&v, 0.5), 3.0);
        assert_eq!(percentile_threshold(&v, 1.0), f64::INFINITY);
        assert_eq!(percentile_threshold(&[], 0.5), 0.0);
    }

    #[test]
    fn smallest_and_largest_k() {
        let v = vec![5.0, 1.0, 3.0, 1.0];
        assert_eq!(smallest_k_indices(&v, 2), vec![1, 3]);
        assert_eq!(largest_k_indices(&v, 1), vec![0]);
        assert_eq!(smallest_k_indices(&v, 10).len(), 4);
        assert!(smallest_k_indices(&v, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_matrix_rejects_negative_scores() {
        let _ = ImportanceScores::from_matrix(Matrix::from_rows(&[&[-1.0]]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Retained fraction is monotone in the mask: adding kept elements
        /// never decreases it.
        #[test]
        fn retained_fraction_is_monotone(seed in any::<u64>(), rows in 1usize..10, cols in 1usize..10) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let w = Matrix::random_uniform(rows, cols, 1.0, seed);
            let s = ImportanceScores::magnitude(&w);
            let mask_small: Vec<bool> = (0..rows * cols).map(|_| rng.gen_bool(0.3)).collect();
            let mut mask_big = mask_small.clone();
            for k in &mut mask_big {
                if rng.gen_bool(0.5) { *k = true; }
            }
            prop_assert!(s.retained_fraction(&mask_big) >= s.retained_fraction(&mask_small) - 1e-12);
        }

        /// smallest_k and largest_k partition correctly: every selected
        /// "small" value is <= every selected "large" value when k's sum to n.
        #[test]
        fn smallest_largest_partition(values in prop::collection::vec(0.0f64..100.0, 1..40), split in 0usize..40) {
            let k = split.min(values.len());
            let small = smallest_k_indices(&values, k);
            let large = largest_k_indices(&values, values.len() - k);
            prop_assert_eq!(small.len() + large.len(), values.len());
            let max_small = small.iter().map(|&i| values[i]).fold(f64::NEG_INFINITY, f64::max);
            let min_large = large.iter().map(|&i| values[i]).fold(f64::INFINITY, f64::min);
            if !small.is_empty() && !large.is_empty() {
                prop_assert!(max_small <= min_large + 1e-12);
            }
        }
    }
}
