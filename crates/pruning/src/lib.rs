//! Network pruning: importance scores, sparsity patterns and the tile-wise
//! pruning algorithm.
//!
//! This crate implements Sec. III-V of the paper:
//!
//! * [`importance`] — importance score computation: weight magnitude and the
//!   first-order Taylor score `|w * dL/dw|` (Eq. 1-3).
//! * [`pattern`] — the sparsity-pattern taxonomy (EW / VW / BW / TW / TEW) and
//!   the [`PatternMask`] every pruner produces.
//! * [`ew`], [`vw`], [`bw`] — the three baseline patterns of Fig. 2.
//! * [`tw`] — the proposed tile-wise pattern: column-then-row pruning per
//!   tile with global (cross-layer) ranking (Fig. 4, Algorithm 1).
//! * [`tew`] — the hybrid tile-element-wise overlay (Fig. 4 ③).
//! * [`apriori`] — Algorithm 2, apriori tuning seeded from EW results.
//! * [`schedule`] — the multi-stage pruning driver with per-stage fine-tuning
//!   hooks and dynamic, global sparsity-budget allocation across layers.
//! * [`analysis`] — the sparsity-distribution analytics behind Figs. 5, 6
//!   and 13.

pub mod analysis;
pub mod apriori;
pub mod bw;
pub mod ew;
pub mod importance;
pub mod pattern;
pub mod schedule;
pub mod tew;
pub mod tw;
pub mod vw;

pub use apriori::AprioriConfig;
pub use importance::{ImportanceMethod, ImportanceScores};
pub use pattern::{PatternMask, PruningPattern, SparsityTarget};
pub use schedule::{LayerSet, MultiStageConfig, MultiStagePruner, PruneStageReport};
pub use tew::TewMask;
pub use tw::{TileWiseConfig, TileWiseMask, TwTile};
