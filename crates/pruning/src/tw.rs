//! Tile-wise (TW) pruning — the paper's proposed sparsity pattern.
//!
//! The weight matrix `B (K x N)` is divided into column tiles of width `G`
//! (the tiling granularity).  Pruning happens in two phases (Fig. 4 ②,
//! Algorithm 1):
//!
//! 1. **Column pruning**: whole columns (shape `(K, 1)`) are ranked by
//!    importance *globally across all weight matrices* and the weakest are
//!    removed.
//! 2. **Row pruning**: surviving columns are regrouped into tiles of width
//!    `G`; within each tile, whole rows (shape `(1, G)`) are ranked — again
//!    globally — and the weakest are removed.  Different tiles lose
//!    different numbers of rows, which is the irregularity that preserves
//!    accuracy.
//!
//! The global ranking is what lets TW exploit the uneven distribution of
//! importance across layers and matrices (Fig. 5), the key advantage over
//! VW.  Because both phases remove whole rows/columns of a tile, the
//! survivors of each tile remain a small *dense* matrix that dense GEMM
//! hardware can execute directly.

use crate::apriori::AprioriHints;
use crate::importance::ImportanceScores;
use crate::pattern::{PatternMask, SparsityTarget};

/// Configuration of the tile-wise pattern.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TileWiseConfig {
    /// Tile width `G` (number of weight-matrix columns per tile).
    pub granularity: usize,
    /// Fraction of the pruning budget (in elements) assigned to the column
    /// pruning phase; the remainder goes to row pruning.  Algorithm 1 applies
    /// the same percentile to both phases; splitting the element budget
    /// evenly (0.5) reproduces that behaviour while keeping the overall
    /// sparsity exactly on target.
    pub column_budget_share: f64,
}

impl TileWiseConfig {
    /// The configuration used for most of the paper's evaluation (G = 128).
    pub fn paper_default() -> Self {
        Self { granularity: 128, column_budget_share: 0.5 }
    }

    /// A configuration with the given granularity and the default budget
    /// split.
    pub fn with_granularity(granularity: usize) -> Self {
        Self { granularity, column_budget_share: 0.5 }
    }
}

impl Default for TileWiseConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One tile after TW pruning: the original column indices it covers and the
/// per-row keep mask.
#[derive(Clone, Debug, PartialEq)]
pub struct TwTile {
    /// Original (pre-pruning) column indices grouped into this tile, in
    /// ascending order.  Their count is at most `G`.
    pub col_indices: Vec<usize>,
    /// Keep mask over the K dimension: `row_keep[r]` is false when row `r`
    /// of this tile was pruned.
    pub row_keep: Vec<bool>,
}

impl TwTile {
    /// Number of surviving rows.
    pub fn kept_rows(&self) -> usize {
        self.row_keep.iter().filter(|&&k| k).count()
    }

    /// Number of columns in this tile (all survive column pruning by
    /// construction).
    pub fn kept_cols(&self) -> usize {
        self.col_indices.len()
    }

    /// Indices of surviving rows.
    pub fn kept_row_indices(&self) -> Vec<usize> {
        self.row_keep.iter().enumerate().filter_map(|(i, &k)| k.then_some(i)).collect()
    }
}

/// The tile-wise pruning decision for one weight matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct TileWiseMask {
    k: usize,
    n: usize,
    granularity: usize,
    /// Global column keep mask (length `n`): result of the column phase.
    col_keep: Vec<bool>,
    /// Tiles over the surviving columns: result of the row phase.
    tiles: Vec<TwTile>,
}

impl TileWiseMask {
    /// K dimension (rows of the weight matrix).
    pub fn k(&self) -> usize {
        self.k
    }

    /// N dimension (columns of the weight matrix).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tile width G this mask was built with.
    pub fn granularity(&self) -> usize {
        self.granularity
    }

    /// The global column keep mask.
    pub fn col_keep(&self) -> &[bool] {
        &self.col_keep
    }

    /// Number of surviving columns.
    pub fn kept_cols(&self) -> usize {
        self.col_keep.iter().filter(|&&k| k).count()
    }

    /// The tiles over surviving columns.
    pub fn tiles(&self) -> &[TwTile] {
        &self.tiles
    }

    /// Number of surviving weight elements.
    pub fn kept_elements(&self) -> usize {
        self.tiles.iter().map(|t| t.kept_rows() * t.kept_cols()).sum()
    }

    /// Achieved element-level sparsity.
    pub fn sparsity(&self) -> f64 {
        let total = self.k * self.n;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.kept_elements() as f64 / total as f64
    }

    /// Expands the tile-structured decision into a flat element keep mask.
    pub fn to_pattern_mask(&self) -> PatternMask {
        let mut keep = vec![false; self.k * self.n];
        for tile in &self.tiles {
            for (r, &rk) in tile.row_keep.iter().enumerate() {
                if !rk {
                    continue;
                }
                for &c in &tile.col_indices {
                    keep[r * self.n + c] = true;
                }
            }
        }
        PatternMask::new(self.k, self.n, keep)
    }

    /// Per-tile kept row counts, the quantity that drives load imbalance in
    /// the execution planner.
    pub fn tile_kept_rows(&self) -> Vec<usize> {
        self.tiles.iter().map(|t| t.kept_rows()).collect()
    }
}

/// Internal reference to a column of a particular matrix during global
/// ranking.
#[derive(Clone, Copy)]
struct ColRef {
    matrix: usize,
    col: usize,
    elements: usize,
    score: f64,
}

/// Internal reference to a `(tile, row)` unit during global row ranking.
#[derive(Clone, Copy)]
struct RowRef {
    matrix: usize,
    tile: usize,
    row: usize,
    elements: usize,
    score: f64,
}

/// Prunes a single weight matrix tile-wise.  Equivalent to
/// [`prune_global`] with a single-element slice.
pub fn prune(
    scores: &ImportanceScores,
    cfg: &TileWiseConfig,
    target: SparsityTarget,
) -> TileWiseMask {
    prune_global(std::slice::from_ref(scores), cfg, target, None)
        .pop()
        .expect("one mask per matrix")
}

/// Prunes a set of weight matrices tile-wise with global ranking across all
/// of them (Algorithm 1's "Global Weight Pruning").
///
/// `hints`, when provided, applies Algorithm 2's apriori tuning to the
/// column phase: columns flagged `force_prune` are removed first and columns
/// flagged `protect` are never removed by the column phase.
pub fn prune_global(
    scores: &[ImportanceScores],
    cfg: &TileWiseConfig,
    target: SparsityTarget,
    hints: Option<&[AprioriHints]>,
) -> Vec<TileWiseMask> {
    assert!(cfg.granularity > 0, "granularity must be positive");
    assert!(
        (0.0..=1.0).contains(&cfg.column_budget_share),
        "column budget share must be in [0, 1]"
    );
    if let Some(h) = hints {
        assert_eq!(h.len(), scores.len(), "one apriori hint set per matrix");
    }

    let total_elements: usize = scores.iter().map(|s| s.rows() * s.cols()).sum();
    let target_pruned = target.count_of(total_elements);
    let col_budget = (cfg.column_budget_share * target_pruned as f64).round() as usize;

    // ---- Phase 1: global column pruning -------------------------------
    let mut col_refs: Vec<ColRef> = Vec::new();
    for (mi, s) in scores.iter().enumerate() {
        let k = s.rows();
        for c in 0..s.cols() {
            let mut score = s.col_sum(c) / k.max(1) as f64;
            if let Some(h) = hints {
                if h[mi].force_prune.contains(&c) {
                    score = 0.0;
                } else if h[mi].protect.contains(&c) {
                    score = f64::INFINITY;
                }
            }
            col_refs.push(ColRef { matrix: mi, col: c, elements: k, score });
        }
    }
    col_refs.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("no NaN scores"));

    let mut col_keeps: Vec<Vec<bool>> = scores.iter().map(|s| vec![true; s.cols()]).collect();
    let mut pruned_elements = 0usize;
    for cref in &col_refs {
        if pruned_elements >= col_budget {
            break;
        }
        // Never let the column phase wipe out an entire matrix.
        let kept_in_matrix = col_keeps[cref.matrix].iter().filter(|&&k| k).count();
        if kept_in_matrix <= 1 {
            continue;
        }
        col_keeps[cref.matrix][cref.col] = false;
        pruned_elements += cref.elements;
    }

    // ---- Phase 2: regroup surviving columns into tiles of width G ------
    // (the paper's "re-organize the weight matrix tiles for row pruning")
    let mut tiles_per_matrix: Vec<Vec<TwTile>> = Vec::with_capacity(scores.len());
    for (mi, s) in scores.iter().enumerate() {
        let kept_cols: Vec<usize> =
            col_keeps[mi].iter().enumerate().filter_map(|(c, &k)| k.then_some(c)).collect();
        let mut tiles = Vec::new();
        for chunk in kept_cols.chunks(cfg.granularity) {
            tiles.push(TwTile { col_indices: chunk.to_vec(), row_keep: vec![true; s.rows()] });
        }
        if tiles.is_empty() {
            // Degenerate but possible for tiny matrices: keep one empty tile
            // so the mask structure stays well formed.
            tiles.push(TwTile { col_indices: Vec::new(), row_keep: vec![true; s.rows()] });
        }
        tiles_per_matrix.push(tiles);
    }

    // ---- Phase 3: global row pruning within tiles ----------------------
    let row_budget = target_pruned.saturating_sub(pruned_elements);
    let mut row_refs: Vec<RowRef> = Vec::new();
    for (mi, s) in scores.iter().enumerate() {
        for (ti, tile) in tiles_per_matrix[mi].iter().enumerate() {
            if tile.col_indices.is_empty() {
                continue;
            }
            for r in 0..s.rows() {
                let score =
                    s.row_sum_over_cols(r, &tile.col_indices) / tile.col_indices.len() as f64;
                row_refs.push(RowRef {
                    matrix: mi,
                    tile: ti,
                    row: r,
                    elements: tile.col_indices.len(),
                    score,
                });
            }
        }
    }
    row_refs.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("no NaN scores"));

    let mut pruned_row_elements = 0usize;
    for rref in &row_refs {
        if pruned_row_elements >= row_budget {
            break;
        }
        let tile = &mut tiles_per_matrix[rref.matrix][rref.tile];
        // Never let row pruning remove the last surviving row of a tile.
        if tile.kept_rows() <= 1 {
            continue;
        }
        tile.row_keep[rref.row] = false;
        pruned_row_elements += rref.elements;
    }

    scores
        .iter()
        .enumerate()
        .map(|(mi, s)| TileWiseMask {
            k: s.rows(),
            n: s.cols(),
            granularity: cfg.granularity,
            col_keep: col_keeps[mi].clone(),
            tiles: tiles_per_matrix[mi].clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_tensor::Matrix;

    fn scores(rows: usize, cols: usize, seed: u64) -> ImportanceScores {
        ImportanceScores::magnitude(&Matrix::random_uniform(rows, cols, 1.0, seed))
    }

    #[test]
    fn achieves_target_sparsity() {
        let s = scores(128, 256, 1);
        for target in [0.25, 0.5, 0.75, 0.9] {
            let mask =
                prune(&s, &TileWiseConfig::with_granularity(64), SparsityTarget::new(target));
            let achieved = mask.sparsity();
            assert!((achieved - target).abs() < 0.02, "target {target} achieved {achieved}");
            // The flat mask agrees with the structured accounting.
            assert!((mask.to_pattern_mask().sparsity() - achieved).abs() < 1e-9);
        }
    }

    #[test]
    fn tiles_cover_surviving_columns_exactly_once() {
        let s = scores(64, 200, 2);
        let mask = prune(&s, &TileWiseConfig::with_granularity(32), SparsityTarget::new(0.6));
        let mut seen = [false; 200];
        for tile in mask.tiles() {
            assert!(tile.col_indices.len() <= 32);
            for &c in &tile.col_indices {
                assert!(!seen[c], "column {c} appears in two tiles");
                seen[c] = true;
                assert!(mask.col_keep()[c], "tile contains a pruned column");
            }
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert_eq!(covered, mask.kept_cols());
    }

    #[test]
    fn rows_are_pruned_per_tile_not_globally() {
        // With two tiles whose importance differs strongly, the weak tile
        // should lose more rows: tiles keep different numbers of rows.
        let m = Matrix::from_fn(64, 128, |_, c| if c < 64 { 10.0 } else { 0.1 });
        let s = ImportanceScores::from_matrix(m);
        let mask = prune(&s, &TileWiseConfig::with_granularity(64), SparsityTarget::new(0.5));
        let kept = mask.tile_kept_rows();
        assert_eq!(kept.len(), 2);
        assert!(
            kept[0] > kept[1],
            "strong tile {} should keep more rows than weak tile {}",
            kept[0],
            kept[1]
        );
    }

    #[test]
    fn granularity_equal_to_n_is_global_structural_pruning() {
        // "At the other extreme where the tile size is the same as the matrix
        // size, TW pruning is equivalent to the global structural pruning
        // that prunes the entire row or column."
        let s = scores(32, 64, 3);
        let mask = prune(&s, &TileWiseConfig::with_granularity(64), SparsityTarget::new(0.5));
        assert!(mask.tiles().len() <= 2); // kept columns may spill into one tile only
        let pm = mask.to_pattern_mask();
        // Every row of the mask is either fully kept (over kept columns) or
        // fully pruned.
        for r in 0..32 {
            let kept_in_row: Vec<usize> = (0..64).filter(|&c| pm.keeps(r, c)).collect();
            assert!(
                kept_in_row.is_empty() || kept_in_row.len() == mask.kept_cols(),
                "row {r} is partially pruned across the single tile"
            );
        }
    }

    #[test]
    fn granularity_one_prunes_individual_columns_rows() {
        // G = 1 makes every surviving column its own tile, so row pruning can
        // remove individual elements: the pattern approaches EW in
        // flexibility.
        let s = scores(16, 16, 4);
        let mask = prune(&s, &TileWiseConfig::with_granularity(1), SparsityTarget::new(0.5));
        assert!(mask.tiles().len() == mask.kept_cols());
        assert!((mask.sparsity() - 0.5).abs() < 0.07);
    }

    #[test]
    fn global_pruning_allocates_unevenly_across_matrices() {
        // A strong and a weak matrix: the weak one must end up sparser
        // (the Fig. 5 phenomenon exploited by global ranking).
        let strong = ImportanceScores::from_matrix(Matrix::from_fn(64, 64, |r, c| {
            1.0 + ((r * 31 + c * 17) % 97) as f32 / 97.0
        }));
        let weak = ImportanceScores::from_matrix(Matrix::from_fn(64, 64, |r, c| {
            0.01 + ((r * 13 + c * 7) % 89) as f32 / 8900.0
        }));
        let masks = prune_global(
            &[strong, weak],
            &TileWiseConfig::with_granularity(32),
            SparsityTarget::new(0.5),
            None,
        );
        assert!(masks[1].sparsity() > masks[0].sparsity() + 0.2);
    }

    #[test]
    fn retained_importance_ordering_ew_tw_bw() {
        // The paper's irregularity relationship: EW > TW > BW at the same
        // sparsity, measured here as retained importance.
        let s = ImportanceScores::magnitude(&Matrix::random_normal(128, 128, 1.0, 5));
        let target = SparsityTarget::new(0.75);
        let ew = crate::ew::prune(&s, target).retained_importance(&s);
        let tw = prune(&s, &TileWiseConfig::with_granularity(32), target)
            .to_pattern_mask()
            .retained_importance(&s);
        let bw = crate::bw::prune(&s, 32, target).retained_importance(&s);
        assert!(ew >= tw, "EW {ew} should retain at least as much as TW {tw}");
        assert!(tw >= bw, "TW {tw} should retain at least as much as BW {bw}");
    }

    #[test]
    fn never_prunes_last_column_or_row() {
        let s = scores(8, 4, 6);
        let mask = prune(&s, &TileWiseConfig::with_granularity(2), SparsityTarget::new(0.95));
        assert!(mask.kept_cols() >= 1);
        for tile in mask.tiles() {
            if !tile.col_indices.is_empty() {
                assert!(tile.kept_rows() >= 1);
            }
        }
    }

    #[test]
    fn column_budget_share_extremes() {
        let s = scores(64, 64, 7);
        let all_cols = TileWiseConfig { granularity: 16, column_budget_share: 1.0 };
        let all_rows = TileWiseConfig { granularity: 16, column_budget_share: 0.0 };
        let m_cols = prune(&s, &all_cols, SparsityTarget::new(0.5));
        let m_rows = prune(&s, &all_rows, SparsityTarget::new(0.5));
        // Column-only pruning removes ~half the columns; row-only keeps all.
        assert!(m_cols.kept_cols() <= 36);
        assert_eq!(m_rows.kept_cols(), 64);
        assert!((m_cols.sparsity() - 0.5).abs() < 0.05);
        assert!((m_rows.sparsity() - 0.5).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "granularity must be positive")]
    fn zero_granularity_panics() {
        let s = scores(4, 4, 8);
        let _ = prune(
            &s,
            &TileWiseConfig { granularity: 0, column_budget_share: 0.5 },
            SparsityTarget::new(0.5),
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tw_tensor::Matrix;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The structured mask and its flattened PatternMask always agree on
        /// sparsity, and the achieved sparsity tracks the target.
        #[test]
        fn mask_consistency(rows in 8usize..48, cols in 8usize..48, g in 1usize..24,
                            target in 0.05f64..0.9, seed in any::<u64>()) {
            let s = ImportanceScores::magnitude(&Matrix::random_uniform(rows, cols, 1.0, seed));
            let mask = prune(&s, &TileWiseConfig::with_granularity(g), SparsityTarget::new(target));
            let flat = mask.to_pattern_mask();
            prop_assert!((mask.sparsity() - flat.sparsity()).abs() < 1e-9);
            // Within a coarse tolerance (small matrices quantise heavily).
            let unit = 1.0 / (rows.min(cols) as f64);
            prop_assert!((mask.sparsity() - target).abs() < 0.1 + unit,
                "target {} achieved {}", target, mask.sparsity());
        }

        /// EW always retains at least as much importance as TW at the same
        /// achieved sparsity.
        #[test]
        fn ew_upper_bounds_tw(rows in 16usize..48, cols in 16usize..48, g in 4usize..24,
                              target in 0.2f64..0.8, seed in any::<u64>()) {
            let s = ImportanceScores::magnitude(&Matrix::random_uniform(rows, cols, 1.0, seed));
            let tw_mask = prune(&s, &TileWiseConfig::with_granularity(g), SparsityTarget::new(target));
            let achieved = tw_mask.sparsity().clamp(0.0, 0.999);
            let ew_mask = crate::ew::prune(&s, SparsityTarget::new(achieved));
            prop_assert!(
                ew_mask.retained_importance(&s) + 1e-9
                    >= tw_mask.to_pattern_mask().retained_importance(&s)
            );
        }
    }
}
