//! Sparsity-pattern taxonomy and the common mask type every pruner produces.

use crate::importance::ImportanceScores;
use tw_tensor::Matrix;

/// The sparsity patterns studied in the paper (Fig. 2 and Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PruningPattern {
    /// No pruning: the dense baseline.
    Dense,
    /// Element-wise (EW): unstructured pruning of individual elements.
    ElementWise,
    /// Vector-wise (VW): each column is split into vectors of `vector_size`
    /// elements and the same fraction is pruned inside every vector
    /// (Zhu et al., vector size 16 in the paper's evaluation).
    VectorWise {
        /// Number of elements per vector along the K dimension.
        vector_size: usize,
    },
    /// Block-wise (BW): square `block_size x block_size` blocks are the
    /// pruning unit (Narang et al., 32x32 in the paper's evaluation).
    BlockWise {
        /// Block edge length.
        block_size: usize,
    },
    /// Tile-wise (TW): the paper's contribution — column then row pruning
    /// within output tiles of width `granularity` (G), globally ranked.
    TileWise {
        /// Tile width G.
        granularity: usize,
    },
    /// Hybrid tile-element-wise (TEW): TW pruned to `target + delta`, then
    /// `delta` of the most important pruned elements are restored as an
    /// element-wise overlay.
    TileElementWise {
        /// Tile width G.
        granularity: usize,
        /// Fraction of elements restored as the EW overlay (e.g. 0.05).
        delta: f64,
    },
}

impl PruningPattern {
    /// A short stable name used in reports and CSV output
    /// (`dense`, `ew`, `vw16`, `bw32`, `tw128`, `tew128-5%`).
    pub fn label(&self) -> String {
        match self {
            PruningPattern::Dense => "dense".to_string(),
            PruningPattern::ElementWise => "ew".to_string(),
            PruningPattern::VectorWise { vector_size } => format!("vw{vector_size}"),
            PruningPattern::BlockWise { block_size } => format!("bw{block_size}"),
            PruningPattern::TileWise { granularity } => format!("tw{granularity}"),
            PruningPattern::TileElementWise { granularity, delta } => {
                format!("tew{granularity}-{:.1}%", delta * 100.0)
            }
        }
    }

    /// True for patterns whose surviving weights remain executable as dense
    /// GEMM on a tensor-core-class accelerator without hardware changes
    /// (dense, BW with large blocks, TW, the TW part of TEW).
    pub fn is_gemm_compatible(&self) -> bool {
        !matches!(self, PruningPattern::ElementWise | PruningPattern::VectorWise { .. })
    }
}

/// A sparsity target in `[0, 1)`: the fraction of weights to remove.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct SparsityTarget(f64);

impl SparsityTarget {
    /// Creates a target, validating the range.
    ///
    /// # Panics
    /// Panics if `value` is not in `[0, 1)`.
    pub fn new(value: f64) -> Self {
        assert!((0.0..1.0).contains(&value), "sparsity target must be in [0, 1), got {value}");
        Self(value)
    }

    /// The fraction of weights to remove.
    pub fn fraction(&self) -> f64 {
        self.0
    }

    /// Number of elements to prune out of `total`.
    pub fn count_of(&self, total: usize) -> usize {
        (self.0 * total as f64).round() as usize
    }
}

/// The result of applying a pruning pattern to one weight matrix: an
/// element-level keep mask plus the achieved sparsity.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternMask {
    rows: usize,
    cols: usize,
    /// Row-major keep mask: `true` means the weight survives.
    keep: Vec<bool>,
}

impl PatternMask {
    /// Builds a mask from a row-major keep vector.
    ///
    /// # Panics
    /// Panics if the vector length does not match `rows * cols`.
    pub fn new(rows: usize, cols: usize, keep: Vec<bool>) -> Self {
        assert_eq!(keep.len(), rows * cols, "keep mask length mismatch");
        Self { rows, cols, keep }
    }

    /// A mask that keeps every element (the dense "pattern").
    pub fn keep_all(rows: usize, cols: usize) -> Self {
        Self { rows, cols, keep: vec![true; rows * cols] }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The row-major keep vector.
    pub fn keep(&self) -> &[bool] {
        &self.keep
    }

    /// Whether element `(r, c)` survives.
    #[inline]
    pub fn keeps(&self, r: usize, c: usize) -> bool {
        self.keep[r * self.cols + c]
    }

    /// Marks element `(r, c)` as pruned.
    pub fn prune(&mut self, r: usize, c: usize) {
        self.keep[r * self.cols + c] = false;
    }

    /// Marks element `(r, c)` as kept (used by the TEW restore step).
    pub fn restore(&mut self, r: usize, c: usize) {
        self.keep[r * self.cols + c] = true;
    }

    /// Number of surviving elements.
    pub fn kept_count(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }

    /// Number of pruned elements.
    pub fn pruned_count(&self) -> usize {
        self.keep.len() - self.kept_count()
    }

    /// Achieved sparsity (fraction of pruned elements).
    pub fn sparsity(&self) -> f64 {
        if self.keep.is_empty() {
            return 0.0;
        }
        self.pruned_count() as f64 / self.keep.len() as f64
    }

    /// Applies the mask to a weight matrix, zeroing pruned elements.
    pub fn apply(&self, weights: &Matrix) -> Matrix {
        assert_eq!(weights.shape(), self.shape(), "mask/weights shape mismatch");
        weights.apply_mask(&self.keep)
    }

    /// Fraction of total importance retained by this mask.
    pub fn retained_importance(&self, scores: &ImportanceScores) -> f64 {
        assert_eq!(scores.shape(), self.shape(), "mask/scores shape mismatch");
        scores.retained_fraction(&self.keep)
    }

    /// Per-column sparsity (used by the Fig. 13 heatmaps).
    pub fn col_sparsity(&self) -> Vec<f64> {
        (0..self.cols)
            .map(|c| {
                let pruned = (0..self.rows).filter(|&r| !self.keeps(r, c)).count();
                pruned as f64 / self.rows.max(1) as f64
            })
            .collect()
    }

    /// Intersection with another mask: an element survives only if both
    /// masks keep it.
    pub fn and(&self, other: &PatternMask) -> PatternMask {
        assert_eq!(self.shape(), other.shape(), "mask shape mismatch");
        let keep = self.keep.iter().zip(&other.keep).map(|(&a, &b)| a && b).collect();
        PatternMask { rows: self.rows, cols: self.cols, keep }
    }

    /// Union with another mask: an element survives if either mask keeps it.
    pub fn or(&self, other: &PatternMask) -> PatternMask {
        assert_eq!(self.shape(), other.shape(), "mask shape mismatch");
        let keep = self.keep.iter().zip(&other.keep).map(|(&a, &b)| a || b).collect();
        PatternMask { rows: self.rows, cols: self.cols, keep }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(PruningPattern::Dense.label(), "dense");
        assert_eq!(PruningPattern::ElementWise.label(), "ew");
        assert_eq!(PruningPattern::VectorWise { vector_size: 16 }.label(), "vw16");
        assert_eq!(PruningPattern::BlockWise { block_size: 32 }.label(), "bw32");
        assert_eq!(PruningPattern::TileWise { granularity: 128 }.label(), "tw128");
        assert_eq!(
            PruningPattern::TileElementWise { granularity: 128, delta: 0.05 }.label(),
            "tew128-5.0%"
        );
    }

    #[test]
    fn gemm_compatibility() {
        assert!(PruningPattern::Dense.is_gemm_compatible());
        assert!(PruningPattern::TileWise { granularity: 64 }.is_gemm_compatible());
        assert!(PruningPattern::BlockWise { block_size: 32 }.is_gemm_compatible());
        assert!(!PruningPattern::ElementWise.is_gemm_compatible());
        assert!(!PruningPattern::VectorWise { vector_size: 16 }.is_gemm_compatible());
    }

    #[test]
    fn sparsity_target_validation() {
        let t = SparsityTarget::new(0.75);
        assert_eq!(t.fraction(), 0.75);
        assert_eq!(t.count_of(100), 75);
        assert_eq!(SparsityTarget::new(0.0).count_of(10), 0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn sparsity_target_rejects_one() {
        let _ = SparsityTarget::new(1.0);
    }

    #[test]
    fn mask_counting_and_apply() {
        let mut m = PatternMask::keep_all(2, 3);
        assert_eq!(m.sparsity(), 0.0);
        m.prune(0, 1);
        m.prune(1, 2);
        assert_eq!(m.kept_count(), 4);
        assert!((m.sparsity() - 2.0 / 6.0).abs() < 1e-12);
        let w = Matrix::filled(2, 3, 2.0);
        let pruned = m.apply(&w);
        assert_eq!(pruned.count_zeros(), 2);
        assert_eq!(pruned.get(0, 1), 0.0);
        assert_eq!(pruned.get(0, 0), 2.0);
        m.restore(0, 1);
        assert!(m.keeps(0, 1));
    }

    #[test]
    fn retained_importance_matches_scores() {
        let scores = ImportanceScores::from_matrix(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let mut m = PatternMask::keep_all(2, 2);
        m.prune(1, 1);
        assert!((m.retained_importance(&scores) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn col_sparsity_per_column() {
        let mut m = PatternMask::keep_all(4, 2);
        m.prune(0, 0);
        m.prune(1, 0);
        assert_eq!(m.col_sparsity(), vec![0.5, 0.0]);
    }

    #[test]
    fn and_or_compose() {
        let mut a = PatternMask::keep_all(1, 3);
        let mut b = PatternMask::keep_all(1, 3);
        a.prune(0, 0);
        b.prune(0, 2);
        let both = a.and(&b);
        assert_eq!(both.keep(), &[false, true, false]);
        let either = a.or(&b);
        assert_eq!(either.keep(), &[true, true, true]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn new_rejects_wrong_length() {
        let _ = PatternMask::new(2, 2, vec![true; 3]);
    }
}
