//! Apriori tuning (Algorithm 2).
//!
//! The EW pattern at the target sparsity is the best achievable allocation of
//! the pruning budget.  The paper observes "a strong locality pattern, where
//! more than 10% tiles (columns) are completely pruned when the pruning
//! target sparsity is 75%", and uses that EW result as prior knowledge: the
//! top-n columns that EW prunes hardest get importance score 0 (prune them
//! first) and the last-n columns that EW keeps densest get score +inf (never
//! prune them in the column phase).

use crate::importance::{largest_k_indices, smallest_k_indices, ImportanceScores};
use crate::pattern::{PatternMask, SparsityTarget};
use std::collections::HashSet;

/// How aggressively apriori tuning pins columns at the two extremes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AprioriConfig {
    /// Fraction of columns (per matrix) flagged as "prune first" — the
    /// paper's top-n with the highest EW sparsity.
    pub top_n_fraction: f64,
    /// Fraction of columns (per matrix) flagged as "never prune" — the
    /// paper's last-n with the lowest EW sparsity.
    pub last_n_fraction: f64,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        // 10% pinned on each side, matching the paper's observation that
        // over 10% of columns are fully pruned by EW at 75% sparsity.
        Self { top_n_fraction: 0.10, last_n_fraction: 0.10 }
    }
}

/// Per-matrix column hints produced by apriori tuning and consumed by the
/// TW column-pruning phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AprioriHints {
    /// Columns whose tile score is forced to zero (pruned first).
    pub force_prune: HashSet<usize>,
    /// Columns whose tile score is forced to +inf (never pruned by the
    /// column phase).
    pub protect: HashSet<usize>,
}

/// Runs EW pruning at the target sparsity and derives per-column hints for
/// every matrix (Algorithm 2, lifted to the multi-matrix global setting).
pub fn derive_hints(
    scores: &[ImportanceScores],
    target: SparsityTarget,
    cfg: &AprioriConfig,
) -> Vec<AprioriHints> {
    let ew_masks = crate::ew::prune_global(scores, target);
    hints_from_ew(&ew_masks, cfg)
}

/// Derives hints from precomputed EW masks (useful when the caller already
/// ran EW, e.g. the multi-stage scheduler reuses one EW solve per stage).
pub fn hints_from_ew(ew_masks: &[PatternMask], cfg: &AprioriConfig) -> Vec<AprioriHints> {
    ew_masks
        .iter()
        .map(|mask| {
            let col_sparsity = mask.col_sparsity();
            let n = col_sparsity.len();
            let top_n = (cfg.top_n_fraction * n as f64).round() as usize;
            let last_n = (cfg.last_n_fraction * n as f64).round() as usize;
            // Columns EW prunes hardest -> force prune.
            let force_prune: HashSet<usize> =
                largest_k_indices(&col_sparsity, top_n).into_iter().collect();
            // Columns EW keeps densest -> protect.
            let protect: HashSet<usize> = smallest_k_indices(&col_sparsity, last_n)
                .into_iter()
                .filter(|c| !force_prune.contains(c))
                .collect();
            AprioriHints { force_prune, protect }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tw::{self, TileWiseConfig};
    use tw_tensor::Matrix;

    fn clustered_scores(seed: u64) -> ImportanceScores {
        // Half the columns carry low importance with high variance; EW will
        // hollow them out almost completely.
        let base = Matrix::random_uniform(64, 64, 1.0, seed);
        let m = Matrix::from_fn(64, 64, |r, c| {
            let v = base.get(r, c).abs();
            if c % 2 == 0 {
                v * 0.05
            } else {
                v + 0.5
            }
        });
        ImportanceScores::from_matrix(m)
    }

    #[test]
    fn hints_flag_extreme_columns() {
        let scores = vec![clustered_scores(1)];
        let hints = derive_hints(&scores, SparsityTarget::new(0.75), &AprioriConfig::default());
        assert_eq!(hints.len(), 1);
        let h = &hints[0];
        assert!(!h.force_prune.is_empty());
        assert!(!h.protect.is_empty());
        // Force-pruned columns must be the weak (even) ones; protected
        // columns must be strong (odd) ones.
        assert!(h.force_prune.iter().all(|c| c % 2 == 0), "force_prune {:?}", h.force_prune);
        assert!(h.protect.iter().all(|c| c % 2 == 1), "protect {:?}", h.protect);
    }

    #[test]
    fn force_and_protect_are_disjoint() {
        let scores = vec![clustered_scores(2), clustered_scores(3)];
        let hints = derive_hints(&scores, SparsityTarget::new(0.6), &AprioriConfig::default());
        for h in &hints {
            assert!(h.force_prune.is_disjoint(&h.protect));
        }
    }

    #[test]
    fn fractions_control_counts() {
        let scores = vec![clustered_scores(4)];
        let cfg = AprioriConfig { top_n_fraction: 0.25, last_n_fraction: 0.125 };
        let hints = derive_hints(&scores, SparsityTarget::new(0.75), &cfg);
        assert_eq!(hints[0].force_prune.len(), 16);
        assert!(hints[0].protect.len() <= 8);
    }

    #[test]
    fn apriori_tuning_does_not_reduce_retained_importance() {
        // With clustered importance, TW + apriori should retain at least as
        // much importance as TW alone (it pushes the column phase towards
        // the columns EW would have emptied anyway).
        let scores = vec![clustered_scores(5)];
        let cfg = TileWiseConfig::with_granularity(16);
        let target = SparsityTarget::new(0.75);
        let plain = tw::prune_global(&scores, &cfg, target, None);
        let hints = derive_hints(&scores, target, &AprioriConfig::default());
        let tuned = tw::prune_global(&scores, &cfg, target, Some(&hints));
        let plain_ret = plain[0].to_pattern_mask().retained_importance(&scores[0]);
        let tuned_ret = tuned[0].to_pattern_mask().retained_importance(&scores[0]);
        assert!(
            tuned_ret >= plain_ret - 0.02,
            "apriori tuning lost importance: plain {plain_ret} tuned {tuned_ret}"
        );
    }

    #[test]
    fn zero_fractions_produce_empty_hints() {
        let scores = vec![clustered_scores(6)];
        let cfg = AprioriConfig { top_n_fraction: 0.0, last_n_fraction: 0.0 };
        let hints = derive_hints(&scores, SparsityTarget::new(0.5), &cfg);
        assert!(hints[0].force_prune.is_empty());
        assert!(hints[0].protect.is_empty());
    }
}
