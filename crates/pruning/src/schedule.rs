//! Multi-stage pruning driver (Algorithm 1).
//!
//! "We adopt the multi-stage pruning algorithm that gradually prunes the
//! pre-trained dense model to reach a target sparsity.  Each stage consists
//! of a pruning and fine-tuning step."  The driver here owns that loop:
//! at every stage it recomputes importance scores, applies the selected
//! sparsity pattern globally across all layers, zeroes the pruned weights and
//! invokes a caller-supplied fine-tuning hook before moving to the next
//! (larger) sparsity target.

use crate::apriori::{self, AprioriConfig};
use crate::bw;
use crate::ew;
use crate::importance::{ImportanceMethod, ImportanceScores};
use crate::pattern::{PatternMask, PruningPattern, SparsityTarget};
use crate::tew::{self, TewMask};
use crate::tw::{self, TileWiseConfig, TileWiseMask};
use crate::vw;
use tw_tensor::Matrix;

/// A named collection of weight matrices (and optional gradients) that is
/// pruned as one unit with a global sparsity budget — e.g. the 72 weight
/// matrices of BERT-base.
#[derive(Clone, Debug)]
pub struct LayerSet {
    names: Vec<String>,
    weights: Vec<Matrix>,
    grads: Option<Vec<Matrix>>,
}

impl LayerSet {
    /// Builds a layer set from names and weights (magnitude importance only).
    pub fn new(names: Vec<String>, weights: Vec<Matrix>) -> Self {
        assert_eq!(names.len(), weights.len(), "one name per weight matrix");
        Self { names, weights, grads: None }
    }

    /// Builds a layer set with gradients, enabling Taylor importance.
    pub fn with_grads(names: Vec<String>, weights: Vec<Matrix>, grads: Vec<Matrix>) -> Self {
        assert_eq!(names.len(), weights.len(), "one name per weight matrix");
        assert_eq!(weights.len(), grads.len(), "one gradient per weight matrix");
        for (w, g) in weights.iter().zip(&grads) {
            assert_eq!(w.shape(), g.shape(), "weight/grad shape mismatch");
        }
        Self { names, weights, grads: Some(grads) }
    }

    /// Layer names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the set holds no layers.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The weight matrices.
    pub fn weights(&self) -> &[Matrix] {
        &self.weights
    }

    /// Mutable access to the weight matrices (fine-tuning hooks use this).
    pub fn weights_mut(&mut self) -> &mut [Matrix] {
        &mut self.weights
    }

    /// The gradient matrices, if any.
    pub fn grads(&self) -> Option<&[Matrix]> {
        self.grads.as_deref()
    }

    /// Mutable access to the gradients.
    pub fn grads_mut(&mut self) -> Option<&mut [Matrix]> {
        self.grads.as_deref_mut()
    }

    /// Total number of weight elements across all layers.
    pub fn total_elements(&self) -> usize {
        self.weights.iter().map(|w| w.len()).sum()
    }

    /// Overall sparsity of the current weights.
    pub fn sparsity(&self) -> f64 {
        let zeros: usize = self.weights.iter().map(|w| w.count_zeros()).sum();
        zeros as f64 / self.total_elements().max(1) as f64
    }

    /// Computes importance scores for every layer with the given method.
    pub fn importance(&self, method: ImportanceMethod) -> Vec<ImportanceScores> {
        match method {
            ImportanceMethod::Magnitude => {
                self.weights.iter().map(ImportanceScores::magnitude).collect()
            }
            ImportanceMethod::Taylor => {
                let grads = self
                    .grads
                    .as_ref()
                    .expect("Taylor importance requires gradients in the LayerSet");
                self.weights
                    .iter()
                    .zip(grads)
                    .map(|(w, g)| ImportanceScores::taylor(w, g))
                    .collect()
            }
        }
    }

    /// Applies masks to the weights, zeroing pruned elements in place.
    pub fn apply_masks(&mut self, masks: &[PatternMask]) {
        assert_eq!(masks.len(), self.weights.len(), "one mask per layer");
        for (w, m) in self.weights.iter_mut().zip(masks) {
            *w = m.apply(w);
        }
    }
}

/// Configuration of the multi-stage pruning run.
#[derive(Clone, Debug)]
pub struct MultiStageConfig {
    /// Final sparsity target `S`.
    pub target: SparsityTarget,
    /// Number of prune/fine-tune stages (Algorithm 1's outer loop).
    pub stages: usize,
    /// The sparsity pattern to enforce.
    pub pattern: PruningPattern,
    /// Importance estimator.
    pub importance: ImportanceMethod,
    /// Apriori tuning (TW/TEW only); `None` disables Algorithm 2.
    pub apriori: Option<AprioriConfig>,
}

impl MultiStageConfig {
    /// The paper's default: 4 stages, Taylor importance, apriori tuning on.
    pub fn paper_default(pattern: PruningPattern, target: f64) -> Self {
        Self {
            target: SparsityTarget::new(target),
            stages: 4,
            pattern,
            importance: ImportanceMethod::Taylor,
            apriori: Some(AprioriConfig::default()),
        }
    }
}

/// Per-stage record emitted by the pruner.
#[derive(Clone, Debug, PartialEq)]
pub struct PruneStageReport {
    /// Stage index (0-based).
    pub stage: usize,
    /// Sparsity targeted at this stage.
    pub target_sparsity: f64,
    /// Sparsity actually achieved over all layers.
    pub achieved_sparsity: f64,
    /// Fraction of total importance retained by the stage's masks.
    pub retained_importance: f64,
}

/// The final result of a multi-stage pruning run.
#[derive(Clone, Debug)]
pub struct PruneOutcome {
    /// Final element-level keep masks, one per layer.
    pub masks: Vec<PatternMask>,
    /// Structured tile-wise masks when the pattern is TW (or the TW part of
    /// TEW); used by the execution planner.
    pub tw_masks: Option<Vec<TileWiseMask>>,
    /// Full TEW masks (TW part + overlay) when the pattern is TEW.
    pub tew_masks: Option<Vec<TewMask>>,
    /// One report per stage, in order.
    pub stages: Vec<PruneStageReport>,
}

impl PruneOutcome {
    /// Overall achieved sparsity of the final masks.
    pub fn final_sparsity(&self) -> f64 {
        let total: usize = self.masks.iter().map(|m| m.keep().len()).sum();
        let pruned: usize = self.masks.iter().map(|m| m.pruned_count()).sum();
        if total == 0 {
            0.0
        } else {
            pruned as f64 / total as f64
        }
    }
}

/// The multi-stage pruning driver.
pub struct MultiStagePruner {
    config: MultiStageConfig,
}

impl MultiStagePruner {
    /// Creates a pruner with the given configuration.
    pub fn new(config: MultiStageConfig) -> Self {
        assert!(config.stages > 0, "at least one stage is required");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MultiStageConfig {
        &self.config
    }

    /// Sparsity target of stage `i` (0-based): a linear ramp from
    /// `target/stages` up to `target` (the `GraduallyIncrease` step).
    pub fn stage_target(&self, stage: usize) -> f64 {
        let s = self.config.target.fraction();
        s * (stage + 1) as f64 / self.config.stages as f64
    }

    /// Runs the full prune/fine-tune loop.
    ///
    /// `fine_tune` is invoked after every stage with the layer set (whose
    /// weights have already been masked) and the masks of that stage; it may
    /// adjust weights and gradients to model accuracy recovery.  Pass a
    /// no-op closure when fine-tuning is not modelled.
    pub fn run<F>(&self, layers: &mut LayerSet, mut fine_tune: F) -> PruneOutcome
    where
        F: FnMut(&mut LayerSet, &[PatternMask], usize),
    {
        let mut stage_reports = Vec::with_capacity(self.config.stages);
        let mut final_masks: Vec<PatternMask> = Vec::new();
        let mut final_tw: Option<Vec<TileWiseMask>> = None;
        let mut final_tew: Option<Vec<TewMask>> = None;

        for stage in 0..self.config.stages {
            let stage_sparsity = self.stage_target(stage);
            let target = SparsityTarget::new(stage_sparsity.min(0.9999));
            let scores = layers.importance(self.config.importance);

            let (masks, tw_masks, tew_masks) = self.prune_once(&scores, target);

            // Zero the pruned weights before fine-tuning, as Algorithm 1 does.
            layers.apply_masks(&masks);
            fine_tune(layers, &masks, stage);

            let achieved = {
                let total: usize = masks.iter().map(|m| m.keep().len()).sum();
                let pruned: usize = masks.iter().map(|m| m.pruned_count()).sum();
                pruned as f64 / total.max(1) as f64
            };
            let retained = {
                let total: f64 = scores.iter().map(|s| s.total()).sum();
                let kept: f64 = scores.iter().zip(&masks).map(|(s, m)| s.retained(m.keep())).sum();
                if total == 0.0 {
                    1.0
                } else {
                    kept / total
                }
            };
            stage_reports.push(PruneStageReport {
                stage,
                target_sparsity: stage_sparsity,
                achieved_sparsity: achieved,
                retained_importance: retained,
            });

            final_masks = masks;
            final_tw = tw_masks;
            final_tew = tew_masks;
        }

        PruneOutcome {
            masks: final_masks,
            tw_masks: final_tw,
            tew_masks: final_tew,
            stages: stage_reports,
        }
    }

    /// One pruning pass at a fixed sparsity target.
    fn prune_once(
        &self,
        scores: &[ImportanceScores],
        target: SparsityTarget,
    ) -> (Vec<PatternMask>, Option<Vec<TileWiseMask>>, Option<Vec<TewMask>>) {
        match self.config.pattern {
            PruningPattern::Dense => (
                scores.iter().map(|s| PatternMask::keep_all(s.rows(), s.cols())).collect(),
                None,
                None,
            ),
            PruningPattern::ElementWise => (ew::prune_global(scores, target), None, None),
            PruningPattern::VectorWise { vector_size } => {
                (vw::prune_all(scores, vector_size, target), None, None)
            }
            PruningPattern::BlockWise { block_size } => {
                (bw::prune_global(scores, block_size, target), None, None)
            }
            PruningPattern::TileWise { granularity } => {
                let cfg = TileWiseConfig::with_granularity(granularity);
                let hints =
                    self.config.apriori.as_ref().map(|a| apriori::derive_hints(scores, target, a));
                let tw_masks = tw::prune_global(scores, &cfg, target, hints.as_deref());
                let masks = tw_masks.iter().map(|m| m.to_pattern_mask()).collect();
                (masks, Some(tw_masks), None)
            }
            PruningPattern::TileElementWise { granularity, delta } => {
                let cfg = TileWiseConfig::with_granularity(granularity);
                let hints =
                    self.config.apriori.as_ref().map(|a| apriori::derive_hints(scores, target, a));
                let tew_masks = tew::prune_global(scores, &cfg, target, delta, hints.as_deref());
                let masks = tew_masks.iter().map(|m| m.combined_mask()).collect();
                let tw_masks = tew_masks.iter().map(|m| m.tw().clone()).collect();
                (masks, Some(tw_masks), Some(tew_masks))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer_set(seed: u64) -> LayerSet {
        let names = vec!["fc1".to_string(), "fc2".to_string(), "attn".to_string()];
        let weights = vec![
            Matrix::random_normal(64, 96, 1.0, seed),
            Matrix::random_normal(96, 64, 0.5, seed + 1),
            Matrix::random_normal(64, 64, 2.0, seed + 2),
        ];
        let grads = vec![
            Matrix::random_normal(64, 96, 0.1, seed + 3),
            Matrix::random_normal(96, 64, 0.1, seed + 4),
            Matrix::random_normal(64, 64, 0.1, seed + 5),
        ];
        LayerSet::with_grads(names, weights, grads)
    }

    #[test]
    fn layer_set_accounting() {
        let ls = layer_set(1);
        assert_eq!(ls.len(), 3);
        assert_eq!(ls.total_elements(), 64 * 96 + 96 * 64 + 64 * 64);
        assert!(ls.sparsity() < 0.01);
        assert_eq!(ls.importance(ImportanceMethod::Taylor).len(), 3);
        assert_eq!(ls.importance(ImportanceMethod::Magnitude).len(), 3);
    }

    #[test]
    #[should_panic(expected = "requires gradients")]
    fn taylor_without_grads_panics() {
        let ls = LayerSet::new(vec!["w".into()], vec![Matrix::zeros(4, 4)]);
        let _ = ls.importance(ImportanceMethod::Taylor);
    }

    #[test]
    fn stage_targets_ramp_linearly() {
        let pruner = MultiStagePruner::new(MultiStageConfig::paper_default(
            PruningPattern::TileWise { granularity: 32 },
            0.8,
        ));
        assert!((pruner.stage_target(0) - 0.2).abs() < 1e-12);
        assert!((pruner.stage_target(3) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn multi_stage_reaches_target_for_every_pattern() {
        let patterns = [
            PruningPattern::ElementWise,
            PruningPattern::VectorWise { vector_size: 16 },
            PruningPattern::BlockWise { block_size: 16 },
            PruningPattern::TileWise { granularity: 32 },
            PruningPattern::TileElementWise { granularity: 32, delta: 0.02 },
        ];
        for pattern in patterns {
            let mut ls = layer_set(10);
            let pruner = MultiStagePruner::new(MultiStageConfig {
                target: SparsityTarget::new(0.75),
                stages: 3,
                pattern,
                importance: ImportanceMethod::Taylor,
                apriori: None,
            });
            let outcome = pruner.run(&mut ls, |_, _, _| {});
            assert!(
                (outcome.final_sparsity() - 0.75).abs() < 0.05,
                "{}: achieved {}",
                pattern.label(),
                outcome.final_sparsity()
            );
            assert_eq!(outcome.stages.len(), 3);
            // The layer weights carry at least the final mask's sparsity
            // (elements pruned in earlier stages stay zero even if a later
            // mask would have kept them).
            assert!(ls.sparsity() >= outcome.final_sparsity() - 1e-9);
        }
    }

    #[test]
    fn stage_sparsity_is_monotone() {
        let mut ls = layer_set(20);
        let pruner = MultiStagePruner::new(MultiStageConfig::paper_default(
            PruningPattern::TileWise { granularity: 16 },
            0.8,
        ));
        let outcome = pruner.run(&mut ls, |_, _, _| {});
        for w in outcome.stages.windows(2) {
            assert!(w[1].achieved_sparsity >= w[0].achieved_sparsity - 1e-9);
        }
        // Retained importance is a fraction of each stage's own score total.
        for s in &outcome.stages {
            assert!(s.retained_importance > 0.0 && s.retained_importance <= 1.0);
        }
    }

    #[test]
    fn tw_pattern_exposes_structured_masks() {
        let mut ls = layer_set(30);
        let pruner = MultiStagePruner::new(MultiStageConfig::paper_default(
            PruningPattern::TileWise { granularity: 32 },
            0.6,
        ));
        let outcome = pruner.run(&mut ls, |_, _, _| {});
        let tw = outcome.tw_masks.expect("TW masks present");
        assert_eq!(tw.len(), 3);
        for (structured, flat) in tw.iter().zip(&outcome.masks) {
            assert_eq!(&structured.to_pattern_mask(), flat);
        }
        assert!(outcome.tew_masks.is_none());
    }

    #[test]
    fn tew_pattern_exposes_overlay() {
        let mut ls = layer_set(40);
        let pruner = MultiStagePruner::new(MultiStageConfig::paper_default(
            PruningPattern::TileElementWise { granularity: 32, delta: 0.03 },
            0.7,
        ));
        let outcome = pruner.run(&mut ls, |_, _, _| {});
        let tew = outcome.tew_masks.expect("TEW masks present");
        let overlay_total: usize = tew.iter().map(|m| m.overlay_count()).sum();
        assert!(overlay_total > 0);
    }

    #[test]
    fn fine_tune_hook_is_called_each_stage() {
        let mut ls = layer_set(50);
        let pruner = MultiStagePruner::new(MultiStageConfig {
            target: SparsityTarget::new(0.5),
            stages: 4,
            pattern: PruningPattern::ElementWise,
            importance: ImportanceMethod::Magnitude,
            apriori: None,
        });
        let mut calls = Vec::new();
        let _ = pruner.run(&mut ls, |_, masks, stage| {
            calls.push((stage, masks.len()));
        });
        assert_eq!(calls, vec![(0, 3), (1, 3), (2, 3), (3, 3)]);
    }

    #[test]
    fn dense_pattern_prunes_nothing() {
        let mut ls = layer_set(60);
        let pruner = MultiStagePruner::new(MultiStageConfig {
            target: SparsityTarget::new(0.9),
            stages: 2,
            pattern: PruningPattern::Dense,
            importance: ImportanceMethod::Magnitude,
            apriori: None,
        });
        let outcome = pruner.run(&mut ls, |_, _, _| {});
        assert_eq!(outcome.final_sparsity(), 0.0);
        assert!(ls.sparsity() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_panics() {
        let _ = MultiStagePruner::new(MultiStageConfig {
            target: SparsityTarget::new(0.5),
            stages: 0,
            pattern: PruningPattern::ElementWise,
            importance: ImportanceMethod::Magnitude,
            apriori: None,
        });
    }
}
