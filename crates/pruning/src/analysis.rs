//! Sparsity-distribution analytics.
//!
//! These helpers compute the quantities behind the paper's characterisation
//! figures:
//!
//! * Fig. 5 — per-matrix sparsity of a globally EW-pruned model.
//! * Fig. 6 — cumulative probability distribution of zero elements inside
//!   candidate pruning units (BW blocks of 8x8 / 32x32, TW row-vectors of
//!   G elements).
//! * Fig. 13 — spatial heatmaps of the pruned weight layout.

use crate::pattern::PatternMask;

/// Per-matrix sparsity of a set of masks (Fig. 5's y-axis, one value per
/// weight-matrix index).
pub fn per_matrix_sparsity(masks: &[PatternMask]) -> Vec<f64> {
    masks.iter().map(|m| m.sparsity()).collect()
}

/// A point of a cumulative distribution: fraction of units whose zero-ratio
/// is `<= zero_ratio`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CdfPoint {
    /// Ratio of zero (pruned) elements within a unit, in `[0, 1]`.
    pub zero_ratio: f64,
    /// Cumulative probability of units at or below this ratio.
    pub cumulative_probability: f64,
}

/// The pruning-unit shapes Fig. 6 compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitShape {
    /// A square block of `size x size` elements (the BW unit).
    Block {
        /// Block edge length.
        size: usize,
    },
    /// A row vector of `g` elements within a tile (the TW row-pruning unit).
    RowVector {
        /// Tile width G.
        g: usize,
    },
}

/// Computes the zero-ratio of every unit of the given shape under an
/// existing (typically EW) mask, returning the ratios unsorted.
pub fn unit_zero_ratios(mask: &PatternMask, shape: UnitShape) -> Vec<f64> {
    let (rows, cols) = mask.shape();
    let mut ratios = Vec::new();
    match shape {
        UnitShape::Block { size } => {
            assert!(size > 0, "block size must be positive");
            for r0 in (0..rows).step_by(size) {
                for c0 in (0..cols).step_by(size) {
                    let r1 = (r0 + size).min(rows);
                    let c1 = (c0 + size).min(cols);
                    let total = (r1 - r0) * (c1 - c0);
                    let zeros = (r0..r1)
                        .flat_map(|r| (c0..c1).map(move |c| (r, c)))
                        .filter(|&(r, c)| !mask.keeps(r, c))
                        .count();
                    ratios.push(zeros as f64 / total as f64);
                }
            }
        }
        UnitShape::RowVector { g } => {
            assert!(g > 0, "vector length must be positive");
            for r in 0..rows {
                for c0 in (0..cols).step_by(g) {
                    let c1 = (c0 + g).min(cols);
                    let total = c1 - c0;
                    let zeros = (c0..c1).filter(|&c| !mask.keeps(r, c)).count();
                    ratios.push(zeros as f64 / total as f64);
                }
            }
        }
    }
    ratios
}

/// Builds the cumulative distribution of unit zero-ratios (Fig. 6) sampled at
/// `num_points` evenly spaced ratios in `[0, 1]`.
pub fn zero_ratio_cdf(mask: &PatternMask, shape: UnitShape, num_points: usize) -> Vec<CdfPoint> {
    assert!(num_points >= 2, "need at least two CDF points");
    let ratios = unit_zero_ratios(mask, shape);
    let n = ratios.len().max(1) as f64;
    (0..num_points)
        .map(|i| {
            let x = i as f64 / (num_points - 1) as f64;
            let count = ratios.iter().filter(|&&r| r <= x + 1e-12).count();
            CdfPoint { zero_ratio: x, cumulative_probability: count as f64 / n }
        })
        .collect()
}

/// Fraction of units that are completely prunable (zero-ratio == 1.0) — the
/// quantity the paper uses to argue TW's row-vector unit captures more
/// "free" sparsity than BW blocks.
pub fn fully_zero_unit_fraction(mask: &PatternMask, shape: UnitShape) -> f64 {
    let ratios = unit_zero_ratios(mask, shape);
    if ratios.is_empty() {
        return 0.0;
    }
    ratios.iter().filter(|&&r| r >= 1.0 - 1e-12).count() as f64 / ratios.len() as f64
}

/// A down-sampled heatmap of a mask's sparsity: the matrix is divided into a
/// `grid x grid` lattice of cells and each cell reports its local sparsity
/// (Fig. 13).
pub fn sparsity_heatmap(mask: &PatternMask, grid: usize) -> Vec<Vec<f64>> {
    assert!(grid > 0, "grid must be positive");
    let (rows, cols) = mask.shape();
    let cell_r = rows.div_ceil(grid).max(1);
    let cell_c = cols.div_ceil(grid).max(1);
    let mut heat = Vec::new();
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + cell_r).min(rows);
        let mut row = Vec::new();
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + cell_c).min(cols);
            let total = (r1 - r0) * (c1 - c0);
            let zeros = (r0..r1)
                .flat_map(|r| (c0..c1).map(move |c| (r, c)))
                .filter(|&(r, c)| !mask.keeps(r, c))
                .count();
            row.push(zeros as f64 / total.max(1) as f64);
            c0 = c1;
        }
        heat.push(row);
        r0 = r1;
    }
    heat
}

/// Standard deviation of per-matrix sparsity — a scalar summary of how
/// uneven the global pruning allocation is (higher means more uneven, which
/// is what EW/TW exhibit and VW cannot).
pub fn sparsity_unevenness(masks: &[PatternMask]) -> f64 {
    let s = per_matrix_sparsity(masks);
    if s.is_empty() {
        return 0.0;
    }
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    (s.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / s.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ew;
    use crate::importance::ImportanceScores;
    use crate::pattern::SparsityTarget;
    use tw_tensor::Matrix;

    fn ew_mask_75(seed: u64) -> PatternMask {
        let scores = ImportanceScores::magnitude(&Matrix::random_normal(128, 128, 1.0, seed));
        ew::prune(&scores, SparsityTarget::new(0.75))
    }

    #[test]
    fn per_matrix_sparsity_reports_each() {
        let masks = vec![ew_mask_75(1), PatternMask::keep_all(8, 8)];
        let s = per_matrix_sparsity(&masks);
        assert!((s[0] - 0.75).abs() < 1e-9);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let mask = ew_mask_75(2);
        for shape in [UnitShape::Block { size: 8 }, UnitShape::RowVector { g: 64 }] {
            let cdf = zero_ratio_cdf(&mask, shape, 21);
            assert_eq!(cdf.len(), 21);
            assert!(cdf
                .windows(2)
                .all(|w| { w[1].cumulative_probability >= w[0].cumulative_probability - 1e-12 }));
            assert!((cdf.last().unwrap().cumulative_probability - 1.0).abs() < 1e-12);
            assert!(cdf[0].cumulative_probability >= 0.0);
        }
    }

    #[test]
    fn tw_row_vectors_capture_more_full_zeros_than_large_blocks() {
        // The Fig. 6 claim: with the same number of elements per unit (64),
        // a TW row vector of 64 elements captures at least as many fully
        // zero units as an 8x8 BW block, and a 32x32 block captures fewer.
        // Use clustered importance so EW produces column locality.
        let m = Matrix::from_fn(128, 128, |r, c| {
            let col_strength = if (c / 16) % 2 == 0 { 0.05f32 } else { 1.0 };
            col_strength * (1.0 + ((r * 7 + c * 13) % 31) as f32 / 31.0)
        });
        let scores = ImportanceScores::from_matrix(m);
        let mask = ew::prune(&scores, SparsityTarget::new(0.75));
        let tw64 = fully_zero_unit_fraction(&mask, UnitShape::RowVector { g: 64 });
        let bw32 = fully_zero_unit_fraction(&mask, UnitShape::Block { size: 32 });
        assert!(
            tw64 >= bw32,
            "TW row vectors ({tw64}) should capture at least as many zero units as 32x32 blocks ({bw32})"
        );
    }

    #[test]
    fn unit_ratios_average_to_overall_sparsity_when_units_tile_exactly() {
        let mask = ew_mask_75(3);
        let ratios = unit_zero_ratios(&mask, UnitShape::Block { size: 8 });
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!((mean - mask.sparsity()).abs() < 1e-9);
    }

    #[test]
    fn heatmap_dimensions_and_range() {
        let mask = ew_mask_75(4);
        let heat = sparsity_heatmap(&mask, 16);
        assert_eq!(heat.len(), 16);
        assert!(heat.iter().all(|row| row.len() == 16));
        for row in &heat {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        // Average cell sparsity equals overall sparsity (cells tile exactly).
        let mean: f64 = heat.iter().flatten().sum::<f64>() / (heat.len() * heat[0].len()) as f64;
        assert!((mean - mask.sparsity()).abs() < 1e-9);
    }

    #[test]
    fn unevenness_zero_for_identical_masks() {
        let masks = vec![ew_mask_75(5), ew_mask_75(5)];
        assert!(sparsity_unevenness(&masks) < 1e-12);
        assert_eq!(sparsity_unevenness(&[]), 0.0);
    }

    #[test]
    fn unevenness_positive_for_global_pruning_of_uneven_layers() {
        let weak = ImportanceScores::from_matrix(Matrix::filled(32, 32, 0.1));
        let strong = ImportanceScores::from_matrix(Matrix::filled(32, 32, 10.0));
        let masks = ew::prune_global(&[weak, strong], SparsityTarget::new(0.5));
        assert!(sparsity_unevenness(&masks) > 0.4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_size_panics() {
        let mask = PatternMask::keep_all(4, 4);
        let _ = unit_zero_ratios(&mask, UnitShape::Block { size: 0 });
    }
}
