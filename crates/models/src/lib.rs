//! DNN workload definitions and accuracy modelling.
//!
//! The paper evaluates three models — BERT-base (Transformer), VGG-16 (CNN)
//! and an LSTM-based NMT model — on real datasets (MNLI/SQuAD, ImageNet,
//! IWSLT En-Vi).  Reproducing those numbers verbatim needs the datasets and
//! weeks of GPU fine-tuning, so this crate substitutes:
//!
//! * [`workload`] — exact layer/GEMM shape inventories of the three models
//!   (the quantity the *latency* results depend on), plus the non-GEMM op
//!   structure that drives the end-to-end breakdown of Fig. 15.
//! * [`synthetic`] — seeded weight/gradient generators whose importance
//!   statistics reproduce what the paper measures on the real models:
//!   uneven importance across layers (Fig. 5) and clustered, column-local
//!   importance inside a matrix (Fig. 6/13).
//! * [`accuracy`] — an importance-retention accuracy proxy, anchored per
//!   task to the paper's reported dense accuracy and EW pruning curve.
//! * [`mlp`] — a small, genuinely trainable MLP classifier (our own SGD)
//!   that is pruned with every pattern and fine-tuned for real, confirming
//!   end-to-end that the accuracy ordering EW > TW > VW ≈ BW emerges from
//!   actual training rather than from the proxy's construction.
//! * [`requests`] — seeded synthetic inference-request payloads and Poisson
//!   arrival gaps for the `tw-serve` serving runtime and its benchmarks.
//! * [`traffic`] — open-loop traffic schedules: pluggable arrival processes
//!   (Poisson, bursty ON/OFF, heavy-tailed Pareto) over mixed request
//!   classes (interactive vs. batch), rendered deterministically so every
//!   serving scenario replays from its seed.

pub mod accuracy;
pub mod mlp;
pub mod requests;
pub mod synthetic;
pub mod traffic;
pub mod workload;

pub use accuracy::{AccuracyModel, TaskKind};
pub use mlp::{MlpClassifier, MlpTrainConfig, SyntheticClassification};
pub use requests::RequestGenerator;
pub use synthetic::{SyntheticModel, SyntheticModelConfig};
pub use traffic::{Arrival, ArrivalProcess, TrafficClass, TrafficSpec};
pub use workload::{AuxOp, FixedGemm, ModelKind, PrunableGemm, Workload};
