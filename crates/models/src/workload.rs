//! Model workload definitions: the GEMM and non-GEMM operations of one
//! forward pass of each evaluated network, with exact shapes.

use tw_tensor::ConvShape;

/// Which network a workload describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// BERT-base: 12 Transformer layers, hidden 768, 12 heads, FFN 3072.
    BertBase,
    /// VGG-16: 13 convolutional + 3 fully connected layers.
    Vgg16,
    /// The LSTM-based NMT model (attention encoder-decoder, hidden 512).
    Nmt,
    /// The small trainable MLP micro-task used for end-to-end validation.
    Mlp,
}

impl ModelKind {
    /// Human readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::BertBase => "BERT-base",
            ModelKind::Vgg16 => "VGG-16",
            ModelKind::Nmt => "NMT (LSTM)",
            ModelKind::Mlp => "MLP micro-task",
        }
    }
}

/// A prunable weight GEMM: `C (m x n) = A (m x k) * W (k x n)` where `W` is a
/// trained weight matrix that pruning operates on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrunableGemm {
    /// Layer name, e.g. `layer3.attention.query`.
    pub name: String,
    /// Activation rows (tokens or output pixels).
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Output features.
    pub n: usize,
}

impl PrunableGemm {
    /// Number of weight parameters in this GEMM.
    pub fn params(&self) -> usize {
        self.k * self.n
    }

    /// FLOPs of the dense GEMM.
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.k as u64 * self.n as u64
    }
}

/// A GEMM whose operands are both activations (e.g. the `QK^T` and
/// `attention x V` products); it cannot be pruned but contributes latency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedGemm {
    /// Operation name.
    pub name: String,
    /// Rows.
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Columns.
    pub n: usize,
}

impl FixedGemm {
    /// FLOPs of this GEMM.
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.k as u64 * self.n as u64
    }
}

/// A chain of element-wise / normalisation operations over a tensor (the
/// "others" of Fig. 15: add-bias, GELU/ReLU, LayerNorm, softmax, residual
/// adds).  `chain_len` consecutive ops can be fused into one kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuxOp {
    /// Operation name.
    pub name: String,
    /// Number of tensor elements each op touches.
    pub elements: usize,
    /// Number of consecutive element-wise ops in the chain.
    pub chain_len: usize,
}

/// One model's forward-pass workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Which model this is.
    pub kind: ModelKind,
    /// Display name including the batch configuration.
    pub name: String,
    /// The prunable weight GEMMs, in execution order.
    pub prunable: Vec<PrunableGemm>,
    /// Activation-activation GEMMs (not prunable).
    pub fixed_gemms: Vec<FixedGemm>,
    /// Non-GEMM operation chains.
    pub aux_ops: Vec<AuxOp>,
}

impl Workload {
    /// Total number of prunable weight parameters.
    pub fn total_params(&self) -> usize {
        self.prunable.iter().map(|g| g.params()).sum()
    }

    /// Total dense FLOPs of the prunable GEMMs.
    pub fn prunable_flops(&self) -> u64 {
        self.prunable.iter().map(|g| g.flops()).sum()
    }

    /// Total dense FLOPs including fixed GEMMs.
    pub fn total_gemm_flops(&self) -> u64 {
        self.prunable_flops() + self.fixed_gemms.iter().map(|g| g.flops()).sum::<u64>()
    }

    /// Number of prunable weight matrices.
    pub fn num_weight_matrices(&self) -> usize {
        self.prunable.len()
    }

    /// BERT-base (12 layers, hidden 768, 12 heads, FFN 3072) processing
    /// `batch` sequences of `seq_len` tokens.  Per layer there are 6
    /// prunable weight matrices (Q, K, V, output projection, FFN up, FFN
    /// down), giving the 72 matrices of Fig. 5.
    pub fn bert_base(batch: usize, seq_len: usize) -> Self {
        let hidden = 768;
        let ffn = 3072;
        let heads = 12;
        let layers = 12;
        let m = batch * seq_len;
        let head_dim = hidden / heads;

        let mut prunable = Vec::new();
        let mut fixed = Vec::new();
        let mut aux = Vec::new();
        for l in 0..layers {
            for proj in ["query", "key", "value", "attention_output"] {
                prunable.push(PrunableGemm {
                    name: format!("layer{l}.{proj}"),
                    m,
                    k: hidden,
                    n: hidden,
                });
            }
            prunable.push(PrunableGemm { name: format!("layer{l}.ffn_up"), m, k: hidden, n: ffn });
            prunable.push(PrunableGemm {
                name: format!("layer{l}.ffn_down"),
                m,
                k: ffn,
                n: hidden,
            });
            // Attention score and context GEMMs, batched over heads: each
            // head computes (seq x head_dim) x (head_dim x seq) and
            // (seq x seq) x (seq x head_dim).
            fixed.push(FixedGemm {
                name: format!("layer{l}.qk_t"),
                m: batch * heads * seq_len,
                k: head_dim,
                n: seq_len,
            });
            fixed.push(FixedGemm {
                name: format!("layer{l}.attn_v"),
                m: batch * heads * seq_len,
                k: seq_len,
                n: head_dim,
            });
            // Non-GEMM: softmax over attention scores; add-bias + LayerNorm
            // after attention output; add-bias + GELU + add-bias + LayerNorm
            // around the FFN; residual adds.
            aux.push(AuxOp {
                name: format!("layer{l}.softmax"),
                elements: batch * heads * seq_len * seq_len,
                chain_len: 2,
            });
            aux.push(AuxOp {
                name: format!("layer{l}.attn_bias_ln"),
                elements: m * hidden,
                chain_len: 3,
            });
            aux.push(AuxOp { name: format!("layer{l}.ffn_gelu"), elements: m * ffn, chain_len: 2 });
            aux.push(AuxOp {
                name: format!("layer{l}.ffn_bias_ln"),
                elements: m * hidden,
                chain_len: 3,
            });
        }
        Self {
            kind: ModelKind::BertBase,
            name: format!("BERT-base b{batch} s{seq_len}"),
            prunable,
            fixed_gemms: fixed,
            aux_ops: aux,
        }
    }

    /// VGG-16 on 224x224 ImageNet inputs with the given batch size.  The 13
    /// convolutions are lowered to GEMM with im2col (as the paper does); the
    /// 3 fully connected layers are native GEMMs.
    pub fn vgg16(batch: usize) -> Self {
        // (in_channels, out_channels, spatial size) per conv layer.
        let convs: [(usize, usize, usize); 13] = [
            (3, 64, 224),
            (64, 64, 224),
            (64, 128, 112),
            (128, 128, 112),
            (128, 256, 56),
            (256, 256, 56),
            (256, 256, 56),
            (256, 512, 28),
            (512, 512, 28),
            (512, 512, 28),
            (512, 512, 14),
            (512, 512, 14),
            (512, 512, 14),
        ];
        let mut prunable = Vec::new();
        let mut aux = Vec::new();
        for (i, &(cin, cout, size)) in convs.iter().enumerate() {
            let shape = ConvShape::square(cin, cout, size, 3);
            prunable.push(PrunableGemm {
                name: format!("conv{}_{}", i + 1, cout),
                m: batch * shape.gemm_m(),
                k: shape.gemm_k(),
                n: shape.gemm_n(),
            });
            aux.push(AuxOp {
                name: format!("conv{}_relu", i + 1),
                elements: batch * shape.gemm_m() * cout,
                chain_len: 2,
            });
        }
        // Fully connected head: 512*7*7 -> 4096 -> 4096 -> 1000.
        for (i, (k, n)) in [(512 * 7 * 7, 4096), (4096, 4096), (4096, 1000)].into_iter().enumerate()
        {
            prunable.push(PrunableGemm { name: format!("fc{}", i + 1), m: batch, k, n });
            aux.push(AuxOp {
                name: format!("fc{}_relu", i + 1),
                elements: batch * n,
                chain_len: 2,
            });
        }
        Self {
            kind: ModelKind::Vgg16,
            name: format!("VGG-16 b{batch}"),
            prunable,
            fixed_gemms: Vec::new(),
            aux_ops: aux,
        }
    }

    /// The attention-based NMT model: a 2-layer LSTM encoder and a 2-layer
    /// LSTM decoder with hidden size 512 plus an attention and projection
    /// layer, translating `batch` sentences of `seq_len` tokens.
    pub fn nmt(batch: usize, seq_len: usize) -> Self {
        let hidden = 512;
        let vocab = 17_000; // IWSLT En-Vi vocabulary scale.
        let m = batch * seq_len;
        let mut prunable = Vec::new();
        let mut fixed = Vec::new();
        let mut aux = Vec::new();
        for side in ["encoder", "decoder"] {
            for layer in 0..2 {
                // The four LSTM gates are one fused GEMM: [x, h] (2*hidden)
                // times 4*hidden.
                prunable.push(PrunableGemm {
                    name: format!("{side}.lstm{layer}.gates"),
                    m,
                    k: 2 * hidden,
                    n: 4 * hidden,
                });
                aux.push(AuxOp {
                    name: format!("{side}.lstm{layer}.cell"),
                    elements: m * hidden,
                    chain_len: 5, // sigmoid x3, tanh x2, elementwise products
                });
            }
        }
        // Attention: score GEMM (decoder states x encoder states) and context
        // combination.
        fixed.push(FixedGemm { name: "attention.scores".into(), m, k: hidden, n: seq_len });
        fixed.push(FixedGemm { name: "attention.context".into(), m, k: seq_len, n: hidden });
        prunable.push(PrunableGemm {
            name: "attention.combine".into(),
            m,
            k: 2 * hidden,
            n: hidden,
        });
        aux.push(AuxOp { name: "attention.softmax".into(), elements: m * seq_len, chain_len: 2 });
        // Output projection to the vocabulary.
        prunable.push(PrunableGemm { name: "output.projection".into(), m, k: hidden, n: vocab });
        aux.push(AuxOp { name: "output.softmax".into(), elements: m * vocab, chain_len: 2 });
        Self {
            kind: ModelKind::Nmt,
            name: format!("NMT b{batch} s{seq_len}"),
            prunable,
            fixed_gemms: fixed,
            aux_ops: aux,
        }
    }

    /// The paper's evaluation configuration for each model (batch sizes that
    /// saturate a V100 for inference).
    pub fn paper_config(kind: ModelKind) -> Self {
        match kind {
            ModelKind::BertBase => Self::bert_base(8, 128),
            ModelKind::Vgg16 => Self::vgg16(8),
            ModelKind::Nmt => Self::nmt(32, 30),
            ModelKind::Mlp => Self {
                kind: ModelKind::Mlp,
                name: "MLP micro-task".to_string(),
                prunable: vec![
                    PrunableGemm { name: "fc1".into(), m: 256, k: 64, n: 128 },
                    PrunableGemm { name: "fc2".into(), m: 256, k: 128, n: 4 },
                ],
                fixed_gemms: Vec::new(),
                aux_ops: vec![AuxOp { name: "relu".into(), elements: 256 * 128, chain_len: 1 }],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_has_72_weight_matrices() {
        let w = Workload::bert_base(8, 128);
        // "72 weight matrices in BERT, which has 12 layers and each layer
        // has 6 weight matrices (4 for the self attention and 2 for FC)".
        assert_eq!(w.num_weight_matrices(), 72);
        assert_eq!(w.kind, ModelKind::BertBase);
    }

    #[test]
    fn bert_parameter_count_matches_published_size() {
        let w = Workload::bert_base(1, 128);
        // Encoder weights of BERT-base: 12 * (4*768*768 + 2*768*3072)
        // = 12 * 7.08M ~= 85M parameters.
        let params = w.total_params();
        assert_eq!(params, 12 * (4 * 768 * 768 + 2 * 768 * 3072));
        assert!(params > 80_000_000 && params < 90_000_000);
    }

    #[test]
    fn bert_gemm_shapes() {
        let w = Workload::bert_base(8, 128);
        let q = &w.prunable[0];
        assert_eq!((q.m, q.k, q.n), (1024, 768, 768));
        let ffn_up = w.prunable.iter().find(|g| g.name == "layer0.ffn_up").unwrap();
        assert_eq!((ffn_up.k, ffn_up.n), (768, 3072));
        // Attention score GEMMs exist and are not prunable.
        assert_eq!(w.fixed_gemms.len(), 24);
    }

    #[test]
    fn bert_non_gemm_share_is_significant() {
        // The paper: "the BERT model spends about 39% time on non-GEMM
        // kernels" — the workload must at least carry a large element count
        // of aux ops relative to GEMM outputs.
        let w = Workload::bert_base(8, 128);
        let aux_elements: usize = w.aux_ops.iter().map(|a| a.elements * a.chain_len).sum();
        assert!(aux_elements > 50_000_000, "aux elements {aux_elements}");
    }

    #[test]
    fn vgg_has_16_prunable_layers() {
        let w = Workload::vgg16(8);
        assert_eq!(w.num_weight_matrices(), 16); // 13 conv + 3 FC
        assert_eq!(w.kind, ModelKind::Vgg16);
        // VGG-16 has ~138M parameters, most of them in fc1.
        let params = w.total_params();
        assert!(params > 130_000_000 && params < 145_000_000, "params {params}");
    }

    #[test]
    fn vgg_conv_lowering_shapes() {
        let w = Workload::vgg16(1);
        let c1 = &w.prunable[0];
        assert_eq!((c1.m, c1.k, c1.n), (224 * 224, 27, 64));
        let c13 = &w.prunable[12];
        assert_eq!((c13.m, c13.k, c13.n), (14 * 14, 512 * 9, 512));
        let fc1 = w.prunable.iter().find(|g| g.name == "fc1").unwrap();
        assert_eq!((fc1.k, fc1.n), (25088, 4096));
    }

    #[test]
    fn nmt_structure() {
        let w = Workload::nmt(32, 30);
        // 4 LSTM gate GEMMs (2 encoder + 2 decoder layers) + attention
        // combine + output projection.
        assert_eq!(w.num_weight_matrices(), 6);
        let gates = &w.prunable[0];
        assert_eq!((gates.k, gates.n), (1024, 2048));
        let proj = w.prunable.last().unwrap();
        assert_eq!(proj.n, 17_000);
    }

    #[test]
    fn paper_configs_exist_for_all_kinds() {
        for kind in [ModelKind::BertBase, ModelKind::Vgg16, ModelKind::Nmt, ModelKind::Mlp] {
            let w = Workload::paper_config(kind);
            assert_eq!(w.kind, kind);
            assert!(!w.prunable.is_empty());
            assert!(w.total_params() > 0);
            assert!(w.prunable_flops() > 0);
            assert!(w.total_gemm_flops() >= w.prunable_flops());
        }
    }

    #[test]
    fn flops_scale_with_batch() {
        let small = Workload::bert_base(1, 128);
        let large = Workload::bert_base(8, 128);
        assert_eq!(large.prunable_flops(), 8 * small.prunable_flops());
        // Parameters do not change with batch.
        assert_eq!(large.total_params(), small.total_params());
    }
}
