//! Importance-retention accuracy proxy.
//!
//! We cannot fine-tune BERT/VGG/NMT on their real datasets in this
//! environment, so the accuracy of a pruned model is *modelled* from the
//! fraction of total importance its mask removes.  The model is anchored to
//! the paper's published numbers:
//!
//! * the dense accuracy of each task, and
//! * the accuracy drop of EW pruning at 75% sparsity (the best pattern at
//!   the paper's reference sparsity).
//!
//! Everything else — the ordering of patterns, the effect of the TW
//! granularity G, the benefit of the TEW overlay and of apriori tuning —
//! follows from the measured lost importance of each mask, not from
//! hard-coded curves.  The trainable MLP micro-task (`crate::mlp`) provides
//! an end-to-end sanity check that this proxy ranks patterns the same way
//! real fine-tuned training does.

use crate::workload::ModelKind;
use tw_pruning::{ew, ImportanceScores, PatternMask, SparsityTarget};

/// The evaluation tasks of the paper (Fig. 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// BERT sentence-pair entailment on MNLI (accuracy).
    Mnli,
    /// BERT question answering on SQuAD (F1).
    Squad,
    /// VGG-16 image classification on ImageNet (accuracy).
    ImageNet,
    /// NMT translation on IWSLT En-Vi (BLEU).
    IwsltBleu,
}

impl TaskKind {
    /// The task the paper pairs with each model for its headline numbers.
    pub fn primary_for(kind: ModelKind) -> TaskKind {
        match kind {
            ModelKind::BertBase => TaskKind::Mnli,
            ModelKind::Vgg16 => TaskKind::ImageNet,
            ModelKind::Nmt => TaskKind::IwsltBleu,
            ModelKind::Mlp => TaskKind::Mnli, // the proxy is unused for the MLP
        }
    }

    /// Metric value of the unpruned dense model (from the paper's figures).
    pub fn dense_metric(&self) -> f64 {
        match self {
            TaskKind::Mnli => 0.843,
            TaskKind::Squad => 0.881,
            TaskKind::ImageNet => 0.906,
            TaskKind::IwsltBleu => 28.6,
        }
    }

    /// Metric drop of EW pruning at 75% sparsity — the calibration anchor.
    pub fn ew75_drop(&self) -> f64 {
        match self {
            TaskKind::Mnli => 0.010,
            TaskKind::Squad => 0.015,
            TaskKind::ImageNet => 0.006,
            TaskKind::IwsltBleu => 1.2,
        }
    }

    /// Convexity of the drop as lost importance grows.  NMT is the most
    /// sensitive model in the paper ("this model prefers irregular
    /// sparsities"), so its drop grows fastest.
    pub fn drop_exponent(&self) -> f64 {
        match self {
            TaskKind::Mnli => 1.6,
            TaskKind::Squad => 1.6,
            TaskKind::ImageNet => 1.8,
            TaskKind::IwsltBleu => 1.3,
        }
    }

    /// Lower bound of the metric (chance level / unusable model).
    pub fn metric_floor(&self) -> f64 {
        match self {
            TaskKind::Mnli => 0.33,
            TaskKind::Squad => 0.10,
            TaskKind::ImageNet => 0.10,
            TaskKind::IwsltBleu => 0.0,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::Mnli => "MNLI",
            TaskKind::Squad => "SQuAD",
            TaskKind::ImageNet => "ImageNet",
            TaskKind::IwsltBleu => "IWSLT BLEU",
        }
    }
}

/// The calibrated accuracy proxy for one task and one (synthetic) model.
#[derive(Clone, Debug)]
pub struct AccuracyModel {
    task: TaskKind,
    /// Multiplier mapping (lost importance)^exponent to metric drop.
    scale: f64,
}

impl AccuracyModel {
    /// Calibrates the proxy: the EW mask at 75% sparsity on the given scores
    /// must land exactly on the paper's reported EW drop for this task.
    pub fn calibrate(task: TaskKind, scores: &[ImportanceScores]) -> Self {
        let anchor_masks = ew::prune_global(scores, SparsityTarget::new(0.75));
        let lost = lost_importance(scores, &anchor_masks);
        let exponent = task.drop_exponent();
        let scale = if lost > 1e-9 { task.ew75_drop() / lost.powf(exponent) } else { 0.0 };
        Self { task, scale }
    }

    /// The task this proxy models.
    pub fn task(&self) -> TaskKind {
        self.task
    }

    /// Metric of a pruned model given its masks (one per weight matrix).
    pub fn metric_for_masks(&self, scores: &[ImportanceScores], masks: &[PatternMask]) -> f64 {
        self.metric_for_lost_importance(lost_importance(scores, masks))
    }

    /// Metric of a pruned model given the overall fraction of importance its
    /// masks removed.
    pub fn metric_for_lost_importance(&self, lost: f64) -> f64 {
        let drop = self.scale * lost.max(0.0).powf(self.task.drop_exponent());
        (self.task.dense_metric() - drop).max(self.task.metric_floor())
    }

    /// Metric drop relative to the dense model.
    pub fn drop_for_masks(&self, scores: &[ImportanceScores], masks: &[PatternMask]) -> f64 {
        self.task.dense_metric() - self.metric_for_masks(scores, masks)
    }
}

/// Overall fraction of importance removed by a set of masks, weighted by
/// each matrix's total importance.
pub fn lost_importance(scores: &[ImportanceScores], masks: &[PatternMask]) -> f64 {
    assert_eq!(scores.len(), masks.len(), "one mask per score matrix");
    let total: f64 = scores.iter().map(|s| s.total()).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let kept: f64 = scores.iter().zip(masks).map(|(s, m)| s.retained(m.keep())).sum();
    (1.0 - kept / total).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticModel, SyntheticModelConfig};
    use crate::workload::Workload;
    use tw_pruning::{bw, tw, ImportanceMethod, TileWiseConfig};

    fn bert_scores() -> Vec<ImportanceScores> {
        let m = SyntheticModel::generate(
            Workload::bert_base(8, 128),
            SyntheticModelConfig::default_with_seed(11),
        );
        m.layers().importance(ImportanceMethod::Taylor)
    }

    #[test]
    fn calibration_reproduces_the_anchor() {
        let scores = bert_scores();
        let model = AccuracyModel::calibrate(TaskKind::Mnli, &scores);
        let ew_masks = ew::prune_global(&scores, SparsityTarget::new(0.75));
        let metric = model.metric_for_masks(&scores, &ew_masks);
        let expected = TaskKind::Mnli.dense_metric() - TaskKind::Mnli.ew75_drop();
        assert!((metric - expected).abs() < 1e-9, "metric {metric} expected {expected}");
    }

    #[test]
    fn dense_model_has_dense_metric() {
        let scores = bert_scores();
        let model = AccuracyModel::calibrate(TaskKind::Mnli, &scores);
        let dense_masks: Vec<PatternMask> =
            scores.iter().map(|s| PatternMask::keep_all(s.rows(), s.cols())).collect();
        assert!((model.metric_for_masks(&scores, &dense_masks) - 0.843).abs() < 1e-9);
    }

    #[test]
    fn metric_decreases_with_sparsity() {
        let scores = bert_scores();
        let model = AccuracyModel::calibrate(TaskKind::Mnli, &scores);
        let mut last = f64::INFINITY;
        for target in [0.25, 0.5, 0.75, 0.9] {
            let masks = ew::prune_global(&scores, SparsityTarget::new(target));
            let metric = model.metric_for_masks(&scores, &masks);
            assert!(metric <= last + 1e-12, "metric should not increase with sparsity");
            last = metric;
        }
    }

    #[test]
    fn pattern_ordering_matches_paper() {
        // At the same sparsity: EW >= TW >= BW in accuracy (the paper's
        // irregularity relationship), using the paper's configurations
        // (TW G=128 and BW 32x32, scaled by the synthetic model's divisor of
        // 8 to G=16 and 4x4... we keep BW at 32 which is the paper's block
        // size relative to the full matrix scaled down).
        let scores = bert_scores();
        let model = AccuracyModel::calibrate(TaskKind::Mnli, &scores);
        let target = SparsityTarget::new(0.75);
        let ew_metric = model.metric_for_masks(&scores, &ew::prune_global(&scores, target));
        let tw_masks: Vec<PatternMask> =
            tw::prune_global(&scores, &TileWiseConfig::with_granularity(16), target, None)
                .iter()
                .map(|m| m.to_pattern_mask())
                .collect();
        let tw_metric = model.metric_for_masks(&scores, &tw_masks);
        let bw_metric = model.metric_for_masks(&scores, &bw::prune_global(&scores, 32, target));
        assert!(ew_metric >= tw_metric, "EW {ew_metric} >= TW {tw_metric}");
        assert!(tw_metric >= bw_metric, "TW {tw_metric} >= BW {bw_metric}");
        // And the drops are in a plausible range at 75% sparsity (a few
        // percent, not tens of percent).
        assert!(0.843 - tw_metric < 0.08, "TW drop too large: {}", 0.843 - tw_metric);
    }

    #[test]
    fn tw_granularity_trades_accuracy() {
        // Larger G constrains the pattern more, so accuracy can only drop.
        let scores = bert_scores();
        let model = AccuracyModel::calibrate(TaskKind::Mnli, &scores);
        let target = SparsityTarget::new(0.75);
        let metric_for_g = |g: usize| {
            let masks: Vec<PatternMask> =
                tw::prune_global(&scores, &TileWiseConfig::with_granularity(g), target, None)
                    .iter()
                    .map(|m| m.to_pattern_mask())
                    .collect();
            model.metric_for_masks(&scores, &masks)
        };
        let g2 = metric_for_g(2);
        let g16 = metric_for_g(16);
        assert!(g2 + 0.01 >= g16, "G=2 ({g2}) should be at least as accurate as G=16 ({g16})");
    }

    #[test]
    fn metric_never_goes_below_floor() {
        let scores = bert_scores();
        let model = AccuracyModel::calibrate(TaskKind::Mnli, &scores);
        assert!(model.metric_for_lost_importance(1.0) >= TaskKind::Mnli.metric_floor() - 1e-12);
    }

    #[test]
    fn tasks_have_distinct_anchors() {
        for task in [TaskKind::Mnli, TaskKind::Squad, TaskKind::ImageNet, TaskKind::IwsltBleu] {
            assert!(task.dense_metric() > task.metric_floor());
            assert!(task.ew75_drop() > 0.0);
            assert!(task.drop_exponent() >= 1.0);
            assert!(!task.name().is_empty());
        }
        assert_eq!(TaskKind::primary_for(ModelKind::BertBase), TaskKind::Mnli);
        assert_eq!(TaskKind::primary_for(ModelKind::Nmt), TaskKind::IwsltBleu);
    }

    #[test]
    fn lost_importance_bounds() {
        let scores = bert_scores();
        let keep_all: Vec<PatternMask> =
            scores.iter().map(|s| PatternMask::keep_all(s.rows(), s.cols())).collect();
        assert_eq!(lost_importance(&scores, &keep_all), 0.0);
        let drop_all: Vec<PatternMask> = scores
            .iter()
            .map(|s| PatternMask::new(s.rows(), s.cols(), vec![false; s.rows() * s.cols()]))
            .collect();
        assert!((lost_importance(&scores, &drop_all) - 1.0).abs() < 1e-12);
    }
}
