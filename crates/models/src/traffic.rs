//! Open-loop traffic generation: arrival processes and request-class mixes.
//!
//! The closed-loop harness in `tw-serve` measures peak throughput, but a
//! production tier lives under *open-loop* load: requests arrive on their
//! own clock, whether or not the server keeps up.  This module generates
//! deterministic open-loop traffic schedules — each [`Arrival`] is an offset
//! from the start of the run, a request class, and a payload — under three
//! pluggable arrival processes:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless steady load (exponential
//!   inter-arrival gaps), the classic M/G/k driver.
//! * [`ArrivalProcess::BurstyOnOff`] — a Markov-modulated Poisson process:
//!   the source alternates between exponentially-long ON phases (bursting at
//!   `on_rate`) and OFF phases (trickling at `off_rate`, possibly silent).
//!   Mean rate can equal a Poisson source's while transiently overloading
//!   any finite queue.
//! * [`ArrivalProcess::Pareto`] — heavy-tailed inter-arrival gaps
//!   (`P[gap > t] ~ t^-alpha`, `1 < alpha <= 2`): most gaps are tiny (dense
//!   request trains) but rare gaps are huge, the self-similar traffic shape
//!   measured on real serving front-ends.
//!
//! A [`TrafficSpec`] pairs a process with a [`TrafficClass`] mix (for
//! example latency-sensitive *interactive* requests vs. best-effort *batch*
//! requests) and renders the whole run up front via [`TrafficSpec::schedule`],
//! so every scenario is replayable from its seed.

use crate::requests::RequestGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// One scheduled request of an open-loop run.
#[derive(Clone, Debug, PartialEq)]
pub struct Arrival {
    /// Offset from the start of the run at which the request arrives.
    pub at: Duration,
    /// Index into the run's [`TrafficClass`] list.
    pub class: usize,
    /// Request payload (length = the served model's input dim).
    pub payload: Vec<f32>,
}

/// The inter-arrival law of an open-loop source.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate` requests/second.
    Poisson {
        /// Mean arrival rate (requests per second).
        rate: f64,
    },
    /// Markov-modulated Poisson: exponential ON phases (mean `mean_on`)
    /// arriving at `on_rate`, exponential OFF phases (mean `mean_off`)
    /// arriving at `off_rate` (`0.0` = silent).
    BurstyOnOff {
        /// Arrival rate inside a burst.
        on_rate: f64,
        /// Arrival rate between bursts (may be `0.0`).
        off_rate: f64,
        /// Mean burst length.
        mean_on: Duration,
        /// Mean gap between bursts.
        mean_off: Duration,
    },
    /// Pareto inter-arrival gaps with tail index `alpha` (heavier the closer
    /// to 1) scaled so the *mean* rate is `rate` requests/second.
    Pareto {
        /// Mean arrival rate (requests per second).
        rate: f64,
        /// Tail index; must be in `(1, 2]` for a finite mean with a
        /// heavy tail.
        alpha: f64,
    },
}

impl ArrivalProcess {
    fn validate(&self) {
        match *self {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0 && rate.is_finite(), "Poisson rate must be positive");
            }
            ArrivalProcess::BurstyOnOff { on_rate, off_rate, mean_on, mean_off } => {
                assert!(on_rate > 0.0 && on_rate.is_finite(), "burst on_rate must be positive");
                assert!(
                    off_rate >= 0.0 && off_rate.is_finite(),
                    "burst off_rate must be non-negative"
                );
                assert!(mean_on > Duration::ZERO, "mean ON phase must be positive");
                assert!(mean_off > Duration::ZERO, "mean OFF phase must be positive");
            }
            ArrivalProcess::Pareto { rate, alpha } => {
                assert!(rate > 0.0 && rate.is_finite(), "Pareto rate must be positive");
                assert!(
                    alpha > 1.0 && alpha <= 2.0,
                    "Pareto tail index must be in (1, 2] for a finite-mean heavy tail"
                );
            }
        }
    }
}

/// One request class of a traffic mix.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficClass {
    /// Class name, carried through to per-class serving reports.
    pub name: String,
    /// Fraction of arrivals drawn from this class; shares are normalized
    /// over the mix, so they need not sum to 1.
    pub share: f64,
    /// Latency SLO measured from submission; `None` = best effort.  The
    /// serving layer turns this into a per-class deadline.
    pub deadline: Option<Duration>,
}

impl TrafficClass {
    /// A latency-sensitive class with an SLO deadline.
    pub fn interactive(share: f64, deadline: Duration) -> Self {
        Self { name: "interactive".into(), share, deadline: Some(deadline) }
    }

    /// A best-effort class with no deadline.
    pub fn batch(share: f64) -> Self {
        Self { name: "batch".into(), share, deadline: None }
    }
}

/// A complete open-loop traffic description, renderable to a deterministic
/// [`Arrival`] schedule.
#[derive(Clone, Debug)]
pub struct TrafficSpec {
    /// The inter-arrival law.
    pub process: ArrivalProcess,
    /// The class mix; `Arrival::class` indexes into this list, and list
    /// order is the serving priority order (index 0 = highest).
    pub classes: Vec<TrafficClass>,
    /// Number of arrivals to schedule.
    pub requests: usize,
    /// Payload length (the served model's input dim).
    pub input_dim: usize,
    /// RNG seed; equal specs render equal schedules.
    pub seed: u64,
}

/// The default interactive/batch mix: 30% interactive under `slo`, 70%
/// best-effort batch.
fn interactive_batch_mix(slo: Duration) -> Vec<TrafficClass> {
    vec![TrafficClass::interactive(0.3, slo), TrafficClass::batch(0.7)]
}

impl TrafficSpec {
    /// Steady Poisson load with the standard interactive/batch mix.
    pub fn steady(rate: f64, slo: Duration, requests: usize, input_dim: usize, seed: u64) -> Self {
        Self {
            process: ArrivalProcess::Poisson { rate },
            classes: interactive_batch_mix(slo),
            requests,
            input_dim,
            seed,
        }
    }

    /// Bursty ON/OFF load: ~0.5s bursts at 3.7x the nominal rate separated
    /// by ~1.5s near-silent gaps (0.1x).  The phase weights are chosen so
    /// the *mean* offered rate equals `rate` — `(3.7 * 0.5 + 0.1 * 1.5) /
    /// 2.0 = 1.0` — making `steady` vs `bursty` comparisons at the same
    /// `--rate` measure burstiness itself, not extra load.
    pub fn bursty(rate: f64, slo: Duration, requests: usize, input_dim: usize, seed: u64) -> Self {
        Self {
            process: ArrivalProcess::BurstyOnOff {
                on_rate: rate * 3.7,
                off_rate: rate * 0.1,
                mean_on: Duration::from_millis(500),
                mean_off: Duration::from_millis(1500),
            },
            classes: interactive_batch_mix(slo),
            requests,
            input_dim,
            seed,
        }
    }

    /// Heavy-tailed load: Pareto inter-arrivals at tail index 1.5.
    pub fn heavy_tail(
        rate: f64,
        slo: Duration,
        requests: usize,
        input_dim: usize,
        seed: u64,
    ) -> Self {
        Self {
            process: ArrivalProcess::Pareto { rate, alpha: 1.5 },
            classes: interactive_batch_mix(slo),
            requests,
            input_dim,
            seed,
        }
    }

    /// The SLO showcase: steady Poisson arrivals, interactive/batch mix —
    /// identical to [`TrafficSpec::steady`] today, but kept as its own
    /// constructor so the scenario vocabulary matches the benchmark CLI.
    pub fn mixed_priority(
        rate: f64,
        slo: Duration,
        requests: usize,
        input_dim: usize,
        seed: u64,
    ) -> Self {
        Self::steady(rate, slo, requests, input_dim, seed)
    }

    /// Renders the whole run: `requests` arrivals with monotonically
    /// non-decreasing offsets, classes drawn by share, payloads from the
    /// seeded [`RequestGenerator`].
    ///
    /// # Panics
    /// Panics on invalid process parameters, an empty class list,
    /// non-positive total share, or a zero `input_dim`.
    pub fn schedule(&self) -> Vec<Arrival> {
        self.process.validate();
        assert!(!self.classes.is_empty(), "traffic needs at least one class");
        let total_share: f64 = self.classes.iter().map(|c| c.share).sum();
        assert!(
            total_share > 0.0 && self.classes.iter().all(|c| c.share >= 0.0),
            "class shares must be non-negative with a positive total"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut payloads = RequestGenerator::new(self.input_dim, 1.0, self.seed ^ 0x9e37_79b9);
        let mut gaps = GapSampler::new(self.process);
        let mut at = Duration::ZERO;
        (0..self.requests)
            .map(|_| {
                at += gaps.next_gap(&mut rng);
                let mut pick = rng.gen_range(0.0..total_share);
                let mut class = self.classes.len() - 1;
                for (i, c) in self.classes.iter().enumerate() {
                    if pick < c.share {
                        class = i;
                        break;
                    }
                    pick -= c.share;
                }
                Arrival { at, class, payload: payloads.next_payload() }
            })
            .collect()
    }

    /// Mean arrival rate implied by a rendered schedule (requests/second).
    pub fn observed_rate(schedule: &[Arrival]) -> f64 {
        match schedule.last() {
            Some(last) if last.at > Duration::ZERO => schedule.len() as f64 / last.at.as_secs_f64(),
            _ => 0.0,
        }
    }
}

/// Exponential sample with the given mean (seconds).
fn exp_mean(rng: &mut StdRng, mean_s: f64) -> f64 {
    // u in (0, 1] avoids ln(0).
    let u: f64 = 1.0 - rng.gen_range(0.0f64..1.0);
    -u.ln() * mean_s
}

/// Stateful inter-arrival sampler (the ON/OFF process carries phase state).
struct GapSampler {
    process: ArrivalProcess,
    /// Remaining time in the current ON/OFF phase, and whether it is ON.
    phase: Option<(f64, bool)>,
}

impl GapSampler {
    fn new(process: ArrivalProcess) -> Self {
        Self { process, phase: None }
    }

    fn next_gap(&mut self, rng: &mut StdRng) -> Duration {
        let gap_s = match self.process {
            ArrivalProcess::Poisson { rate } => exp_mean(rng, 1.0 / rate),
            ArrivalProcess::Pareto { rate, alpha } => {
                // Scale x_m so the mean gap alpha*x_m/(alpha-1) is 1/rate.
                let x_m = (alpha - 1.0) / (alpha * rate);
                let u: f64 = 1.0 - rng.gen_range(0.0f64..1.0);
                x_m * u.powf(-1.0 / alpha)
            }
            ArrivalProcess::BurstyOnOff { on_rate, off_rate, mean_on, mean_off } => {
                // Walk phases until an arrival lands inside one.
                let (mut remaining, mut on) = self
                    .phase
                    .take()
                    .unwrap_or_else(|| (exp_mean(rng, mean_on.as_secs_f64()), true));
                let mut gap = 0.0f64;
                loop {
                    let rate = if on { on_rate } else { off_rate };
                    let candidate = if rate > 0.0 { exp_mean(rng, 1.0 / rate) } else { f64::MAX };
                    if candidate < remaining {
                        remaining -= candidate;
                        gap += candidate;
                        self.phase = Some((remaining, on));
                        break;
                    }
                    gap += remaining;
                    on = !on;
                    let mean = if on { mean_on } else { mean_off };
                    remaining = exp_mean(rng, mean.as_secs_f64());
                }
                gap
            }
        };
        Duration::from_secs_f64(gap_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_gap(schedule: &[Arrival]) -> f64 {
        schedule.last().unwrap().at.as_secs_f64() / schedule.len() as f64
    }

    #[test]
    fn schedules_are_deterministic_and_ordered() {
        let spec = TrafficSpec::steady(500.0, Duration::from_millis(50), 200, 16, 7);
        let a = spec.schedule();
        let b = spec.schedule();
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "offsets must be non-decreasing");
        assert!(a.iter().all(|x| x.payload.len() == 16));
    }

    #[test]
    fn poisson_mean_rate_tracks_target() {
        let spec = TrafficSpec::steady(1000.0, Duration::from_millis(50), 5000, 4, 3);
        let schedule = spec.schedule();
        let rate = TrafficSpec::observed_rate(&schedule);
        assert!((rate - 1000.0).abs() < 100.0, "observed rate {rate}");
    }

    #[test]
    fn pareto_mean_rate_tracks_target_with_heavy_tail() {
        let spec = TrafficSpec::heavy_tail(1000.0, Duration::from_millis(50), 20_000, 4, 11);
        let schedule = spec.schedule();
        let mean = mean_gap(&schedule);
        // Heavy tail converges slowly; accept a loose band around 1ms.
        assert!(mean > 0.3e-3 && mean < 3e-3, "mean gap {mean}");
        // The defining property: the max gap dwarfs the median gap.
        let mut gaps: Vec<f64> =
            schedule.windows(2).map(|w| (w[1].at - w[0].at).as_secs_f64()).collect();
        gaps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = gaps[gaps.len() / 2];
        let max = gaps[gaps.len() - 1];
        assert!(max > 20.0 * median, "tail not heavy: median {median} max {max}");
    }

    #[test]
    fn bursty_gaps_cluster_while_mean_rate_tracks_target() {
        // Long run: phase lengths are exponential with second-scale means,
        // so the mean rate only converges over many ON/OFF cycles.
        let spec = TrafficSpec::bursty(500.0, Duration::from_millis(50), 60_000, 4, 5);
        let schedule = spec.schedule();
        // The ON/OFF weights must preserve the nominal mean rate (a 30%
        // band comfortably excludes the 2x a naive 4x/0.1x split offers),
        // so that steady-vs-bursty comparisons at one rate isolate
        // burstiness.
        let rate = TrafficSpec::observed_rate(&schedule);
        assert!((rate - 500.0).abs() < 150.0, "observed mean rate {rate}");
        let gaps: Vec<f64> =
            schedule.windows(2).map(|w| (w[1].at - w[0].at).as_secs_f64()).collect();
        // Inside bursts gaps run at 3.7x rate (~0.5ms); between bursts the
        // trickle rate leaves ~20ms holes.  Both regimes must appear.
        let dense = gaps.iter().filter(|g| **g < 2.0 / 500.0).count();
        let sparse = gaps.iter().filter(|g| **g > 8.0 / 500.0).count();
        assert!(dense > gaps.len() / 2, "{dense}/{} dense gaps", gaps.len());
        assert!(sparse > 20, "{sparse} sparse gaps — no OFF phases seen");
    }

    #[test]
    fn class_mix_respects_shares() {
        let spec = TrafficSpec::steady(500.0, Duration::from_millis(50), 4000, 4, 13);
        let schedule = spec.schedule();
        let interactive = schedule.iter().filter(|a| a.class == 0).count();
        let share = interactive as f64 / schedule.len() as f64;
        assert!((share - 0.3).abs() < 0.05, "interactive share {share}");
        assert_eq!(spec.classes[0].name, "interactive");
        assert!(spec.classes[0].deadline.is_some());
        assert!(spec.classes[1].deadline.is_none());
    }

    #[test]
    #[should_panic(expected = "tail index")]
    fn light_tailed_pareto_rejected() {
        let spec = TrafficSpec {
            process: ArrivalProcess::Pareto { rate: 100.0, alpha: 3.0 },
            classes: vec![TrafficClass::batch(1.0)],
            requests: 10,
            input_dim: 4,
            seed: 1,
        };
        let _ = spec.schedule();
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_class_mix_rejected() {
        let spec = TrafficSpec {
            process: ArrivalProcess::Poisson { rate: 100.0 },
            classes: Vec::new(),
            requests: 10,
            input_dim: 4,
            seed: 1,
        };
        let _ = spec.schedule();
    }
}
