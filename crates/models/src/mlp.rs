//! A small, genuinely trainable MLP classifier.
//!
//! The accuracy proxy of [`crate::accuracy`] maps lost importance to a
//! metric drop.  To confirm that this proxy ranks sparsity patterns the same
//! way *real training* does, this module provides an end-to-end micro-task:
//! a two-layer MLP trained with our own SGD on a synthetic Gaussian-cluster
//! classification problem, then pruned with any [`PatternMask`] and
//! fine-tuned under the mask.  Tests and benches use it to demonstrate the
//! EW > TW > BW accuracy ordering with actual gradient descent rather than
//! a model of it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use tw_pruning::PatternMask;
use tw_tensor::{gemm, Matrix};

/// A synthetic classification dataset: `num_classes` Gaussian clusters in
/// `dim` dimensions.
#[derive(Clone, Debug)]
pub struct SyntheticClassification {
    /// Input features, one row per example.
    pub inputs: Matrix,
    /// Class label of each example.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl SyntheticClassification {
    /// Generates a dataset of `n` examples with the given dimensionality and
    /// class count.  Cluster centres are well separated so the task is
    /// learnable but not trivial (cluster spread overlaps slightly).
    pub fn generate(n: usize, dim: usize, num_classes: usize, seed: u64) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        let mut rng = StdRng::seed_from_u64(seed);
        let centre_dist = Normal::new(0.0f32, 1.0).expect("valid normal");
        let noise = Normal::new(0.0f32, 0.45).expect("valid normal");
        let centres: Vec<Vec<f32>> = (0..num_classes)
            .map(|_| (0..dim).map(|_| centre_dist.sample(&mut rng)).collect())
            .collect();
        let mut inputs = Matrix::zeros(n, dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.gen_range(0..num_classes);
            labels.push(class);
            for (d, &centre) in centres[class].iter().enumerate() {
                inputs.set(i, d, centre + noise.sample(&mut rng));
            }
        }
        Self { inputs, labels, num_classes }
    }

    /// Splits the dataset into a training set with the first `n_train`
    /// examples and a test set with the remainder (both drawn from the same
    /// cluster centres).
    pub fn split(self, n_train: usize) -> (Self, Self) {
        assert!(n_train < self.len(), "n_train must leave at least one test example");
        let dim = self.inputs.cols();
        let train_inputs = self.inputs.submatrix(0, n_train, 0, dim);
        let test_inputs = self.inputs.submatrix(n_train, self.labels.len(), 0, dim);
        let (train_labels, test_labels) = {
            let mut l = self.labels;
            let rest = l.split_off(n_train);
            (l, rest)
        };
        (
            Self { inputs: train_inputs, labels: train_labels, num_classes: self.num_classes },
            Self { inputs: test_inputs, labels: test_labels, num_classes: self.num_classes },
        )
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct MlpTrainConfig {
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Number of full passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for MlpTrainConfig {
    fn default() -> Self {
        Self { learning_rate: 0.1, epochs: 30, batch_size: 32 }
    }
}

/// A two-layer MLP: `input -> hidden (ReLU) -> classes (softmax)`.
#[derive(Clone, Debug)]
pub struct MlpClassifier {
    w1: Matrix,
    b1: Vec<f32>,
    w2: Matrix,
    b2: Vec<f32>,
    /// Keep masks applied after every update (None = dense).
    mask1: Option<PatternMask>,
    mask2: Option<PatternMask>,
    /// Accumulated |w * grad| importance estimates.
    grad1: Matrix,
    grad2: Matrix,
}

impl MlpClassifier {
    /// Creates an untrained MLP with the given layer sizes.
    pub fn new(input_dim: usize, hidden_dim: usize, num_classes: usize, seed: u64) -> Self {
        let scale1 = (2.0 / input_dim as f32).sqrt();
        let scale2 = (2.0 / hidden_dim as f32).sqrt();
        Self {
            w1: Matrix::random_normal(input_dim, hidden_dim, scale1, seed),
            b1: vec![0.0; hidden_dim],
            w2: Matrix::random_normal(hidden_dim, num_classes, scale2, seed + 1),
            b2: vec![0.0; num_classes],
            mask1: None,
            mask2: None,
            grad1: Matrix::zeros(input_dim, hidden_dim),
            grad2: Matrix::zeros(hidden_dim, num_classes),
        }
    }

    /// The first-layer weights.
    pub fn w1(&self) -> &Matrix {
        &self.w1
    }

    /// The second-layer weights.
    pub fn w2(&self) -> &Matrix {
        &self.w2
    }

    /// Accumulated gradient magnitudes of the first layer (for Taylor
    /// importance scores).
    pub fn grad1(&self) -> &Matrix {
        &self.grad1
    }

    /// Accumulated gradient magnitudes of the second layer.
    pub fn grad2(&self) -> &Matrix {
        &self.grad2
    }

    /// Applies pruning masks to both layers; pruned weights are zeroed now
    /// and kept at zero through subsequent fine-tuning.
    pub fn apply_masks(&mut self, mask1: PatternMask, mask2: PatternMask) {
        assert_eq!(mask1.shape(), self.w1.shape(), "mask1 shape mismatch");
        assert_eq!(mask2.shape(), self.w2.shape(), "mask2 shape mismatch");
        self.w1 = mask1.apply(&self.w1);
        self.w2 = mask2.apply(&self.w2);
        self.mask1 = Some(mask1);
        self.mask2 = Some(mask2);
    }

    /// Overall weight sparsity of the two layers.
    pub fn sparsity(&self) -> f64 {
        let zeros = self.w1.count_zeros() + self.w2.count_zeros();
        zeros as f64 / (self.w1.len() + self.w2.len()) as f64
    }

    /// Forward pass returning class probabilities (one row per example).
    pub fn forward(&self, inputs: &Matrix) -> Matrix {
        let mut hidden = gemm(inputs, &self.w1);
        for r in 0..hidden.rows() {
            for c in 0..hidden.cols() {
                let v = hidden.get(r, c) + self.b1[c];
                hidden.set(r, c, v.max(0.0)); // ReLU
            }
        }
        let mut logits = gemm(&hidden, &self.w2);
        for r in 0..logits.rows() {
            for c in 0..logits.cols() {
                logits.set(r, c, logits.get(r, c) + self.b2[c]);
            }
        }
        softmax_rows(&logits)
    }

    /// Classification accuracy on a dataset.
    pub fn accuracy(&self, data: &SyntheticClassification) -> f64 {
        let probs = self.forward(&data.inputs);
        let mut correct = 0usize;
        for (i, &label) in data.labels.iter().enumerate() {
            let row = probs.row(i);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                .map(|(j, _)| j)
                .expect("non-empty row");
            if pred == label {
                correct += 1;
            }
        }
        correct as f64 / data.len().max(1) as f64
    }

    /// Trains (or fine-tunes) with mini-batch SGD on the cross-entropy loss.
    /// If masks are installed, pruned weights receive no updates.
    pub fn train(&mut self, data: &SyntheticClassification, cfg: &MlpTrainConfig) {
        let n = data.len();
        assert!(n > 0, "cannot train on an empty dataset");
        let mut rng = StdRng::seed_from_u64(0xfeed);
        let mut order: Vec<usize> = (0..n).collect();
        for _epoch in 0..cfg.epochs {
            // Shuffle example order.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(cfg.batch_size) {
                self.sgd_step(data, batch, cfg.learning_rate);
            }
        }
    }

    /// One SGD step on a mini-batch.
    fn sgd_step(&mut self, data: &SyntheticClassification, batch: &[usize], lr: f32) {
        let bsz = batch.len();
        let input = data.inputs.select_rows(batch);
        // Forward with cached intermediates.
        let mut hidden_pre = gemm(&input, &self.w1);
        for r in 0..hidden_pre.rows() {
            for c in 0..hidden_pre.cols() {
                hidden_pre.set(r, c, hidden_pre.get(r, c) + self.b1[c]);
            }
        }
        let hidden = Matrix::from_fn(hidden_pre.rows(), hidden_pre.cols(), |r, c| {
            hidden_pre.get(r, c).max(0.0)
        });
        let mut logits = gemm(&hidden, &self.w2);
        for r in 0..logits.rows() {
            for c in 0..logits.cols() {
                logits.set(r, c, logits.get(r, c) + self.b2[c]);
            }
        }
        let probs = softmax_rows(&logits);

        // dL/dlogits = probs - one_hot(labels), averaged over the batch.
        let mut dlogits = probs;
        for (bi, &ex) in batch.iter().enumerate() {
            let label = data.labels[ex];
            dlogits.set(bi, label, dlogits.get(bi, label) - 1.0);
        }
        dlogits.scale(1.0 / bsz as f32);

        // Layer 2 gradients.
        let dw2 = gemm(&hidden.transpose(), &dlogits);
        let db2: Vec<f32> = (0..dlogits.cols()).map(|c| dlogits.col(c).iter().sum()).collect();
        // Backprop to hidden.
        let dhidden_post = gemm(&dlogits, &self.w2.transpose());
        let dhidden = Matrix::from_fn(dhidden_post.rows(), dhidden_post.cols(), |r, c| {
            if hidden_pre.get(r, c) > 0.0 {
                dhidden_post.get(r, c)
            } else {
                0.0
            }
        });
        let dw1 = gemm(&input.transpose(), &dhidden);
        let db1: Vec<f32> = (0..dhidden.cols()).map(|c| dhidden.col(c).iter().sum()).collect();

        // Accumulate gradient magnitudes for Taylor importance.
        for (acc, g) in self.grad1.as_mut_slice().iter_mut().zip(dw1.as_slice()) {
            *acc += g.abs();
        }
        for (acc, g) in self.grad2.as_mut_slice().iter_mut().zip(dw2.as_slice()) {
            *acc += g.abs();
        }

        // SGD update, respecting masks.
        update_weights(&mut self.w1, &dw1, lr, self.mask1.as_ref());
        update_weights(&mut self.w2, &dw2, lr, self.mask2.as_ref());
        for (b, g) in self.b1.iter_mut().zip(&db1) {
            *b -= lr * g;
        }
        for (b, g) in self.b2.iter_mut().zip(&db2) {
            *b -= lr * g;
        }
    }
}

fn update_weights(w: &mut Matrix, grad: &Matrix, lr: f32, mask: Option<&PatternMask>) {
    for r in 0..w.rows() {
        for c in 0..w.cols() {
            if let Some(m) = mask {
                if !m.keeps(r, c) {
                    continue;
                }
            }
            w.set(r, c, w.get(r, c) - lr * grad.get(r, c));
        }
    }
}

fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (c, e) in exps.iter().enumerate() {
            out.set(r, c, e / sum.max(1e-12));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_pruning::{bw, ew, tw, ImportanceScores, PatternMask, SparsityTarget, TileWiseConfig};

    fn trained_mlp() -> (MlpClassifier, SyntheticClassification, SyntheticClassification) {
        let all = SyntheticClassification::generate(768, 16, 4, 42);
        let (train, test) = all.split(512);
        let mut mlp = MlpClassifier::new(16, 32, 4, 7);
        mlp.train(&train, &MlpTrainConfig { learning_rate: 0.15, epochs: 25, batch_size: 32 });
        (mlp, train, test)
    }

    #[test]
    fn split_shares_cluster_centres() {
        let all = SyntheticClassification::generate(100, 8, 3, 9);
        let (train, test) = all.split(70);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        assert_eq!(train.num_classes, 3);
        assert_eq!(test.num_classes, 3);
    }

    #[test]
    fn dataset_generation_is_deterministic_and_balancedish() {
        let a = SyntheticClassification::generate(200, 8, 3, 1);
        let b = SyntheticClassification::generate(200, 8, 3, 1);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.len(), 200);
        // Every class appears.
        for class in 0..3 {
            assert!(a.labels.contains(&class));
        }
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
        assert!(p.get(0, 2) > p.get(0, 0));
    }

    #[test]
    fn training_learns_the_task() {
        let (mlp, train, test) = trained_mlp();
        let train_acc = mlp.accuracy(&train);
        let test_acc = mlp.accuracy(&test);
        assert!(train_acc > 0.85, "train accuracy {train_acc}");
        assert!(test_acc > 0.75, "test accuracy {test_acc}");
    }

    #[test]
    fn untrained_model_is_near_chance() {
        let test = SyntheticClassification::generate(400, 16, 4, 5);
        let mlp = MlpClassifier::new(16, 32, 4, 3);
        let acc = mlp.accuracy(&test);
        assert!(acc < 0.6, "untrained accuracy {acc} should be near chance");
    }

    #[test]
    fn masks_zero_weights_and_stay_zero_through_fine_tuning() {
        let (mut mlp, train, _test) = trained_mlp();
        let s1 = ImportanceScores::magnitude(mlp.w1());
        let s2 = ImportanceScores::magnitude(mlp.w2());
        let m1 = ew::prune(&s1, SparsityTarget::new(0.5));
        let m2 = ew::prune(&s2, SparsityTarget::new(0.5));
        mlp.apply_masks(m1.clone(), m2.clone());
        assert!((mlp.sparsity() - 0.5).abs() < 0.02);
        // Fine-tune and confirm pruned weights stayed zero.
        mlp.train(&train, &MlpTrainConfig { learning_rate: 0.05, epochs: 5, batch_size: 32 });
        for r in 0..m1.rows() {
            for c in 0..m1.cols() {
                if !m1.keeps(r, c) {
                    assert_eq!(mlp.w1().get(r, c), 0.0);
                }
            }
        }
        assert!((mlp.sparsity() - 0.5).abs() < 0.02);
    }

    #[test]
    fn pruning_and_fine_tuning_preserves_most_accuracy() {
        let (mut mlp, train, test) = trained_mlp();
        let dense_acc = mlp.accuracy(&test);
        let s1 = ImportanceScores::taylor(mlp.w1(), mlp.grad1());
        let s2 = ImportanceScores::taylor(mlp.w2(), mlp.grad2());
        mlp.apply_masks(
            ew::prune(&s1, SparsityTarget::new(0.6)),
            ew::prune(&s2, SparsityTarget::new(0.6)),
        );
        mlp.train(&train, &MlpTrainConfig { learning_rate: 0.05, epochs: 10, batch_size: 32 });
        let pruned_acc = mlp.accuracy(&test);
        assert!(
            pruned_acc > dense_acc - 0.1,
            "EW at 60% + fine-tuning should nearly recover accuracy: dense {dense_acc} pruned {pruned_acc}"
        );
    }

    #[test]
    fn real_training_confirms_pattern_ordering() {
        // The end-to-end check: prune the hidden layer of the *same* trained
        // MLP with EW, TW and BW at the same high sparsity, fine-tune each
        // identically, and verify the accuracy ordering the paper (and our
        // proxy) predicts.  The tiny classifier head (w2) stays dense, as in
        // the paper where only the large encoder weights are pruned.
        let all = SyntheticClassification::generate(1024, 32, 4, 77);
        let (train, test) = all.split(768);
        let mut mlp = MlpClassifier::new(32, 64, 4, 13);
        mlp.train(&train, &MlpTrainConfig { learning_rate: 0.15, epochs: 25, batch_size: 32 });
        let dense_acc = mlp.accuracy(&test);
        assert!(dense_acc > 0.8, "dense accuracy {dense_acc}");

        let sparsity = SparsityTarget::new(0.8);
        let s1 = ImportanceScores::taylor(mlp.w1(), mlp.grad1());
        let dense_head = PatternMask::keep_all(mlp.w2().rows(), mlp.w2().cols());
        let fine_tune = MlpTrainConfig { learning_rate: 0.05, epochs: 12, batch_size: 32 };

        let mut ew_mlp = mlp.clone();
        ew_mlp.apply_masks(ew::prune(&s1, sparsity), dense_head.clone());
        ew_mlp.train(&train, &fine_tune);
        let ew_acc = ew_mlp.accuracy(&test);

        let cfg = TileWiseConfig::with_granularity(8);
        let mut tw_mlp = mlp.clone();
        tw_mlp.apply_masks(tw::prune(&s1, &cfg, sparsity).to_pattern_mask(), dense_head.clone());
        tw_mlp.train(&train, &fine_tune);
        let tw_acc = tw_mlp.accuracy(&test);

        let mut bw_mlp = mlp.clone();
        bw_mlp.apply_masks(bw::prune(&s1, 16, sparsity), dense_head);
        bw_mlp.train(&train, &fine_tune);
        let bw_acc = bw_mlp.accuracy(&test);

        assert!(
            ew_acc + 0.05 >= tw_acc,
            "EW ({ew_acc}) should not be clearly worse than TW ({tw_acc})"
        );
        assert!(
            tw_acc + 0.08 >= bw_acc,
            "TW ({tw_acc}) should not be clearly worse than BW ({bw_acc})"
        );
        // Unstructured pruning must be at least as good as the most
        // constrained pattern.
        assert!(ew_acc + 0.02 >= bw_acc, "EW ({ew_acc}) should not lose to BW ({bw_acc})");
    }
}
