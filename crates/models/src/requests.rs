//! Synthetic inference-request generation for the serving runtime.
//!
//! A serving benchmark needs a stream of request payloads whose shape
//! matches the model being served and whose arrival process is controllable.
//! [`RequestGenerator`] produces seeded, deterministic payload vectors (so
//! runs are reproducible and results can be checked against a dense
//! reference), plus exponential inter-arrival gaps for open-loop load
//! generation at a target request rate.

use crate::workload::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A deterministic generator of synthetic inference requests.
#[derive(Clone, Debug)]
pub struct RequestGenerator {
    input_dim: usize,
    scale: f32,
    rng: StdRng,
}

impl RequestGenerator {
    /// A generator producing payloads of `input_dim` values drawn uniformly
    /// from `(-scale, scale)`.
    ///
    /// # Panics
    /// Panics if `input_dim` is zero or `scale` is not positive.
    pub fn new(input_dim: usize, scale: f32, seed: u64) -> Self {
        assert!(input_dim > 0, "input dim must be positive");
        assert!(scale > 0.0, "payload scale must be positive");
        Self { input_dim, scale, rng: StdRng::seed_from_u64(seed) }
    }

    /// A generator shaped for a model workload: payload length is the K
    /// dimension of the first prunable GEMM (the model's input features).
    ///
    /// # Panics
    /// Panics if the workload has no prunable GEMMs.
    pub fn for_workload(workload: &Workload, seed: u64) -> Self {
        let first =
            workload.prunable.first().expect("workload needs at least one prunable GEMM to serve");
        Self::new(first.k, 1.0, seed)
    }

    /// Payload length of every generated request.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The next request payload.
    pub fn next_payload(&mut self) -> Vec<f32> {
        let scale = self.scale;
        (0..self.input_dim).map(|_| self.rng.gen_range(-scale..scale)).collect()
    }

    /// A batch of `count` payloads.
    pub fn payloads(&mut self, count: usize) -> Vec<Vec<f32>> {
        (0..count).map(|_| self.next_payload()).collect()
    }

    /// An exponentially distributed inter-arrival gap for a Poisson arrival
    /// process at `rate_per_sec` requests per second — the standard open-loop
    /// load model.
    ///
    /// # Panics
    /// Panics if `rate_per_sec` is not positive.
    pub fn next_inter_arrival(&mut self, rate_per_sec: f64) -> Duration {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        // Inverse-CDF sampling; u in (0, 1] avoids ln(0).
        let u: f64 = 1.0 - self.rng.gen_range(0.0f64..1.0);
        Duration::from_secs_f64(-u.ln() / rate_per_sec)
    }
}

impl Iterator for RequestGenerator {
    type Item = Vec<f32>;

    fn next(&mut self) -> Option<Vec<f32>> {
        Some(self.next_payload())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_are_deterministic_per_seed() {
        let mut a = RequestGenerator::new(16, 1.0, 5);
        let mut b = RequestGenerator::new(16, 1.0, 5);
        assert_eq!(a.payloads(3), b.payloads(3));
    }

    #[test]
    fn payloads_differ_across_seeds_and_stay_bounded() {
        let mut a = RequestGenerator::new(32, 0.5, 1);
        let mut b = RequestGenerator::new(32, 0.5, 2);
        let pa = a.next_payload();
        let pb = b.next_payload();
        assert_ne!(pa, pb);
        assert!(pa.iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn workload_shapes_the_payload() {
        let w = Workload::bert_base(1, 8);
        let mut generator = RequestGenerator::for_workload(&w, 3);
        assert_eq!(generator.next_payload().len(), w.prunable[0].k);
    }

    #[test]
    fn inter_arrival_mean_tracks_rate() {
        let mut generator = RequestGenerator::new(4, 1.0, 11);
        let rate = 200.0;
        let n = 5_000;
        let total: f64 = (0..n).map(|_| generator.next_inter_arrival(rate).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.1 / rate * 5.0,
            "mean gap {mean} vs expected {}",
            1.0 / rate
        );
    }

    #[test]
    fn iterator_yields_payloads() {
        let generator = RequestGenerator::new(8, 1.0, 9);
        let batch: Vec<Vec<f32>> = generator.take(4).collect();
        assert_eq!(batch.len(), 4);
        assert!(batch.iter().all(|p| p.len() == 8));
    }
}
