//! Synthetic weight and gradient generation.
//!
//! We do not have the pre-trained BERT/VGG/NMT checkpoints or their
//! task-specific gradients, so we generate weight/gradient matrices whose
//! *importance statistics* match what the paper measures on the real models:
//!
//! 1. **Uneven importance across matrices** (Fig. 5): the overall importance
//!    scale of each weight matrix is drawn from a log-normal distribution,
//!    so a global pruning pass allocates very different sparsities to
//!    different matrices.
//! 2. **Column-clustered importance inside a matrix** (Fig. 6/13): columns
//!    come in clusters of varying strength, so EW pruning empties some
//!    columns almost completely — the locality that apriori tuning and the
//!    TW column phase exploit.
//!
//! All generation is seeded and deterministic.

use crate::workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal, Normal};
use tw_pruning::LayerSet;
use tw_tensor::Matrix;

/// Configuration of the synthetic model generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyntheticModelConfig {
    /// RNG seed.
    pub seed: u64,
    /// Every weight-matrix dimension is divided by this factor (minimum 8
    /// rows/columns are kept) so that accuracy sweeps stay fast; the latency
    /// planner maps pruning decisions back onto the full shapes.
    pub dim_divisor: usize,
    /// Sigma of the log-normal distribution of per-matrix importance scale;
    /// larger values produce a more uneven Fig. 5 profile.
    pub layer_spread: f64,
    /// Sigma of the log-normal distribution of per-column-cluster strength.
    pub column_cluster_spread: f64,
    /// Width (in columns, after scaling) of one importance cluster.
    pub column_cluster_width: usize,
    /// Sigma of the log-normal distribution of per-row-cluster strength
    /// (rows of the weight matrix correspond to input features; entire
    /// features being unimportant is what lets EW empty whole rows and TW's
    /// row pruning capture them).
    pub row_cluster_spread: f64,
    /// Height (in rows, after scaling) of one row importance cluster.
    pub row_cluster_width: usize,
}

impl SyntheticModelConfig {
    /// Defaults tuned to reproduce the unevenness the paper reports (per-
    /// matrix EW sparsity spanning roughly 0.5-1.0 at a 75% global target).
    pub fn default_with_seed(seed: u64) -> Self {
        Self {
            seed,
            dim_divisor: 8,
            layer_spread: 0.6,
            column_cluster_spread: 0.8,
            column_cluster_width: 4,
            row_cluster_spread: 0.7,
            row_cluster_width: 2,
        }
    }
}

/// A synthetic instantiation of one workload: scaled-down weight and
/// gradient matrices with realistic importance structure.
#[derive(Clone, Debug)]
pub struct SyntheticModel {
    workload: Workload,
    config: SyntheticModelConfig,
    layers: LayerSet,
    /// Scaled (rows, cols) of each weight matrix.
    scaled_shapes: Vec<(usize, usize)>,
}

impl SyntheticModel {
    /// Generates the synthetic model for a workload.
    pub fn generate(workload: Workload, config: SyntheticModelConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let layer_scale_dist = LogNormal::new(0.0, config.layer_spread).expect("valid log-normal");
        let cluster_dist =
            LogNormal::new(0.0, config.column_cluster_spread).expect("valid log-normal");

        let mut names = Vec::new();
        let mut weights = Vec::new();
        let mut grads = Vec::new();
        let mut scaled_shapes = Vec::new();

        for gemm in &workload.prunable {
            let rows = scale_dim(gemm.k, config.dim_divisor);
            let cols = scale_dim(gemm.n, config.dim_divisor);
            scaled_shapes.push((rows, cols));

            let layer_scale = layer_scale_dist.sample(&mut rng) as f32;
            // Column and row cluster strengths.
            let num_col_clusters = cols.div_ceil(config.column_cluster_width.max(1));
            let col_strength: Vec<f32> =
                (0..num_col_clusters).map(|_| cluster_dist.sample(&mut rng) as f32).collect();
            let row_dist =
                LogNormal::new(0.0, config.row_cluster_spread).expect("valid log-normal");
            let num_row_clusters = rows.div_ceil(config.row_cluster_width.max(1));
            let row_strength: Vec<f32> =
                (0..num_row_clusters).map(|_| row_dist.sample(&mut rng) as f32).collect();

            let weight_noise = Normal::new(0.0f32, 1.0).expect("valid normal");
            let grad_noise = Normal::new(0.0f32, 1.0).expect("valid normal");

            let mut w = Matrix::zeros(rows, cols);
            let mut g = Matrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    let col_cluster = col_strength[c / config.column_cluster_width.max(1)];
                    let row_cluster = row_strength[r / config.row_cluster_width.max(1)];
                    let structure = col_cluster * row_cluster;
                    let scale = layer_scale * structure * 0.05;
                    w.set(r, c, weight_noise.sample(&mut rng) * scale);
                    // Gradients share the row/column structure (important
                    // features receive larger gradients) plus independent
                    // noise.
                    g.set(r, c, grad_noise.sample(&mut rng) * structure * 0.01);
                }
            }
            names.push(gemm.name.clone());
            weights.push(w);
            grads.push(g);
        }

        let layers = LayerSet::with_grads(names, weights, grads);
        Self { workload, config, layers, scaled_shapes }
    }

    /// The workload this model instantiates.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The generation configuration.
    pub fn config(&self) -> &SyntheticModelConfig {
        &self.config
    }

    /// The scaled-down layer set (weights + gradients) pruning operates on.
    pub fn layers(&self) -> &LayerSet {
        &self.layers
    }

    /// Mutable access for pruning / fine-tuning.
    pub fn layers_mut(&mut self) -> &mut LayerSet {
        &mut self.layers
    }

    /// A fresh copy of the layer set (pruning mutates weights, so sweeps over
    /// several patterns each start from a clone).
    pub fn fresh_layers(&self) -> LayerSet {
        self.layers.clone()
    }

    /// Scaled (rows, cols) of weight matrix `i`.
    pub fn scaled_shape(&self, i: usize) -> (usize, usize) {
        self.scaled_shapes[i]
    }

    /// The ratio between the full K dimension of matrix `i` and its scaled
    /// rows — used to map pruning decisions back onto the real shapes.
    pub fn row_scale(&self, i: usize) -> f64 {
        self.workload.prunable[i].k as f64 / self.scaled_shapes[i].0 as f64
    }

    /// The ratio between the full N dimension of matrix `i` and its scaled
    /// columns.
    pub fn col_scale(&self, i: usize) -> f64 {
        self.workload.prunable[i].n as f64 / self.scaled_shapes[i].1 as f64
    }

    /// A fine-tuning hook for the multi-stage pruner: surviving weights are
    /// nudged to partially compensate for the pruned ones (their magnitudes
    /// grow slightly), which is the first-order effect of real fine-tuning.
    pub fn fine_tune_hook(
        recovery: f32,
    ) -> impl FnMut(&mut LayerSet, &[tw_pruning::PatternMask], usize) {
        move |layers, masks, _stage| {
            for (w, mask) in layers.weights_mut().iter_mut().zip(masks) {
                let boost = 1.0 + recovery * mask.sparsity() as f32;
                for (v, &keep) in w.as_mut_slice().iter_mut().zip(mask.keep()) {
                    if keep {
                        *v *= boost;
                    }
                }
            }
        }
    }
}

fn scale_dim(dim: usize, divisor: usize) -> usize {
    (dim / divisor.max(1)).max(8).min(dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ModelKind;
    use tw_pruning::{analysis, ew, ImportanceMethod, SparsityTarget};

    fn bert_model(seed: u64) -> SyntheticModel {
        SyntheticModel::generate(
            Workload::bert_base(8, 128),
            SyntheticModelConfig::default_with_seed(seed),
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let a = bert_model(7);
        let b = bert_model(7);
        let c = bert_model(8);
        assert_eq!(a.layers().weights()[0], b.layers().weights()[0]);
        assert_ne!(a.layers().weights()[0], c.layers().weights()[0]);
    }

    #[test]
    fn one_matrix_per_prunable_gemm() {
        let m = bert_model(1);
        assert_eq!(m.layers().len(), 72);
        assert_eq!(m.layers().names()[0], "layer0.query");
    }

    #[test]
    fn scaled_shapes_divide_real_shapes() {
        let m = bert_model(2);
        let (rows, cols) = m.scaled_shape(0);
        assert_eq!(rows, 96); // 768 / 8
        assert_eq!(cols, 96);
        assert!((m.row_scale(0) - 8.0).abs() < 1e-12);
        let ffn_up_idx =
            m.workload().prunable.iter().position(|g| g.name == "layer0.ffn_up").unwrap();
        assert_eq!(m.scaled_shape(ffn_up_idx), (96, 384));
    }

    #[test]
    fn global_ew_pruning_produces_uneven_per_matrix_sparsity() {
        // The Fig. 5 effect must emerge from the synthetic importance
        // structure: at a 75% global target, per-matrix sparsities spread
        // widely instead of all being 0.75.
        let m = bert_model(3);
        let scores = m.layers().importance(ImportanceMethod::Taylor);
        let masks = ew::prune_global(&scores, SparsityTarget::new(0.75));
        let per = analysis::per_matrix_sparsity(&masks);
        let min = per.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per.iter().cloned().fold(0.0, f64::max);
        let spread = analysis::sparsity_unevenness(&masks);
        assert!(max - min > 0.2, "per-matrix sparsity range too narrow: {min}..{max}");
        assert!(spread > 0.05, "unevenness {spread}");
        // The average still matches the global target.
        let total: f64 = per.iter().sum::<f64>() / per.len() as f64;
        assert!((total - 0.75).abs() < 0.1, "mean per-matrix sparsity {total}");
    }

    #[test]
    fn column_clusters_make_some_columns_fully_prunable() {
        // The Fig. 6 locality: at 75% EW sparsity a noticeable fraction of
        // columns is pruned entirely.
        let m = bert_model(4);
        let scores = m.layers().importance(ImportanceMethod::Taylor);
        let masks = ew::prune_global(&scores, SparsityTarget::new(0.75));
        let mut full_cols = 0usize;
        let mut total_cols = 0usize;
        for mask in &masks {
            for s in mask.col_sparsity() {
                total_cols += 1;
                if s >= 1.0 - 1e-12 {
                    full_cols += 1;
                }
            }
        }
        let fraction = full_cols as f64 / total_cols as f64;
        assert!(
            fraction > 0.05,
            "expected >5% of columns fully pruned at 75% EW sparsity, got {:.1}%",
            fraction * 100.0
        );
    }

    #[test]
    fn other_workloads_generate() {
        for kind in [ModelKind::Vgg16, ModelKind::Nmt] {
            let w = Workload::paper_config(kind);
            let n = w.prunable.len();
            let m = SyntheticModel::generate(w, SyntheticModelConfig::default_with_seed(5));
            assert_eq!(m.layers().len(), n);
            assert!(m.layers().total_elements() > 0);
        }
    }

    #[test]
    fn fine_tune_hook_boosts_surviving_weights() {
        let mut m = bert_model(6);
        let scores = m.layers().importance(ImportanceMethod::Taylor);
        let masks = ew::prune_global(&scores, SparsityTarget::new(0.5));
        let before = m.layers().weights()[0].abs_sum();
        m.layers_mut().apply_masks(&masks);
        let after_mask = m.layers().weights()[0].abs_sum();
        let mut hook = SyntheticModel::fine_tune_hook(0.2);
        hook(m.layers_mut(), &masks, 0);
        let after_hook = m.layers().weights()[0].abs_sum();
        assert!(after_mask < before);
        assert!(after_hook > after_mask);
    }
}
