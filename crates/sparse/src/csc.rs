//! Compressed sparse column (CSC) format.
//!
//! The TEW hybrid pattern stores its element-wise overlay per tile in CSC
//! (paper Fig. 4 ③-④), because the overlay is applied column-by-column on
//! top of a column-pruned tile.

use tw_tensor::Matrix;

/// A CSC matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    /// `col_ptr[c]..col_ptr[c+1]` indexes the entries of column `c`.
    col_ptr: Vec<usize>,
    /// Row index of each stored entry.
    row_idx: Vec<usize>,
    /// Value of each stored entry.
    values: Vec<f32>,
}

impl CscMatrix {
    /// Builds a CSC matrix from a dense matrix, dropping exact zeros.
    pub fn from_dense(dense: &Matrix) -> Self {
        let (rows, cols) = dense.shape();
        let mut col_ptr = Vec::with_capacity(cols + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for c in 0..cols {
            for r in 0..rows {
                let v = dense.get(r, c);
                if v != 0.0 {
                    row_idx.push(r);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        Self { rows, cols, col_ptr, row_idx, values }
    }

    /// Builds a CSC matrix from `(row, col, value)` triples.
    ///
    /// Duplicate coordinates are summed, mirroring cuSparse's COO-to-CSC
    /// conversion semantics.
    pub fn from_triples(rows: usize, cols: usize, triples: &[(usize, usize, f32)]) -> Self {
        let mut dense = Matrix::zeros(rows, cols);
        for &(r, c, v) in triples {
            assert!(r < rows && c < cols, "triple out of range");
            dense[(r, c)] += v;
        }
        Self::from_dense(&dense)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are zero.
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total as f64
    }

    /// Column pointers.
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row indices.
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Stored values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The entries of one column as parallel `(row, value)` slices.
    pub fn col_entries(&self, c: usize) -> (&[usize], &[f32]) {
        let start = self.col_ptr[c];
        let end = self.col_ptr[c + 1];
        (&self.row_idx[start..end], &self.values[start..end])
    }

    /// Iterator over `(row, col, value)` triples in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.cols).flat_map(move |c| {
            let start = self.col_ptr[c];
            let end = self.col_ptr[c + 1];
            (start..end).map(move |i| (self.row_idx[i], c, self.values[i]))
        })
    }

    /// Converts back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, v);
        }
        out
    }

    /// Memory footprint in bytes (values + 4-byte indices/pointers).
    pub fn storage_bytes(&self, elem_size: usize) -> usize {
        self.values.len() * elem_size + self.row_idx.len() * 4 + self.col_ptr.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact matrix and CSC layout shown in the paper's Fig. 4.
    fn paper_example() -> Matrix {
        Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0],
            &[4.0, 0.0, 2.0, 0.0],
            &[0.0, 8.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 6.0],
        ])
    }

    #[test]
    fn matches_fig4_csc_layout() {
        let csc = CscMatrix::from_dense(&paper_example());
        // Fig. 4: Value = [4,1,8,2,6], Row ID = [1,0,2,1,3], Col Ptr = [0,1,3,4,5].
        assert_eq!(csc.values(), &[4.0, 1.0, 8.0, 2.0, 6.0]);
        assert_eq!(csc.row_idx(), &[1, 0, 2, 1, 3]);
        assert_eq!(csc.col_ptr(), &[0, 1, 3, 4, 5]);
    }

    #[test]
    fn round_trip() {
        let dense = paper_example();
        assert_eq!(CscMatrix::from_dense(&dense).to_dense(), dense);
    }

    #[test]
    fn from_triples_sums_duplicates() {
        let csc = CscMatrix::from_triples(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)]);
        assert_eq!(csc.nnz(), 2);
        assert_eq!(csc.to_dense(), Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 5.0]]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_triples_rejects_out_of_range() {
        let _ = CscMatrix::from_triples(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn col_entries_access() {
        let csc = CscMatrix::from_dense(&paper_example());
        let (rows, vals) = csc.col_entries(1);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 8.0]);
    }

    #[test]
    fn sparsity_and_storage() {
        let csc = CscMatrix::from_dense(&paper_example());
        assert!((csc.sparsity() - 11.0 / 16.0).abs() < 1e-12);
        assert_eq!(csc.storage_bytes(2), 5 * 2 + 5 * 4 + 5 * 4);
    }

    #[test]
    fn empty_column_handled() {
        let dense = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let csc = CscMatrix::from_dense(&dense);
        assert_eq!(csc.col_ptr(), &[0, 1, 1, 2]);
        let (rows, _) = csc.col_entries(1);
        assert!(rows.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::csr::CsrMatrix;
    use proptest::prelude::*;

    fn arb_sparse_dense() -> impl Strategy<Value = Matrix> {
        (1usize..16, 1usize..16, any::<u64>(), 0.0f64..1.0).prop_map(|(r, c, seed, density)| {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            Matrix::from_fn(r, c, |_, _| {
                if rng.gen_bool(density) {
                    rng.gen_range(-1.0..1.0f32)
                } else {
                    0.0
                }
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// CSC and CSR represent the same matrix.
        #[test]
        fn csc_csr_agree(dense in arb_sparse_dense()) {
            let csc = CscMatrix::from_dense(&dense);
            let csr = CsrMatrix::from_dense(&dense);
            prop_assert_eq!(csc.nnz(), csr.nnz());
            prop_assert_eq!(csc.to_dense(), csr.to_dense());
        }

        /// CSC of the transpose has the CSR structure of the original.
        #[test]
        fn csc_of_transpose_is_csr(dense in arb_sparse_dense()) {
            let csc_t = CscMatrix::from_dense(&dense.transpose());
            let csr = CsrMatrix::from_dense(&dense);
            prop_assert_eq!(csc_t.col_ptr(), csr.row_ptr());
            prop_assert_eq!(csc_t.row_idx(), csr.col_idx());
        }
    }
}
