//! Sparse matrix formats and kernels.
//!
//! This crate is the reproduction's stand-in for cuSparse / BlockSparse: the
//! formats and kernels the paper's *baseline* sparse models execute with.
//!
//! * [`CsrMatrix`] — compressed sparse row, used by the element-wise (EW)
//!   and vector-wise (VW) baselines (cuSparse SpMM path).
//! * [`CscMatrix`] — compressed sparse column, used by the TEW pattern's
//!   element-wise overlay (Sec. IV-A: "each tile stores the EW pattern with
//!   the compressed sparse column (CSC) format").
//! * [`BsrMatrix`] — block sparse row with square blocks, the block-wise
//!   (BW) baseline (BlockSparse library path).
//! * [`spmm`] — sparse x dense and dense x sparse multiplication kernels,
//!   functionally exact and checked against dense GEMM.

pub mod bsr;
pub mod csc;
pub mod csr;
pub mod mask;
pub mod spmm;

pub use bsr::BsrMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use mask::RowColMask;
