//! Row/column keep-masks.
//!
//! The tile-wise execution stores, per weight tile, two mask vectors
//! (`mask_k`, `mask_n` in Listing 1) describing which rows and columns of the
//! tile survived pruning.  [`RowColMask`] is that pair, together with the
//! bookkeeping the planner and the GPU cost model need (survivor counts,
//! mask storage bytes).

/// A pair of keep-masks over the rows (K dimension) and columns (N dimension)
/// of a weight tile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowColMask {
    rows: Vec<bool>,
    cols: Vec<bool>,
}

impl RowColMask {
    /// A mask that keeps everything.
    pub fn keep_all(rows: usize, cols: usize) -> Self {
        Self { rows: vec![true; rows], cols: vec![true; cols] }
    }

    /// Builds a mask from explicit keep vectors.
    pub fn new(rows: Vec<bool>, cols: Vec<bool>) -> Self {
        Self { rows, cols }
    }

    /// Number of rows covered by the mask.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns covered by the mask.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Row keep-mask (the paper's `mask_k`).
    pub fn row_mask(&self) -> &[bool] {
        &self.rows
    }

    /// Column keep-mask (the paper's `mask_n`).
    pub fn col_mask(&self) -> &[bool] {
        &self.cols
    }

    /// Marks row `r` as pruned.
    pub fn prune_row(&mut self, r: usize) {
        self.rows[r] = false;
    }

    /// Marks column `c` as pruned.
    pub fn prune_col(&mut self, c: usize) {
        self.cols[c] = false;
    }

    /// Number of surviving rows.
    pub fn kept_rows(&self) -> usize {
        self.rows.iter().filter(|&&k| k).count()
    }

    /// Number of surviving columns.
    pub fn kept_cols(&self) -> usize {
        self.cols.iter().filter(|&&k| k).count()
    }

    /// Indices of surviving rows, in order.
    pub fn kept_row_indices(&self) -> Vec<usize> {
        self.rows.iter().enumerate().filter_map(|(i, &k)| k.then_some(i)).collect()
    }

    /// Indices of surviving columns, in order.
    pub fn kept_col_indices(&self) -> Vec<usize> {
        self.cols.iter().enumerate().filter_map(|(i, &k)| k.then_some(i)).collect()
    }

    /// True when a given element survives (both its row and column survive).
    pub fn keeps(&self, r: usize, c: usize) -> bool {
        self.rows[r] && self.cols[c]
    }

    /// Fraction of the tile's elements removed by the mask.
    pub fn sparsity(&self) -> f64 {
        let total = self.rows.len() * self.cols.len();
        if total == 0 {
            return 0.0;
        }
        1.0 - (self.kept_rows() * self.kept_cols()) as f64 / total as f64
    }

    /// Bytes needed to store the two masks on the GPU.
    ///
    /// The paper stores masks as `int32` ("the masking overhead, for which we
    /// use the int32 format"), i.e. 4 bytes per row plus 4 bytes per column.
    pub fn storage_bytes_int32(&self) -> usize {
        4 * (self.rows.len() + self.cols.len())
    }

    /// Expands the mask pair into a full element-level keep mask in row-major
    /// order (used to build dense references in tests).
    pub fn to_element_mask(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.rows.len() * self.cols.len());
        for &rk in &self.rows {
            for &ck in &self.cols {
                out.push(rk && ck);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_all_keeps_everything() {
        let m = RowColMask::keep_all(3, 4);
        assert_eq!(m.kept_rows(), 3);
        assert_eq!(m.kept_cols(), 4);
        assert_eq!(m.sparsity(), 0.0);
        assert!(m.keeps(2, 3));
    }

    #[test]
    fn pruning_updates_counts_and_sparsity() {
        let mut m = RowColMask::keep_all(4, 4);
        m.prune_row(1);
        m.prune_col(0);
        m.prune_col(3);
        assert_eq!(m.kept_rows(), 3);
        assert_eq!(m.kept_cols(), 2);
        assert_eq!(m.kept_row_indices(), vec![0, 2, 3]);
        assert_eq!(m.kept_col_indices(), vec![1, 2]);
        // 16 - 3*2 = 10 pruned elements.
        assert!((m.sparsity() - 10.0 / 16.0).abs() < 1e-12);
        assert!(!m.keeps(1, 1));
        assert!(!m.keeps(0, 0));
        assert!(m.keeps(0, 1));
    }

    #[test]
    fn element_mask_matches_keeps() {
        let mut m = RowColMask::keep_all(2, 3);
        m.prune_col(1);
        let em = m.to_element_mask();
        assert_eq!(em, vec![true, false, true, true, false, true]);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(em[r * 3 + c], m.keeps(r, c));
            }
        }
    }

    #[test]
    fn int32_storage_matches_paper_masking_overhead() {
        let m = RowColMask::keep_all(768, 128);
        assert_eq!(m.storage_bytes_int32(), 4 * (768 + 128));
    }

    #[test]
    fn empty_mask_is_degenerate() {
        let m = RowColMask::keep_all(0, 0);
        assert_eq!(m.sparsity(), 0.0);
        assert!(m.to_element_mask().is_empty());
    }
}
