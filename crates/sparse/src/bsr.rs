//! Block sparse row (BSR) format with square blocks.
//!
//! The block-wise (BW) baseline in the paper prunes whole `b x b` blocks and
//! executes the survivors as small dense GEMMs on tensor cores via the
//! BlockSparse library.  `BsrMatrix` is that storage: a block-level CSR
//! index plus a dense payload per surviving block.

use tw_tensor::Matrix;

/// A block-sparse matrix with square `block_size x block_size` blocks.
///
/// The logical matrix dimensions need not be multiples of the block size;
/// edge blocks are zero-padded internally (matching how BlockSparse pads).
#[derive(Clone, Debug, PartialEq)]
pub struct BsrMatrix {
    rows: usize,
    cols: usize,
    block_size: usize,
    block_rows: usize,
    block_cols: usize,
    /// Block-level CSR row pointers.
    block_row_ptr: Vec<usize>,
    /// Block-column index of each stored block.
    block_col_idx: Vec<usize>,
    /// Dense payload of each stored block (`block_size^2` values, row-major).
    blocks: Vec<Vec<f32>>,
}

impl BsrMatrix {
    /// Builds a BSR matrix from a dense matrix, keeping only blocks that
    /// contain at least one non-zero.
    pub fn from_dense(dense: &Matrix, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let (rows, cols) = dense.shape();
        let block_rows = rows.div_ceil(block_size);
        let block_cols = cols.div_ceil(block_size);
        let mut block_row_ptr = Vec::with_capacity(block_rows + 1);
        let mut block_col_idx = Vec::new();
        let mut blocks = Vec::new();
        block_row_ptr.push(0);
        for br in 0..block_rows {
            for bc in 0..block_cols {
                let mut payload = vec![0.0f32; block_size * block_size];
                let mut any_nonzero = false;
                for i in 0..block_size {
                    for j in 0..block_size {
                        let r = br * block_size + i;
                        let c = bc * block_size + j;
                        if r < rows && c < cols {
                            let v = dense.get(r, c);
                            payload[i * block_size + j] = v;
                            if v != 0.0 {
                                any_nonzero = true;
                            }
                        }
                    }
                }
                if any_nonzero {
                    block_col_idx.push(bc);
                    blocks.push(payload);
                }
            }
            block_row_ptr.push(block_col_idx.len());
        }
        Self {
            rows,
            cols,
            block_size,
            block_rows,
            block_cols,
            block_row_ptr,
            block_col_idx,
            blocks,
        }
    }

    /// Number of rows of the logical matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the logical matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block edge length.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of block rows.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of block columns.
    pub fn block_cols(&self) -> usize {
        self.block_cols
    }

    /// Number of stored (surviving) blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Fraction of *blocks* that were pruned (block-level sparsity); this is
    /// what determines BW's compute saving on the tensor core.
    pub fn block_sparsity(&self) -> f64 {
        let total = self.block_rows * self.block_cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.num_blocks() as f64 / total as f64
    }

    /// Fraction of stored values that are zero padding or intra-block zeros.
    pub fn intra_block_waste(&self) -> f64 {
        let stored: usize = self.blocks.len() * self.block_size * self.block_size;
        if stored == 0 {
            return 0.0;
        }
        let nonzeros: usize =
            self.blocks.iter().map(|b| b.iter().filter(|&&v| v != 0.0).count()).sum();
        1.0 - nonzeros as f64 / stored as f64
    }

    /// Element-level sparsity of the logical matrix.
    pub fn element_sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        let nonzeros: usize =
            self.blocks.iter().map(|b| b.iter().filter(|&&v| v != 0.0).count()).sum();
        1.0 - nonzeros as f64 / total as f64
    }

    /// Iterator over `(block_row, block_col, payload)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (usize, usize, &[f32])> + '_ {
        (0..self.block_rows).flat_map(move |br| {
            let start = self.block_row_ptr[br];
            let end = self.block_row_ptr[br + 1];
            (start..end).map(move |i| (br, self.block_col_idx[i], self.blocks[i].as_slice()))
        })
    }

    /// Converts back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (br, bc, payload) in self.iter_blocks() {
            for i in 0..self.block_size {
                for j in 0..self.block_size {
                    let r = br * self.block_size + i;
                    let c = bc * self.block_size + j;
                    if r < self.rows && c < self.cols {
                        out.set(r, c, payload[i * self.block_size + j]);
                    }
                }
            }
        }
        out
    }

    /// Storage bytes: dense block payloads plus 4-byte block indices.
    pub fn storage_bytes(&self, elem_size: usize) -> usize {
        self.blocks.len() * self.block_size * self.block_size * elem_size
            + self.block_col_idx.len() * 4
            + self.block_row_ptr.len() * 4
    }

    /// FLOPs needed to multiply an `m x rows` dense matrix by this BSR matrix
    /// (only surviving blocks contribute) — what the BW cost model charges.
    pub fn spmm_flops(&self, m: usize) -> u64 {
        2 * m as u64 * self.num_blocks() as u64 * (self.block_size * self.block_size) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_diag() -> Matrix {
        // 4x4 matrix with non-zeros only in the two diagonal 2x2 blocks.
        Matrix::from_rows(&[
            &[1.0, 2.0, 0.0, 0.0],
            &[3.0, 4.0, 0.0, 0.0],
            &[0.0, 0.0, 5.0, 6.0],
            &[0.0, 0.0, 7.0, 8.0],
        ])
    }

    #[test]
    fn from_dense_keeps_only_nonzero_blocks() {
        let bsr = BsrMatrix::from_dense(&block_diag(), 2);
        assert_eq!(bsr.num_blocks(), 2);
        assert_eq!(bsr.block_rows(), 2);
        assert_eq!(bsr.block_cols(), 2);
        assert!((bsr.block_sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn round_trip() {
        let dense = block_diag();
        for bs in [1, 2, 3, 4, 5] {
            let bsr = BsrMatrix::from_dense(&dense, bs);
            assert_eq!(bsr.to_dense(), dense, "block size {bs}");
        }
    }

    #[test]
    fn block_size_one_equals_element_sparsity() {
        let dense = block_diag();
        let bsr = BsrMatrix::from_dense(&dense, 1);
        assert_eq!(bsr.num_blocks(), dense.count_nonzeros());
        assert!((bsr.block_sparsity() - dense.sparsity()).abs() < 1e-12);
        assert_eq!(bsr.intra_block_waste(), 0.0);
    }

    #[test]
    fn padding_for_non_multiple_dims() {
        let dense = Matrix::filled(3, 5, 1.0);
        let bsr = BsrMatrix::from_dense(&dense, 2);
        assert_eq!(bsr.block_rows(), 2);
        assert_eq!(bsr.block_cols(), 3);
        assert_eq!(bsr.num_blocks(), 6);
        assert_eq!(bsr.to_dense(), dense);
        // Padded entries count as intra-block waste.
        assert!(bsr.intra_block_waste() > 0.0);
    }

    #[test]
    fn element_sparsity_matches_dense() {
        let dense = block_diag();
        let bsr = BsrMatrix::from_dense(&dense, 2);
        assert!((bsr.element_sparsity() - dense.sparsity()).abs() < 1e-12);
    }

    #[test]
    fn spmm_flops_scales_with_blocks() {
        let bsr = BsrMatrix::from_dense(&block_diag(), 2);
        assert_eq!(bsr.spmm_flops(8), 2 * 8 * 2 * 4);
    }

    #[test]
    fn intra_block_waste_counts_zeros_inside_kept_blocks() {
        let dense = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
        let bsr = BsrMatrix::from_dense(&dense, 2);
        assert_eq!(bsr.num_blocks(), 1);
        assert!((bsr.intra_block_waste() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn storage_bytes() {
        let bsr = BsrMatrix::from_dense(&block_diag(), 2);
        assert_eq!(bsr.storage_bytes(4), 2 * 4 * 4 + 2 * 4 + 3 * 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_size_panics() {
        let _ = BsrMatrix::from_dense(&block_diag(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_sparse_dense() -> impl Strategy<Value = Matrix> {
        (1usize..24, 1usize..24, any::<u64>(), 0.0f64..1.0).prop_map(|(r, c, seed, density)| {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            Matrix::from_fn(r, c, |_, _| {
                if rng.gen_bool(density) {
                    rng.gen_range(-1.0..1.0f32)
                } else {
                    0.0
                }
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// BSR round-trips for arbitrary block sizes (including sizes larger
        /// than the matrix).
        #[test]
        fn round_trip(dense in arb_sparse_dense(), bs in 1usize..9) {
            let bsr = BsrMatrix::from_dense(&dense, bs);
            prop_assert_eq!(bsr.to_dense(), dense);
        }

        /// When the block size tiles the matrix exactly, block sparsity can
        /// never exceed element sparsity: pruning a block requires all of
        /// its elements to be zero.  (Edge blocks of non-multiple shapes are
        /// smaller, so the bound does not hold there.)
        #[test]
        fn block_sparsity_bounded_by_element_sparsity(
            blocks_r in 1usize..6, blocks_c in 1usize..6, bs in 1usize..6,
            seed in any::<u64>(), density in 0.0f64..1.0,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let dense = Matrix::from_fn(blocks_r * bs, blocks_c * bs, |_, _| {
                if rng.gen_bool(density) { rng.gen_range(-1.0..1.0f32) } else { 0.0 }
            });
            let bsr = BsrMatrix::from_dense(&dense, bs);
            prop_assert!(bsr.block_sparsity() <= dense.sparsity() + 1e-12);
        }
    }
}
