//! Sparse matrix multiplication kernels.
//!
//! The baselines in the paper execute their sparse weight matrices with
//! library SpMM kernels (cuSparse for CSR, BlockSparse for BSR).  These CPU
//! kernels are the functional equivalents; the GPU cost of running them is
//! modelled separately by `tw-gpu-sim`.
//!
//! Orientation convention: the DNN GEMM is `C (MxN) = A (MxK) x B (KxN)` with
//! `A` the dense activation and `B` the (sparse) weight matrix, matching the
//! paper's Fig. 4.

use crate::bsr::BsrMatrix;
use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use rayon::prelude::*;
use tw_tensor::Matrix;

/// Dense x CSR: `C = A * B` where `B` is CSR.
pub fn dense_csr_matmul(a: &Matrix, b: &CsrMatrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let m = a.rows();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (p, &aip) in a_row.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let (cols, vals) = b.row_entries(p);
            for (&j, &v) in cols.iter().zip(vals) {
                c_row[j] += aip * v;
            }
        }
    }
    c
}

/// Rayon-parallel dense x CSR.
pub fn dense_csr_matmul_par(a: &Matrix, b: &CsrMatrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let m = a.rows();
    let n = b.cols();
    let mut out = vec![0.0f32; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        for (p, &aip) in a.row(i).iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let (cols, vals) = b.row_entries(p);
            for (&j, &v) in cols.iter().zip(vals) {
                c_row[j] += aip * v;
            }
        }
    });
    Matrix::from_vec(m, n, out)
}

/// The serving-side batched entry point: many per-request activation
/// matrices against one shared CSR weight, `C_i = A_i * B`, parallel over
/// batch items.  This is the kernel shape a dynamic batcher reduces a batch
/// of CSR-baseline inference requests to.
pub fn dense_csr_matmul_batch(activations: &[&Matrix], b: &CsrMatrix) -> Vec<Matrix> {
    activations.par_iter().map(|a| dense_csr_matmul(a, b)).collect()
}

/// Dense x CSC: `C = A * B` where `B` is CSC.
///
/// This is the kernel used for the TEW element-wise overlay, which the paper
/// stores in CSC per tile and executes separately from the dense TW part
/// (exploiting linearity of matrix multiplication).
pub fn dense_csc_matmul(a: &Matrix, b: &CscMatrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let m = a.rows();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for j in 0..n {
        let (rows, vals) = b.col_entries(j);
        for i in 0..m {
            let mut acc = 0.0;
            for (&p, &v) in rows.iter().zip(vals) {
                acc += a.get(i, p) * v;
            }
            c[(i, j)] = acc;
        }
    }
    c
}

/// CSR x dense: `C = B * A` where the sparse matrix is on the left.  Used for
/// SpMV-style layers (e.g. LSTM gates with a sparse weight applied to a dense
/// activation vector batch).
pub fn csr_dense_matmul(b: &CsrMatrix, a: &Matrix) -> Matrix {
    assert_eq!(b.cols(), a.rows(), "inner dimension mismatch");
    let m = b.rows();
    let n = a.cols();
    let mut c = Matrix::zeros(m, n);
    for r in 0..m {
        let (cols, vals) = b.row_entries(r);
        let c_row = c.row_mut(r);
        for (&p, &v) in cols.iter().zip(vals) {
            let a_row = a.row(p);
            for j in 0..n {
                c_row[j] += v * a_row[j];
            }
        }
    }
    c
}

/// Dense x BSR: `C = A * B` where `B` is block-sparse; each surviving block
/// contributes one small dense GEMM, mirroring the BlockSparse execution.
pub fn dense_bsr_matmul(a: &Matrix, b: &BsrMatrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let m = a.rows();
    let n = b.cols();
    let bs = b.block_size();
    let mut c = Matrix::zeros(m, n);
    for (br, bc, payload) in b.iter_blocks() {
        let k0 = br * bs;
        let n0 = bc * bs;
        for i in 0..m {
            for jj in 0..bs {
                let j = n0 + jj;
                if j >= n {
                    continue;
                }
                let mut acc = 0.0;
                for kk in 0..bs {
                    let k = k0 + kk;
                    if k >= a.cols() {
                        continue;
                    }
                    acc += a.get(i, k) * payload[kk * bs + jj];
                }
                c[(i, j)] += acc;
            }
        }
    }
    c
}

/// Rayon-parallel dense x BSR, splitting the output by activation rows.
/// This is the kernel the BSR serving backend runs: a fused batch lives on
/// the rows of `a`, so row-parallelism is batch-parallelism.
pub fn dense_bsr_matmul_par(a: &Matrix, b: &BsrMatrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let m = a.rows();
    let n = b.cols();
    let bs = b.block_size();
    let mut out = vec![0.0f32; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        for (br, bc, payload) in b.iter_blocks() {
            let k0 = br * bs;
            let n0 = bc * bs;
            for jj in 0..bs {
                let j = n0 + jj;
                if j >= n {
                    continue;
                }
                let mut acc = 0.0;
                for kk in 0..bs {
                    let k = k0 + kk;
                    if k >= a.cols() {
                        continue;
                    }
                    acc += a.get(i, k) * payload[kk * bs + jj];
                }
                c_row[j] += acc;
            }
        }
    });
    Matrix::from_vec(m, n, out)
}

/// Library-level batched BSR entry point: many per-request activation
/// matrices against one shared block-sparse weight, `C_i = A_i * B`,
/// parallel over batch items — the BlockSparse-baseline mirror of
/// [`dense_csr_matmul_batch`], for callers that keep requests as separate
/// matrices.  (The serving session instead fuses a batch into one
/// activation matrix and runs [`dense_bsr_matmul_par`] once.)
pub fn dense_bsr_matmul_batch(activations: &[&Matrix], b: &BsrMatrix) -> Vec<Matrix> {
    activations.par_iter().map(|a| dense_bsr_matmul(a, b)).collect()
}

/// Sparse-times-sparse sanity kernel (CSR x CSR), used only in tests and
/// analysis; returns a dense result.
pub fn csr_csr_matmul(a: &CsrMatrix, b: &CsrMatrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let m = a.rows();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for (i, p, av) in a.iter() {
        let (cols, vals) = b.row_entries(p);
        for (&j, &bv) in cols.iter().zip(vals) {
            c[(i, j)] += av * bv;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_tensor::{gemm, DEFAULT_TOL};

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> Matrix {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| {
            if rng.gen_bool(density) {
                rng.gen_range(-1.0..1.0f32)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn dense_csr_matches_dense_gemm() {
        let a = Matrix::random_uniform(9, 14, 1.0, 1);
        let b_dense = random_sparse(14, 11, 0.3, 2);
        let b = CsrMatrix::from_dense(&b_dense);
        let reference = gemm(&a, &b_dense);
        assert!(dense_csr_matmul(&a, &b).approx_eq(&reference, DEFAULT_TOL));
        assert!(dense_csr_matmul_par(&a, &b).approx_eq(&reference, DEFAULT_TOL));
    }

    #[test]
    fn dense_csc_matches_dense_gemm() {
        let a = Matrix::random_uniform(7, 10, 1.0, 3);
        let b_dense = random_sparse(10, 8, 0.25, 4);
        let b = CscMatrix::from_dense(&b_dense);
        assert!(dense_csc_matmul(&a, &b).approx_eq(&gemm(&a, &b_dense), DEFAULT_TOL));
    }

    #[test]
    fn csr_dense_matches_dense_gemm() {
        let b_dense = random_sparse(12, 9, 0.4, 5);
        let b = CsrMatrix::from_dense(&b_dense);
        let a = Matrix::random_uniform(9, 6, 1.0, 6);
        assert!(csr_dense_matmul(&b, &a).approx_eq(&gemm(&b_dense, &a), DEFAULT_TOL));
    }

    #[test]
    fn dense_bsr_matches_dense_gemm() {
        let a = Matrix::random_uniform(8, 12, 1.0, 7);
        let b_dense = random_sparse(12, 10, 0.35, 8);
        for bs in [1, 2, 3, 4] {
            let b = BsrMatrix::from_dense(&b_dense, bs);
            assert!(
                dense_bsr_matmul(&a, &b).approx_eq(&gemm(&a, &b_dense), DEFAULT_TOL),
                "block size {bs}"
            );
        }
    }

    #[test]
    fn batched_dense_bsr_matches_individual() {
        let b_dense = random_sparse(12, 10, 0.35, 21);
        let b = BsrMatrix::from_dense(&b_dense, 4);
        let a1 = Matrix::random_uniform(3, 12, 1.0, 22);
        let a2 = Matrix::random_uniform(7, 12, 1.0, 23);
        let outs = dense_bsr_matmul_batch(&[&a1, &a2], &b);
        assert_eq!(outs.len(), 2);
        assert!(outs[0].approx_eq(&gemm(&a1, &b_dense), DEFAULT_TOL));
        assert!(outs[1].approx_eq(&gemm(&a2, &b_dense), DEFAULT_TOL));
    }

    #[test]
    fn csr_csr_matches_dense_gemm() {
        let a_dense = random_sparse(6, 8, 0.5, 9);
        let b_dense = random_sparse(8, 7, 0.5, 10);
        let c = csr_csr_matmul(&CsrMatrix::from_dense(&a_dense), &CsrMatrix::from_dense(&b_dense));
        assert!(c.approx_eq(&gemm(&a_dense, &b_dense), DEFAULT_TOL));
    }

    #[test]
    fn batched_dense_csr_matches_individual() {
        let b_dense = random_sparse(10, 8, 0.3, 12);
        let b = CsrMatrix::from_dense(&b_dense);
        let a1 = Matrix::random_uniform(3, 10, 1.0, 13);
        let a2 = Matrix::random_uniform(6, 10, 1.0, 14);
        let outs = dense_csr_matmul_batch(&[&a1, &a2], &b);
        assert_eq!(outs.len(), 2);
        assert!(outs[0].approx_eq(&gemm(&a1, &b_dense), DEFAULT_TOL));
        assert!(outs[1].approx_eq(&gemm(&a2, &b_dense), DEFAULT_TOL));
    }

    #[test]
    fn empty_sparse_matrix_gives_zero_output() {
        let a = Matrix::random_uniform(4, 5, 1.0, 11);
        let b = CsrMatrix::from_dense(&Matrix::zeros(5, 3));
        let c = dense_csr_matmul(&a, &b);
        assert_eq!(c.count_zeros(), 12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(4, 5);
        let b = CsrMatrix::from_dense(&Matrix::zeros(6, 3));
        let _ = dense_csr_matmul(&a, &b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tw_tensor::{gemm, DEFAULT_TOL};

    #[derive(Debug, Clone)]
    struct Case {
        a: Matrix,
        b: Matrix,
    }

    fn arb_case() -> impl Strategy<Value = Case> {
        (1usize..14, 1usize..14, 1usize..14, any::<u64>(), 0.05f64..0.95).prop_map(
            |(m, k, n, seed, density)| {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-1.0..1.0));
                let b = Matrix::from_fn(k, n, |_, _| {
                    if rng.gen_bool(density) {
                        rng.gen_range(-1.0..1.0)
                    } else {
                        0.0
                    }
                });
                Case { a, b }
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every sparse kernel agrees with the dense reference regardless of
        /// shape and sparsity.
        #[test]
        fn all_formats_agree_with_dense(case in arb_case(), bs in 1usize..6) {
            let reference = gemm(&case.a, &case.b);
            let csr = CsrMatrix::from_dense(&case.b);
            let csc = CscMatrix::from_dense(&case.b);
            let bsr = BsrMatrix::from_dense(&case.b, bs);
            prop_assert!(dense_csr_matmul(&case.a, &csr).approx_eq(&reference, DEFAULT_TOL));
            prop_assert!(dense_csr_matmul_par(&case.a, &csr).approx_eq(&reference, DEFAULT_TOL));
            prop_assert!(dense_csc_matmul(&case.a, &csc).approx_eq(&reference, DEFAULT_TOL));
            prop_assert!(dense_bsr_matmul(&case.a, &bsr).approx_eq(&reference, DEFAULT_TOL));
            prop_assert!(dense_bsr_matmul_par(&case.a, &bsr).approx_eq(&reference, DEFAULT_TOL));
        }
    }
}
