//! Compressed sparse row (CSR) format.

use tw_tensor::Matrix;

/// A CSR matrix: the format cuSparse uses for unstructured (EW/VW) sparse
/// weight matrices in the paper's baselines.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes the entries of row `r`.
    row_ptr: Vec<usize>,
    /// Column index of each stored entry.
    col_idx: Vec<usize>,
    /// Value of each stored entry.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense matrix, dropping exact zeros.
    pub fn from_dense(dense: &Matrix) -> Self {
        let (rows, cols) = dense.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self { rows, cols, row_ptr, col_idx, values }
    }

    /// Builds a CSR matrix directly from raw parts.
    ///
    /// # Panics
    /// Panics if the parts are inconsistent (wrong pointer length, entries
    /// out of range, or non-monotonic row pointers).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr must have rows+1 entries");
        assert_eq!(col_idx.len(), values.len(), "col_idx/values length mismatch");
        assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len(), "row_ptr must end at nnz");
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]), "row_ptr must be non-decreasing");
        assert!(col_idx.iter().all(|&c| c < cols), "column index out of range");
        Self { rows, cols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicitly stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are zero.
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total as f64
    }

    /// Row pointers.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Stored values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterator over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let start = self.row_ptr[r];
            let end = self.row_ptr[r + 1];
            (start..end).map(move |i| (r, self.col_idx[i], self.values[i]))
        })
    }

    /// The entries of one row as parallel `(col, value)` slices.
    pub fn row_entries(&self, r: usize) -> (&[usize], &[f32]) {
        let start = self.row_ptr[r];
        let end = self.row_ptr[r + 1];
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// Converts back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, v);
        }
        out
    }

    /// Memory footprint in bytes, assuming the given element size for values
    /// and 4-byte indices (what cuSparse would allocate); used by the GPU
    /// cost model.
    pub fn storage_bytes(&self, elem_size: usize) -> usize {
        self.values.len() * elem_size + self.col_idx.len() * 4 + self.row_ptr.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> Matrix {
        Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0],
            &[4.0, 0.0, 2.0, 0.0],
            &[0.0, 8.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 6.0],
        ])
    }

    #[test]
    fn from_dense_round_trip() {
        let dense = sample_dense();
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.nnz(), 5);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn structure_matches_paper_example() {
        // The CSC example in Fig. 4 of the paper uses this matrix; its CSR
        // form has row pointers [0,1,3,4,5].
        let csr = CsrMatrix::from_dense(&sample_dense());
        assert_eq!(csr.row_ptr(), &[0, 1, 3, 4, 5]);
        assert_eq!(csr.col_idx(), &[1, 0, 2, 1, 3]);
        assert_eq!(csr.values(), &[1.0, 4.0, 2.0, 8.0, 6.0]);
    }

    #[test]
    fn sparsity_reported() {
        let csr = CsrMatrix::from_dense(&sample_dense());
        assert!((csr.sparsity() - 11.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_dense(&Matrix::zeros(3, 3));
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.sparsity(), 1.0);
        assert_eq!(csr.to_dense(), Matrix::zeros(3, 3));
    }

    #[test]
    fn iter_yields_row_major_order() {
        let csr = CsrMatrix::from_dense(&sample_dense());
        let triples: Vec<_> = csr.iter().collect();
        assert_eq!(triples[0], (0, 1, 1.0));
        assert_eq!(triples[1], (1, 0, 4.0));
        assert_eq!(triples.len(), 5);
        assert!(triples.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn row_entries_access() {
        let csr = CsrMatrix::from_dense(&sample_dense());
        let (cols, vals) = csr.row_entries(1);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[4.0, 2.0]);
        let (cols, _) = csr.row_entries(0);
        assert_eq!(cols, &[1]);
    }

    #[test]
    fn from_parts_validates() {
        let ok = CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert_eq!(ok.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_parts_rejects_bad_col() {
        let _ = CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_parts_rejects_unsorted_ptr() {
        let _ = CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]);
    }

    #[test]
    fn storage_bytes_accounts_indices() {
        let csr = CsrMatrix::from_dense(&sample_dense());
        // 5 values * 4B + 5 col idx * 4B + 5 row ptr * 4B
        assert_eq!(csr.storage_bytes(4), 5 * 4 + 5 * 4 + 5 * 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_sparse_dense() -> impl Strategy<Value = Matrix> {
        (1usize..20, 1usize..20, any::<u64>(), 0.0f64..1.0).prop_map(|(r, c, seed, density)| {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            Matrix::from_fn(r, c, |_, _| {
                if rng.gen_bool(density) {
                    rng.gen_range(-1.0..1.0f32)
                } else {
                    0.0
                }
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Dense -> CSR -> dense is the identity.
        #[test]
        fn round_trip(dense in arb_sparse_dense()) {
            let csr = CsrMatrix::from_dense(&dense);
            prop_assert_eq!(csr.to_dense(), dense);
        }

        /// nnz + zeros == total element count.
        #[test]
        fn nnz_consistent(dense in arb_sparse_dense()) {
            let csr = CsrMatrix::from_dense(&dense);
            prop_assert_eq!(csr.nnz() + dense.count_zeros(), dense.len());
        }
    }
}
