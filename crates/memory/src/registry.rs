//! The model registry: named, versioned inference sessions plus the
//! whole-model admission decisions an over-subscribed fleet needs.
//!
//! A multi-model server resolves request model ids through one
//! [`ModelRegistry`].  Each registered model carries its executable
//! [`tilewise::InferenceSession`] and the derived [`WeightTile`] set the
//! [`crate::TileCache`] pages: every layer's `resident_bytes` is split into
//! tiles of at most `page_bytes`, keyed `(model, layer, tile)` — so paging
//! granularity follows the kernel's actual footprint, not a guess.
//!
//! When the registered footprint exceeds a device's VRAM, the fleet is
//! *over-subscribed*: every model still serves (the tile cache pages), but
//! an operator may prefer to evict whole models.  [`ModelRegistry::
//! admission_plan`] encodes that decision: superseded versions are evicted
//! first, then the largest models until the remainder fits.

use crate::cache::{ModelId, TileKey, WeightTile};
use std::sync::Arc;
use tilewise::InferenceSession;

/// One registered model.
#[derive(Clone, Debug)]
pub struct ModelEntry {
    name: String,
    version: u32,
    session: Arc<InferenceSession>,
    tiles: Vec<WeightTile>,
    footprint: u64,
}

impl ModelEntry {
    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The model's version (higher wins name resolution).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The executable session.
    pub fn session(&self) -> &Arc<InferenceSession> {
        &self.session
    }

    /// The pageable weight tiles, in (layer, tile) order.
    pub fn tiles(&self) -> &[WeightTile] {
        &self.tiles
    }

    /// Total resident footprint in bytes (the sum of the tiles).
    pub fn footprint(&self) -> u64 {
        self.footprint
    }
}

/// Decision of [`ModelRegistry::admission_plan`] for a VRAM budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdmissionPlan {
    /// Models to keep serving, in registration order.
    pub admitted: Vec<ModelId>,
    /// Models to evict wholesale (apply via [`crate::TileCache::evict_model`]
    /// and stop routing to them), in eviction order.
    pub evicted: Vec<ModelId>,
}

/// Named, versioned inference sessions behind stable [`ModelId`]s.
///
/// Ids are indices into registration order and never move; re-registering a
/// name with a higher version adds a new entry that *shadows* the old one
/// in [`ModelRegistry::resolve`] without invalidating in-flight requests
/// against the old id.
#[derive(Clone, Debug, Default)]
pub struct ModelRegistry {
    entries: Vec<ModelEntry>,
    page_bytes: u64,
}

impl ModelRegistry {
    /// Default paging granularity: 256 KiB pages.  Small enough that a
    /// partially-reused model does not pin its whole footprint, large
    /// enough that per-tile bookkeeping stays negligible next to transfer
    /// time.
    pub const DEFAULT_PAGE_BYTES: u64 = 256 * 1024;

    /// An empty registry with the default paging granularity.
    pub fn new() -> Self {
        Self { entries: Vec::new(), page_bytes: Self::DEFAULT_PAGE_BYTES }
    }

    /// An empty registry paging in tiles of at most `page_bytes`.
    ///
    /// # Panics
    /// Panics if `page_bytes` is zero.
    pub fn with_page_bytes(page_bytes: u64) -> Self {
        assert!(page_bytes > 0, "page size must be positive");
        Self { entries: Vec::new(), page_bytes }
    }

    /// The paging granularity in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Registers `session` as `name` at `version` and returns its id.
    ///
    /// # Panics
    /// Panics if the same `(name, version)` pair is already registered —
    /// re-deploying a model means bumping the version.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        version: u32,
        session: Arc<InferenceSession>,
    ) -> ModelId {
        let name = name.into();
        assert!(
            !self.entries.iter().any(|e| e.name == name && e.version == version),
            "model {name:?} v{version} is already registered"
        );
        let id = self.entries.len();
        let mut tiles = Vec::new();
        for (layer, layer_bytes) in session.layer_resident_bytes().into_iter().enumerate() {
            let mut remaining = layer_bytes as u64;
            let mut index = 0;
            while remaining > 0 {
                let bytes = remaining.min(self.page_bytes);
                tiles.push(WeightTile { key: TileKey { model: id, layer, tile: index }, bytes });
                remaining -= bytes;
                index += 1;
            }
        }
        let footprint = tiles.iter().map(|t| t.bytes).sum();
        self.entries.push(ModelEntry { name, version, session, tiles, footprint });
        id
    }

    /// The entry behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was never issued.
    pub fn get(&self, id: ModelId) -> &ModelEntry {
        &self.entries[id]
    }

    /// Resolves `name` to the id of its highest registered version.
    pub fn resolve(&self, name: &str) -> Option<ModelId> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.name == name)
            .max_by_key(|(_, e)| e.version)
            .map(|(id, _)| id)
    }

    /// Number of registered models (all versions).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(id, entry)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ModelId, &ModelEntry)> {
        self.entries.iter().enumerate()
    }

    /// Sum of every registered model's footprint.
    pub fn total_footprint(&self) -> u64 {
        self.entries.iter().map(|e| e.footprint).sum()
    }

    /// Whether the registered footprint exceeds `vram_bytes`.
    pub fn oversubscribed(&self, vram_bytes: u64) -> bool {
        self.total_footprint() > vram_bytes
    }

    /// Which whole models to evict so the remainder fits in `vram_bytes`:
    /// superseded versions go first (a shadowed model earns nothing), then
    /// the largest still-admitted models until the plan fits — evicting the
    /// biggest model frees the most VRAM per model taken out of service.
    /// When even a single model exceeds the budget it stays admitted alone
    /// (the tile cache pages it); the plan never evicts everything.
    pub fn admission_plan(&self, vram_bytes: u64) -> AdmissionPlan {
        let mut admitted: Vec<ModelId> = Vec::new();
        let mut evicted: Vec<ModelId> = Vec::new();
        for (id, entry) in self.iter() {
            if self.resolve(&entry.name) == Some(id) {
                admitted.push(id);
            } else {
                evicted.push(id);
            }
        }
        let mut budget: u64 = admitted.iter().map(|&id| self.entries[id].footprint).sum();
        while budget > vram_bytes && admitted.len() > 1 {
            let (pos, &victim) = admitted
                .iter()
                .enumerate()
                .max_by_key(|(_, &id)| (self.entries[id].footprint, id))
                .expect("non-empty admitted list");
            budget -= self.entries[victim].footprint;
            admitted.remove(pos);
            evicted.push(victim);
        }
        AdmissionPlan { admitted, evicted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilewise::Backend;

    fn session(dims: &[usize], seed: u64) -> Arc<InferenceSession> {
        Arc::new(InferenceSession::synthetic_chain(dims, 0.5, 8, seed, Backend::TileWise))
    }

    #[test]
    fn tiles_cover_the_session_footprint_at_page_granularity() {
        let mut registry = ModelRegistry::with_page_bytes(1024);
        let s = session(&[48, 64, 32], 1);
        let id = registry.register("bert", 1, Arc::clone(&s));
        let entry = registry.get(id);
        assert_eq!(entry.name(), "bert");
        assert_eq!(entry.version(), 1);
        assert_eq!(entry.footprint(), s.resident_bytes() as u64);
        assert_eq!(
            entry.tiles().iter().map(|t| t.bytes).sum::<u64>(),
            entry.footprint(),
            "tiles partition the footprint exactly"
        );
        assert!(entry.tiles().iter().all(|t| t.bytes <= 1024 && t.bytes > 0));
        assert!(entry.tiles().len() >= s.num_layers(), "at least one tile per layer");
        // Keys are (model, layer, tile) and layers match the session.
        let layers: std::collections::BTreeSet<usize> =
            entry.tiles().iter().map(|t| t.key.layer).collect();
        assert_eq!(layers.len(), s.num_layers());
        assert!(entry.tiles().iter().all(|t| t.key.model == id));
    }

    #[test]
    fn resolve_prefers_the_highest_version() {
        let mut registry = ModelRegistry::new();
        let v1 = registry.register("bert", 1, session(&[24, 16], 1));
        let v3 = registry.register("bert", 3, session(&[24, 16], 2));
        let v2 = registry.register("bert", 2, session(&[24, 16], 3));
        let gpt = registry.register("gpt", 1, session(&[24, 16], 4));
        assert_eq!(registry.resolve("bert"), Some(v3));
        assert_eq!(registry.resolve("gpt"), Some(gpt));
        assert_eq!(registry.resolve("llama"), None);
        // Old ids stay valid for in-flight work.
        assert_eq!(registry.get(v1).version(), 1);
        assert_eq!(registry.get(v2).version(), 2);
        assert_eq!(registry.len(), 4);
    }

    #[test]
    fn admission_plan_evicts_superseded_then_largest() {
        let mut registry = ModelRegistry::new();
        let old = registry.register("bert", 1, session(&[48, 64, 32], 1));
        let new = registry.register("bert", 2, session(&[48, 64, 32], 2));
        let big = registry.register("gpt", 1, session(&[96, 128, 96], 3));
        let small = registry.register("tiny", 1, session(&[16, 8], 4));

        // Roomy budget: only the superseded version goes.
        let plan = registry.admission_plan(u64::MAX);
        assert_eq!(plan.admitted, vec![new, big, small]);
        assert_eq!(plan.evicted, vec![old]);

        // Budget below the three live models: the largest goes next.
        let live: u64 = [new, big, small].iter().map(|&id| registry.get(id).footprint()).sum();
        let plan = registry.admission_plan(live - 1);
        assert!(plan.evicted.contains(&big), "largest model evicted: {plan:?}");
        assert!(plan.admitted.contains(&small));

        // Even a zero budget keeps one model serving.
        let plan = registry.admission_plan(0);
        assert_eq!(plan.admitted.len(), 1);
        assert!(registry.oversubscribed(0));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_name_version_rejected() {
        let mut registry = ModelRegistry::new();
        registry.register("bert", 1, session(&[24, 16], 1));
        registry.register("bert", 1, session(&[24, 16], 2));
    }
}
