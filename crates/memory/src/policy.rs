//! Pluggable eviction: which resident tile to drop when VRAM runs out.
//!
//! The cache owns the metadata (recency, frequency, reload price) and the
//! pinning rules; a policy only *ranks* the eviction candidates it is
//! handed.  Pinned tiles are never offered as candidates, so no policy can
//! evict the working set of an in-flight batch.

use crate::cache::TileKey;

/// One evictable (resident, unpinned) tile with the metadata policies rank
/// by.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CandidateTile {
    /// The tile's identity.
    pub key: TileKey,
    /// Resident size in bytes.
    pub bytes: u64,
    /// Simulated seconds to page the tile back in if it is evicted and
    /// later reused (the [`tw_gpu_sim::TransferCost`] price of its bytes).
    pub reload_seconds: f64,
    /// Cache clock at the tile's most recent access.
    pub last_access: u64,
    /// Number of accesses since the tile first became resident.
    pub accesses: u64,
}

/// Ranks eviction candidates.  [`EvictionPolicy::victim`] returns an index
/// into the candidate slice; the cache evicts that tile and asks again if
/// it still needs room.
pub trait EvictionPolicy: Send + std::fmt::Debug {
    /// Short policy name, carried into reports and CLI flags.
    fn name(&self) -> &'static str;

    /// Index of the candidate to evict.  `clock` is the cache's current
    /// access clock (every candidate's `last_access` is `<= clock`).
    ///
    /// # Panics
    /// Implementations may panic on an empty candidate slice; the cache
    /// never passes one.
    fn victim(&self, clock: u64, candidates: &[CandidateTile]) -> usize;
}

/// Evict the least-recently-used tile — the classic recency stack.
/// Ties (same access clock, e.g. tiles paged in by one batch) break toward
/// the lower key so decisions are deterministic.
#[derive(Clone, Copy, Debug, Default)]
pub struct Lru;

impl EvictionPolicy for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn victim(&self, _clock: u64, candidates: &[CandidateTile]) -> usize {
        assert!(!candidates.is_empty(), "no eviction candidates");
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.last_access, c.key))
            .map(|(i, _)| i)
            .expect("non-empty candidates")
    }
}

/// Evict the tile whose loss costs the least: the *expected re-load price*
/// of a tile is its PCIe reload time weighted by how likely it is to be
/// needed again, estimated as its access frequency decayed by idleness
/// (`accesses / (age + 1)`).  The victim is the minimum — a cheap-to-reload
/// tile that has been idle and rarely used loses to a hot or expensive one
/// even if the hot one was touched slightly longer ago.
///
/// Unlike [`Lru`] this is *not* a stack algorithm: growing the cache is not
/// guaranteed to keep every hit (no inclusion property), which is why the
/// monotone-hit-rate property test pins LRU specifically.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostAware;

impl EvictionPolicy for CostAware {
    fn name(&self) -> &'static str {
        "cost-aware"
    }

    fn victim(&self, clock: u64, candidates: &[CandidateTile]) -> usize {
        assert!(!candidates.is_empty(), "no eviction candidates");
        let score = |c: &CandidateTile| {
            let age = clock.saturating_sub(c.last_access);
            c.reload_seconds * c.accesses as f64 / (age + 1) as f64
        };
        candidates
            .iter()
            .enumerate()
            .min_by(|(i, a), (j, b)| {
                score(a)
                    .partial_cmp(&score(b))
                    .expect("finite eviction scores")
                    .then_with(|| a.key.cmp(&b.key))
                    .then(i.cmp(j))
            })
            .map(|(i, _)| i)
            .expect("non-empty candidates")
    }
}

/// The built-in eviction vocabulary, parseable from CLI flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`Lru`].
    Lru,
    /// [`CostAware`].
    CostAware,
}

impl PolicyKind {
    /// Every built-in policy, in the order benchmarks sweep them.
    pub const ALL: [PolicyKind; 2] = [PolicyKind::Lru, PolicyKind::CostAware];

    /// The canonical flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::CostAware => "cost-aware",
        }
    }

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn EvictionPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru),
            PolicyKind::CostAware => Box::new(CostAware),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error for parsing a [`PolicyKind`] from an unknown policy name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyParseError(String);

impl std::fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown eviction policy {:?} (expected lru|cost-aware)", self.0)
    }
}

impl std::error::Error for PolicyParseError {}

impl std::str::FromStr for PolicyKind {
    type Err = PolicyParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        match trimmed.to_lowercase().as_str() {
            "lru" => Ok(PolicyKind::Lru),
            "cost-aware" | "cost" | "costaware" => Ok(PolicyKind::CostAware),
            _ => Err(PolicyParseError(trimmed.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(
        tile: usize,
        reload_seconds: f64,
        last_access: u64,
        accesses: u64,
    ) -> CandidateTile {
        CandidateTile {
            key: TileKey { model: 0, layer: 0, tile },
            bytes: 1024,
            reload_seconds,
            last_access,
            accesses,
        }
    }

    #[test]
    fn lru_takes_the_stalest_tile() {
        let candidates =
            vec![candidate(0, 1.0, 7, 3), candidate(1, 1.0, 2, 9), candidate(2, 1.0, 5, 1)];
        assert_eq!(Lru.victim(10, &candidates), 1);
        // Recency ties break toward the lower key, deterministically.
        let tied = vec![candidate(3, 1.0, 4, 1), candidate(1, 1.0, 4, 1)];
        assert_eq!(Lru.victim(10, &tied), 1);
    }

    #[test]
    fn cost_aware_spares_expensive_and_hot_tiles() {
        // Tile 0: cheap to reload, idle, rarely used -> the obvious victim.
        // Tile 1: expensive reload.  Tile 2: hot (frequent + recent).
        let candidates =
            vec![candidate(0, 0.001, 2, 1), candidate(1, 0.5, 2, 1), candidate(2, 0.001, 9, 50)];
        assert_eq!(CostAware.victim(10, &candidates), 0);
        // With equal reload prices it degenerates to frequency-decayed
        // recency: the idle rarely-used tile still goes first.
        let uniform =
            vec![candidate(0, 0.01, 9, 40), candidate(1, 0.01, 1, 1), candidate(2, 0.01, 8, 10)];
        assert_eq!(CostAware.victim(10, &uniform), 1);
    }

    #[test]
    fn kinds_round_trip_and_build_their_policy() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.as_str().parse::<PolicyKind>().unwrap(), kind);
            assert_eq!(kind.build().name(), kind.as_str());
        }
        assert_eq!(" Cost-Aware ".parse::<PolicyKind>().unwrap(), PolicyKind::CostAware);
        let err = "fifo".parse::<PolicyKind>().unwrap_err();
        assert_eq!(err.to_string(), "unknown eviction policy \"fifo\" (expected lru|cost-aware)");
    }
}
