//! `tw-memory` — VRAM residency management for multi-model serving.
//!
//! Every kernel backend in the workspace reports `resident_bytes`, but
//! until this crate nothing modelled *where* those bytes live: devices had
//! no capacity, weights were eternally resident, and a server could host
//! exactly one model.  `tw-memory` supplies the missing layer between the
//! GPU cost model and the serving runtime:
//!
//! ```text
//!  ModelRegistry ──(tiles per model/layer)──> TileCache ──> MemoryPool
//!   name@version                               │  EvictionPolicy (lru /
//!   InferenceSession                           │   cost-aware), pinning
//!   admission_plan()                           └─ TransferCost (PCIe)
//! ```
//!
//! * [`MemoryPool`] — allocation accounting against one device's
//!   [`tw_gpu_sim::GpuDevice::vram_bytes`] capacity.
//! * [`TileCache`] — pages weight tiles keyed `(model, layer, tile)` and
//!   sized from the kernel's actual resident bytes; misses are priced by
//!   the device's [`tw_gpu_sim::TransferCost`] PCIe profile, eviction is
//!   pluggable behind [`EvictionPolicy`] ([`Lru`] or [`CostAware`]), tiles
//!   referenced by in-flight batches are pinned, and hits / misses / bytes
//!   transferred are counted globally and per model.
//! * [`ModelRegistry`] — named, versioned [`tilewise::InferenceSession`]s
//!   behind stable [`ModelId`]s, with whole-model admit/evict planning for
//!   over-subscribed fleets.
//!
//! The serving tier (`tw-serve`) calls [`TileCache::acquire`] before each
//! batch and adds the returned transfer seconds to the batch's simulated
//! dwell, which is how cold-start latency becomes visible in reports; the
//! cluster tier (`tw-cluster`) routes on [`TileCache::resident_fraction`]
//! so requests prefer replicas where their model is already warm.
//!
//! The crate pins a conservation law end to end: **bytes transferred in ==
//! bytes evicted + bytes resident** — no byte is silently dropped or
//! double-counted, mirroring the id-conservation guarantee of the serving
//! layer.

pub mod cache;
pub mod policy;
pub mod pool;
pub mod registry;

pub use cache::{
    Acquisition, CacheStats, ModelId, ModelPagingStats, TileCache, TileKey, WeightTile,
};
pub use policy::{CandidateTile, CostAware, EvictionPolicy, Lru, PolicyKind, PolicyParseError};
pub use pool::{MemoryPool, OutOfMemory};
pub use registry::{AdmissionPlan, ModelEntry, ModelRegistry};
