//! A per-device allocation budget: bytes against a VRAM capacity.

/// Error from [`MemoryPool::try_alloc`]: the request did not fit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes the allocation asked for.
    pub requested: u64,
    /// Bytes that were free at the time.
    pub free: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "out of device memory: requested {} bytes, {} free", self.requested, self.free)
    }
}

impl std::error::Error for OutOfMemory {}

/// Tracks allocations against one device's VRAM capacity.
///
/// The pool is pure accounting — it holds no buffers, because the workspace
/// simulates the device analytically.  What it guarantees is the invariant
/// every resident-set decision hangs off: `used` is the exact sum of live
/// allocations, and [`MemoryPool::try_alloc`] refuses anything that would
/// exceed `capacity`.  [`MemoryPool::alloc_overcommit`] exists for callers
/// (the tile cache) whose *pinned* working set can transiently exceed the
/// budget: it always succeeds but reports (and counts) the overshoot, the
/// way a real allocator would start thrashing rather than deadlock.
#[derive(Clone, Debug)]
pub struct MemoryPool {
    capacity: u64,
    used: u64,
    peak: u64,
    overcommits: u64,
}

impl MemoryPool {
    /// An empty pool of `capacity` bytes.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "memory pool capacity must be positive");
        Self { capacity, used: 0, peak: 0, overcommits: 0 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free (zero when overcommitted).
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }

    /// High-water mark of [`Self::used`] over the pool's lifetime.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Times an [`Self::alloc_overcommit`] pushed `used` past `capacity`.
    pub fn overcommits(&self) -> u64 {
        self.overcommits
    }

    /// Whether `used` currently exceeds `capacity`.
    pub fn is_overcommitted(&self) -> bool {
        self.used > self.capacity
    }

    /// Allocates `bytes` if they fit, or reports [`OutOfMemory`] without
    /// changing the pool.
    pub fn try_alloc(&mut self, bytes: u64) -> Result<(), OutOfMemory> {
        if bytes > self.free() {
            return Err(OutOfMemory { requested: bytes, free: self.free() });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Allocates `bytes` unconditionally; returns `true` when the pool
    /// stayed within capacity and `false` (counting an overcommit) when the
    /// allocation pushed it over.
    pub fn alloc_overcommit(&mut self, bytes: u64) -> bool {
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        if self.used > self.capacity {
            self.overcommits += 1;
            false
        } else {
            true
        }
    }

    /// Returns `bytes` to the pool.
    ///
    /// # Panics
    /// Panics if `bytes` exceeds the currently allocated total — freeing
    /// memory that was never allocated is an accounting bug, not a runtime
    /// condition.
    pub fn release(&mut self, bytes: u64) {
        assert!(bytes <= self.used, "released {bytes} bytes but only {} are allocated", self.used);
        self.used -= bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_round_trip_tracks_used_and_peak() {
        let mut pool = MemoryPool::new(100);
        assert_eq!(pool.free(), 100);
        pool.try_alloc(60).unwrap();
        pool.try_alloc(40).unwrap();
        assert_eq!(pool.used(), 100);
        assert_eq!(pool.free(), 0);
        pool.release(60);
        assert_eq!(pool.used(), 40);
        assert_eq!(pool.peak(), 100);
        assert!(!pool.is_overcommitted());
        assert_eq!(pool.overcommits(), 0);
    }

    #[test]
    fn try_alloc_refuses_without_mutating() {
        let mut pool = MemoryPool::new(64);
        pool.try_alloc(60).unwrap();
        let err = pool.try_alloc(8).unwrap_err();
        assert_eq!(err, OutOfMemory { requested: 8, free: 4 });
        assert!(err.to_string().contains("requested 8"));
        assert_eq!(pool.used(), 60, "failed alloc must not change the pool");
    }

    #[test]
    fn overcommit_always_succeeds_but_is_counted() {
        let mut pool = MemoryPool::new(64);
        assert!(pool.alloc_overcommit(60));
        assert!(!pool.alloc_overcommit(10));
        assert!(pool.is_overcommitted());
        assert_eq!(pool.used(), 70);
        assert_eq!(pool.free(), 0);
        assert_eq!(pool.overcommits(), 1);
        pool.release(10);
        assert!(!pool.is_overcommitted());
    }

    #[test]
    #[should_panic(expected = "only 10 are allocated")]
    fn over_release_is_an_accounting_bug() {
        let mut pool = MemoryPool::new(64);
        pool.try_alloc(10).unwrap();
        pool.release(11);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = MemoryPool::new(0);
    }
}
