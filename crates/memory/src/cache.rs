//! The tile cache: which weight tiles are in VRAM, and what paging the
//! missing ones costs.
//!
//! A serving worker about to execute a batch of model `m` calls
//! [`TileCache::acquire`] with `m`'s tiles.  Tiles already resident are
//! hits; the rest are paged in over the device's
//! [`tw_gpu_sim::TransferCost`] profile, evicting unpinned tiles (chosen by
//! the configured [`EvictionPolicy`]) until the new bytes fit.  The
//! returned [`Acquisition`] carries the simulated transfer seconds — the
//! batch's *cold-miss* dwell component.  Every acquired tile is pinned
//! until the matching [`TileCache::release`], so a concurrent batch can
//! never evict weights mid-execution.
//!
//! # Accounting invariants
//!
//! The cache maintains, and its tests pin, the conservation law every
//! report builds on: **bytes transferred in == bytes evicted + bytes
//! resident** — a byte paged over PCIe is either still in VRAM or was
//! evicted, never silently dropped or double-counted.  Pinned tiles are
//! never eviction candidates.  When the *pinned* working set alone exceeds
//! capacity the pool overcommits (recorded, never a deadlock) — size VRAM
//! for at least one model's footprint per concurrent worker to avoid it.

use crate::policy::{CandidateTile, EvictionPolicy};
use crate::pool::MemoryPool;
use std::collections::{BTreeMap, HashMap};
use tw_gpu_sim::TransferCost;

/// Index of a model in its [`crate::ModelRegistry`] — the id requests carry.
pub type ModelId = usize;

/// Identity of one pageable weight tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileKey {
    /// Owning model.
    pub model: ModelId,
    /// Layer within the model.
    pub layer: usize,
    /// Tile within the layer.
    pub tile: usize,
}

impl std::fmt::Display for TileKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}/l{}/t{}", self.model, self.layer, self.tile)
    }
}

/// One pageable tile: its key and its resident size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightTile {
    /// The tile's identity.
    pub key: TileKey,
    /// Bytes the tile occupies when resident.
    pub bytes: u64,
}

/// The outcome of one [`TileCache::acquire`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Acquisition {
    /// Tiles that were already resident.
    pub hits: usize,
    /// Tiles that had to be paged in.
    pub misses: usize,
    /// Bytes moved host→device for the misses.
    pub bytes_transferred: u64,
    /// Simulated seconds the transfer took (zero on an all-hit acquire) —
    /// the batch's cold-miss dwell component.
    pub transfer_seconds: f64,
}

impl Acquisition {
    /// Whether any tile had to be paged in.
    pub fn is_cold(&self) -> bool {
        self.misses > 0
    }
}

/// Lifetime counters of one cache (see also [`ModelPagingStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Tile lookups that found the tile resident.
    pub hits: u64,
    /// Tile lookups that had to page the tile in.
    pub misses: u64,
    /// Total bytes moved host→device.
    pub bytes_transferred: u64,
    /// Total bytes evicted from VRAM.
    pub bytes_evicted: u64,
    /// Number of tiles evicted.
    pub evictions: u64,
    /// Total simulated transfer seconds charged.
    pub transfer_seconds: f64,
}

impl CacheStats {
    /// Fraction of lookups that hit (1.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Per-model slice of the cache counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ModelPagingStats {
    /// Tile hits for this model.
    pub hits: u64,
    /// Tile misses for this model.
    pub misses: u64,
    /// Bytes paged in for this model.
    pub bytes_transferred: u64,
    /// Simulated transfer seconds charged to this model's batches.
    pub transfer_seconds: f64,
}

impl ModelPagingStats {
    /// Fraction of this model's lookups that hit (1.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

#[derive(Clone, Copy, Debug)]
struct Resident {
    bytes: u64,
    last_access: u64,
    accesses: u64,
    pins: u32,
}

/// The VRAM residency manager: a [`MemoryPool`] of tiles with pluggable
/// eviction, pinning and full paging accounting.
#[derive(Debug)]
pub struct TileCache {
    pool: MemoryPool,
    transfer: TransferCost,
    policy: Box<dyn EvictionPolicy>,
    resident: HashMap<TileKey, Resident>,
    clock: u64,
    stats: CacheStats,
    per_model: BTreeMap<ModelId, ModelPagingStats>,
}

impl TileCache {
    /// A cache allocating from `pool` and pricing misses with `transfer`,
    /// evicting by `policy`.
    pub fn new(pool: MemoryPool, transfer: TransferCost, policy: Box<dyn EvictionPolicy>) -> Self {
        Self {
            pool,
            transfer,
            policy,
            resident: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
            per_model: BTreeMap::new(),
        }
    }

    /// VRAM capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.pool.capacity()
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.pool.used()
    }

    /// Number of resident tiles.
    pub fn resident_tiles(&self) -> usize {
        self.resident.len()
    }

    /// Times the pinned working set forced the pool past capacity.
    pub fn overcommits(&self) -> u64 {
        self.pool.overcommits()
    }

    /// The configured eviction policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Whether `key` is resident right now.
    pub fn contains(&self, key: TileKey) -> bool {
        self.resident.contains_key(&key)
    }

    /// Fraction of `tiles`' bytes currently resident (1.0 for an empty
    /// slice) — the *warmth* probe residency-aware routing ranks replicas
    /// by.
    pub fn resident_fraction(&self, tiles: &[WeightTile]) -> f64 {
        let total: u64 = tiles.iter().map(|t| t.bytes).sum();
        if total == 0 {
            return 1.0;
        }
        let warm: u64 =
            tiles.iter().filter(|t| self.resident.contains_key(&t.key)).map(|t| t.bytes).sum();
        warm as f64 / total as f64
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Per-model counters, for every model that was ever looked up.
    pub fn model_stats(&self) -> &BTreeMap<ModelId, ModelPagingStats> {
        &self.per_model
    }

    /// Makes every tile in `tiles` resident and pins it (pin counts stack
    /// across concurrent batches), evicting unpinned tiles as needed, and
    /// returns the hit/miss/transfer accounting.  Call
    /// [`TileCache::release`] with the same tiles when the batch completes.
    ///
    /// The whole acquire is one atomic step under the caller's lock: either
    /// all tiles end up resident and pinned, with misses priced as a single
    /// batched copy (one transfer latency, however many tiles missed).
    pub fn acquire(&mut self, tiles: &[WeightTile]) -> Acquisition {
        self.clock += 1;
        let mut outcome = Acquisition::default();
        let mut missed_by_model: BTreeMap<ModelId, u64> = BTreeMap::new();
        for tile in tiles {
            if let Some(entry) = self.resident.get_mut(&tile.key) {
                entry.last_access = self.clock;
                entry.accesses += 1;
                entry.pins += 1;
                outcome.hits += 1;
                self.stats.hits += 1;
                self.per_model.entry(tile.key.model).or_default().hits += 1;
                continue;
            }
            self.make_room(tile.bytes);
            self.pool.alloc_overcommit(tile.bytes);
            self.resident.insert(
                tile.key,
                Resident { bytes: tile.bytes, last_access: self.clock, accesses: 1, pins: 1 },
            );
            outcome.misses += 1;
            outcome.bytes_transferred += tile.bytes;
            self.stats.misses += 1;
            self.stats.bytes_transferred += tile.bytes;
            let per_model = self.per_model.entry(tile.key.model).or_default();
            per_model.misses += 1;
            per_model.bytes_transferred += tile.bytes;
            *missed_by_model.entry(tile.key.model).or_default() += tile.bytes;
        }
        // Price the misses as one batched copy per model (in practice an
        // acquire is single-model): one transfer latency, then bandwidth.
        for (model, bytes) in missed_by_model {
            let seconds = self.transfer.seconds(bytes);
            outcome.transfer_seconds += seconds;
            self.stats.transfer_seconds += seconds;
            self.per_model.entry(model).or_default().transfer_seconds += seconds;
        }
        outcome
    }

    /// Unpins tiles previously acquired.  If an earlier acquire had to
    /// overcommit the pool (pinned working sets of concurrent batches
    /// exceeding capacity), the overshoot is repaid here: newly-unpinned
    /// tiles are evicted until the pool is back within its budget, so an
    /// overcommit is a transient spike, never a permanent capacity raise.
    ///
    /// # Panics
    /// Panics if a tile is not resident or not pinned — a release without a
    /// matching acquire is a caller bug that would silently corrupt the
    /// pinning discipline.
    pub fn release(&mut self, tiles: &[WeightTile]) {
        for tile in tiles {
            let entry = self
                .resident
                .get_mut(&tile.key)
                .unwrap_or_else(|| panic!("release of non-resident tile {}", tile.key));
            assert!(entry.pins > 0, "release of unpinned tile {}", tile.key);
            entry.pins -= 1;
        }
        while self.pool.is_overcommitted() {
            if !self.evict_one_unpinned() {
                break;
            }
        }
    }

    /// Evicts every unpinned tile of `model` (a whole-model eviction, the
    /// registry's admission lever).  Returns the bytes freed.
    pub fn evict_model(&mut self, model: ModelId) -> u64 {
        let victims: Vec<TileKey> = self
            .resident
            .iter()
            .filter(|(key, entry)| key.model == model && entry.pins == 0)
            .map(|(key, _)| *key)
            .collect();
        let mut freed = 0;
        for key in victims {
            freed += self.evict(key);
        }
        freed
    }

    /// Evicts unpinned tiles (policy-chosen) until `needed` bytes fit or no
    /// candidate remains (everything pinned: the pool will overcommit).
    fn make_room(&mut self, needed: u64) {
        while self.pool.free() < needed {
            if !self.evict_one_unpinned() {
                return;
            }
        }
    }

    /// Evicts the policy's pick among the unpinned resident tiles; `false`
    /// when none exists.
    fn evict_one_unpinned(&mut self) -> bool {
        let candidates: Vec<CandidateTile> = self
            .resident
            .iter()
            .filter(|(_, entry)| entry.pins == 0)
            .map(|(key, entry)| CandidateTile {
                key: *key,
                bytes: entry.bytes,
                reload_seconds: self.transfer.seconds(entry.bytes),
                last_access: entry.last_access,
                accesses: entry.accesses,
            })
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let victim = self.policy.victim(self.clock, &candidates);
        assert!(victim < candidates.len(), "policy picked candidate out of range");
        self.evict(candidates[victim].key);
        true
    }

    fn evict(&mut self, key: TileKey) -> u64 {
        let entry = self.resident.remove(&key).expect("evicting a non-resident tile");
        debug_assert_eq!(entry.pins, 0, "evicting a pinned tile");
        self.pool.release(entry.bytes);
        self.stats.evictions += 1;
        self.stats.bytes_evicted += entry.bytes;
        entry.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Lru, PolicyKind};

    fn tile(model: ModelId, layer: usize, tile: usize, bytes: u64) -> WeightTile {
        WeightTile { key: TileKey { model, layer, tile }, bytes }
    }

    fn cache(capacity: u64) -> TileCache {
        TileCache::new(MemoryPool::new(capacity), TransferCost::new(1.0e9, 10.0e-6), Box::new(Lru))
    }

    #[test]
    fn cold_then_warm_acquires_flip_miss_to_hit() {
        let mut c = cache(1 << 20);
        let tiles = vec![tile(0, 0, 0, 4096), tile(0, 0, 1, 4096), tile(0, 1, 0, 8192)];
        let cold = c.acquire(&tiles);
        assert_eq!((cold.hits, cold.misses), (0, 3));
        assert_eq!(cold.bytes_transferred, 16384);
        assert!(cold.is_cold());
        // One batched copy: a single latency plus the bytes.
        let expected = 10.0e-6 + 16384.0 / 1.0e9;
        assert!((cold.transfer_seconds - expected).abs() < 1e-12);
        c.release(&tiles);
        let warm = c.acquire(&tiles);
        assert_eq!((warm.hits, warm.misses), (3, 0));
        assert_eq!(warm.transfer_seconds, 0.0);
        assert!(!warm.is_cold());
        c.release(&tiles);
        assert_eq!(c.resident_bytes(), 16384);
        assert_eq!(c.stats().hit_rate(), 0.5);
        assert_eq!(c.resident_fraction(&tiles), 1.0);
    }

    #[test]
    fn eviction_makes_room_and_conserves_bytes() {
        let mut c = cache(10_000);
        let a = vec![tile(0, 0, 0, 6000)];
        let b = vec![tile(1, 0, 0, 6000)];
        c.acquire(&a);
        c.release(&a);
        // b does not fit next to a: a must be evicted.
        c.acquire(&b);
        c.release(&b);
        assert!(!c.contains(a[0].key));
        assert!(c.contains(b[0].key));
        let stats = c.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.bytes_evicted, 6000);
        assert_eq!(stats.bytes_transferred, stats.bytes_evicted + c.resident_bytes());
        assert_eq!(c.resident_fraction(&a), 0.0);
        assert_eq!(c.resident_fraction(&b), 1.0);
    }

    #[test]
    fn pinned_tiles_survive_pressure_via_overcommit_and_repay_on_release() {
        let mut c = cache(10_000);
        let a = vec![tile(0, 0, 0, 6000)];
        let b = vec![tile(1, 0, 0, 6000)];
        c.acquire(&a);
        // a is still pinned: acquiring b cannot evict it, so the pool
        // overcommits rather than deadlocking or corrupting the batch.
        c.acquire(&b);
        assert!(c.contains(a[0].key));
        assert!(c.contains(b[0].key));
        assert_eq!(c.resident_bytes(), 12_000);
        assert_eq!(c.overcommits(), 1);
        // Releasing repays the overshoot: the freshly unpinned tile is
        // evicted until the pool is back within budget — an overcommit is
        // a spike, not a permanent capacity raise.
        c.release(&a);
        assert!(!c.contains(a[0].key), "unpinned a must be evicted to repay the overcommit");
        assert!(c.contains(b[0].key), "b is still pinned");
        assert_eq!(c.resident_bytes(), 6000);
        assert_eq!(c.stats().evictions, 1);
        c.release(&b);
        assert!(c.contains(b[0].key), "within budget, release evicts nothing");
        let stats = c.stats();
        assert_eq!(stats.bytes_transferred, stats.bytes_evicted + c.resident_bytes());
    }

    #[test]
    fn pin_counts_stack_across_concurrent_acquires() {
        let mut c = cache(10_000);
        let shared = vec![tile(0, 0, 0, 4000)];
        c.acquire(&shared);
        c.acquire(&shared);
        c.release(&shared);
        // Still pinned once: pressure must not evict it.
        c.acquire(&[tile(1, 0, 0, 9000)]);
        assert!(c.contains(shared[0].key));
        c.release(&shared);
    }

    #[test]
    fn whole_model_eviction_frees_only_that_model() {
        let mut c = cache(1 << 20);
        let m0 = vec![tile(0, 0, 0, 1000), tile(0, 1, 0, 2000)];
        let m1 = vec![tile(1, 0, 0, 4000)];
        c.acquire(&m0);
        c.release(&m0);
        c.acquire(&m1);
        c.release(&m1);
        assert_eq!(c.evict_model(0), 3000);
        assert!(!c.contains(m0[0].key));
        assert!(c.contains(m1[0].key));
        assert_eq!(c.resident_bytes(), 4000);
    }

    #[test]
    fn per_model_stats_split_the_traffic() {
        let mut c = cache(1 << 20);
        let m0 = vec![tile(0, 0, 0, 1000)];
        let m1 = vec![tile(1, 0, 0, 2000)];
        c.acquire(&m0);
        c.release(&m0);
        c.acquire(&m0);
        c.release(&m0);
        c.acquire(&m1);
        c.release(&m1);
        let stats = c.model_stats();
        assert_eq!(stats[&0].hits, 1);
        assert_eq!(stats[&0].misses, 1);
        assert_eq!(stats[&0].bytes_transferred, 1000);
        assert_eq!(stats[&0].hit_rate(), 0.5);
        assert_eq!(stats[&1].misses, 1);
        assert_eq!(stats[&1].hit_rate(), 0.0);
        assert!(stats[&0].transfer_seconds > 0.0);
    }

    #[test]
    fn policy_kinds_plug_in() {
        for kind in PolicyKind::ALL {
            let c =
                TileCache::new(MemoryPool::new(1024), TransferCost::new(1.0e9, 0.0), kind.build());
            assert_eq!(c.policy_name(), kind.as_str());
        }
    }

    #[test]
    #[should_panic(expected = "release of non-resident tile")]
    fn release_without_acquire_is_a_bug() {
        let mut c = cache(1024);
        c.release(&[tile(0, 0, 0, 16)]);
    }
}
