//! Serving runtime configuration.

use std::time::Duration;
use tw_memory::{ModelRegistry, PolicyKind};
use tw_models::TrafficClass;

/// How the worker pool accounts for simulated GPU time.
///
/// The workspace models the V100 analytically (`tw-gpu-sim`); a serving
/// worker therefore executes the batch's functional math on the CPU and then
/// *dwells* for the batch's priced device time, exactly as a real inference
/// worker blocks on an accelerator. The dwell is what dynamic batching and
/// worker pools exist to overlap, so it is on by default in benchmarks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuDwell {
    /// Wall-clock seconds per simulated device second.  `1.0` replays the
    /// modelled V100 in real time; larger values stretch device time so the
    /// serving dynamics (queueing, batching, pool overlap) dominate the
    /// benchmark instead of CPU kernel time.
    pub time_scale: f64,
}

impl GpuDwell {
    /// Real-time replay of the modelled device.
    pub fn realtime() -> Self {
        Self { time_scale: 1.0 }
    }
}

/// One request class the server accepts.  Classes are configured as an
/// ordered list on [`ServeConfig::classes`]; the *index* is the class id and
/// its priority — index 0 is served first (strict priority across the
/// queue's lanes).
#[derive(Clone, Debug, PartialEq)]
pub struct ClassPolicy {
    /// Class name, carried into per-class report rows.
    pub name: String,
    /// Latency SLO measured from submission; `None` = best effort.  Drives
    /// the request deadline, the batcher's early close, goodput accounting,
    /// and (when admission control is active) deadline-infeasibility sheds.
    pub deadline: Option<Duration>,
}

impl ClassPolicy {
    /// A best-effort class.
    pub fn best_effort(name: impl Into<String>) -> Self {
        Self { name: name.into(), deadline: None }
    }

    /// A latency-sensitive class due `deadline` after submission.
    pub fn with_deadline(name: impl Into<String>, deadline: Duration) -> Self {
        Self { name: name.into(), deadline: Some(deadline) }
    }

    /// Class policies mirroring a `tw-models` traffic mix, in mix order
    /// (traffic class order is priority order).
    pub fn from_traffic(classes: &[TrafficClass]) -> Vec<Self> {
        classes.iter().map(|c| Self { name: c.name.clone(), deadline: c.deadline }).collect()
    }
}

/// VRAM residency management: when set on [`ServeConfig::memory`], the
/// server tracks which weight tiles are on-device through a
/// `tw-memory` [`tw_memory::TileCache`], and every batch whose model is not
/// fully resident pays the PCIe transfer time as an extra *cold-miss* dwell
/// component.  `None` (the default) models the legacy assumption that all
/// weights are eternally resident.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryConfig {
    /// VRAM capacity override in bytes; `None` uses the serving device's
    /// [`tw_gpu_sim::GpuDevice::vram_bytes`] profile.  Sizing this *below*
    /// the hosted models' combined footprint is how multi-model paging
    /// scenarios are provoked deliberately.
    pub vram_bytes: Option<u64>,
    /// Paging granularity for tiles derived at [`crate::Server::start`]
    /// (callers of `start_registry` choose theirs when building the
    /// registry).
    pub page_bytes: u64,
    /// Which resident tile to evict under pressure.
    pub policy: PolicyKind,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self {
            vram_bytes: None,
            page_bytes: ModelRegistry::DEFAULT_PAGE_BYTES,
            policy: PolicyKind::Lru,
        }
    }
}

/// SLO-aware admission control: when to *shed* a request at submission
/// instead of queueing it.  All knobs default to `None`/off; with every
/// knob off the server falls back to pure blocking backpressure (the
/// closed-loop discipline).  With any knob active, submission never blocks:
/// requests that cannot be admitted are refused with a [`crate::ShedRecord`]
/// — the open-loop discipline, where blocking the submitter would distort
/// the arrival process.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AdmissionConfig {
    /// Shed when total queue depth has reached this many requests (must be
    /// at most the queue capacity to be meaningful).
    pub max_queue_depth: Option<usize>,
    /// Shed when the predicted queue wait (depth, batch size, worker count
    /// and the cost model's batch dwell) exceeds this budget.
    pub max_predicted_wait: Option<Duration>,
    /// Shed a request whose class deadline cannot be met even if admitted
    /// now (predicted wait + predicted batch execution > SLO) — completing
    /// it late would burn device time without earning goodput.
    pub shed_hopeless: bool,
}

impl AdmissionConfig {
    /// Whether any admission policy is active (switches submission from
    /// blocking backpressure to non-blocking shed).
    pub fn is_active(&self) -> bool {
        self.max_queue_depth.is_some() || self.max_predicted_wait.is_some() || self.shed_hopeless
    }
}

/// Configuration of a [`crate::Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Largest number of requests fused into one batch.
    pub max_batch_size: usize,
    /// Longest a batch head waits for followers before the batch is flushed
    /// (deadline-pressed batches may flush earlier; see
    /// [`crate::SloBatcher`]).
    pub max_batch_wait: Duration,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Bound on queued requests; without admission control submitters block
    /// when the queue is full (backpressure).
    pub queue_capacity: usize,
    /// Simulated device dwell per batch; `None` serves CPU-only.
    pub gpu_dwell: Option<GpuDwell>,
    /// Request classes in priority order (index = class id, 0 served
    /// first).  The default is one best-effort class, which reproduces the
    /// plain FIFO server.
    pub classes: Vec<ClassPolicy>,
    /// SLO-aware admission control; default off (pure backpressure).
    pub admission: AdmissionConfig,
    /// VRAM residency management; default off (weights eternally
    /// resident, no paging dwell).
    pub memory: Option<MemoryConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch_size: 8,
            max_batch_wait: Duration::from_millis(2),
            workers: 2,
            queue_capacity: 1024,
            gpu_dwell: None,
            classes: vec![ClassPolicy::best_effort("default")],
            admission: AdmissionConfig::default(),
            memory: None,
        }
    }
}

impl ServeConfig {
    /// Panics on nonsensical settings; called by [`crate::Server::start`].
    pub fn validate(&self) {
        assert!(self.max_batch_size > 0, "max batch size must be positive");
        assert!(self.workers > 0, "need at least one worker");
        assert!(
            self.queue_capacity >= self.max_batch_size,
            "queue capacity must hold at least one full batch"
        );
        if let Some(dwell) = &self.gpu_dwell {
            assert!(
                dwell.time_scale.is_finite() && dwell.time_scale >= 0.0,
                "GPU dwell time scale must be finite and non-negative"
            );
        }
        assert!(!self.classes.is_empty(), "need at least one request class");
        if let Some(depth) = self.admission.max_queue_depth {
            assert!(
                depth <= self.queue_capacity,
                "shed depth beyond queue capacity would never trigger"
            );
        }
        if let Some(memory) = &self.memory {
            assert!(memory.page_bytes > 0, "memory page size must be positive");
            if let Some(vram) = memory.vram_bytes {
                assert!(vram > 0, "VRAM capacity override must be positive");
            }
        }
    }

    /// Builder-style override of the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder-style override of the batch bounds.
    pub fn with_batching(mut self, max_batch_size: usize, max_batch_wait: Duration) -> Self {
        self.max_batch_size = max_batch_size;
        self.max_batch_wait = max_batch_wait;
        self
    }

    /// Builder-style override of the simulated device dwell.
    pub fn with_gpu_dwell(mut self, dwell: GpuDwell) -> Self {
        self.gpu_dwell = Some(dwell);
        self
    }

    /// Builder-style override of the class list (priority order).
    pub fn with_classes(mut self, classes: Vec<ClassPolicy>) -> Self {
        self.classes = classes;
        self
    }

    /// Builder-style class list mirroring a traffic mix.
    pub fn with_traffic_classes(self, classes: &[TrafficClass]) -> Self {
        self.with_classes(ClassPolicy::from_traffic(classes))
    }

    /// Builder-style override of the admission policy.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Builder-style activation of VRAM residency management.
    pub fn with_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = Some(memory);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_single_class_fifo() {
        let cfg = ServeConfig::default();
        cfg.validate();
        assert_eq!(cfg.classes.len(), 1);
        assert!(!cfg.admission.is_active());
    }

    #[test]
    fn builders_compose() {
        let cfg = ServeConfig::default()
            .with_workers(4)
            .with_batching(16, Duration::from_millis(5))
            .with_gpu_dwell(GpuDwell::realtime())
            .with_classes(vec![
                ClassPolicy::with_deadline("interactive", Duration::from_millis(40)),
                ClassPolicy::best_effort("batch"),
            ])
            .with_admission(AdmissionConfig { max_queue_depth: Some(256), ..Default::default() });
        cfg.validate();
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.max_batch_size, 16);
        assert_eq!(cfg.gpu_dwell, Some(GpuDwell { time_scale: 1.0 }));
        assert_eq!(cfg.classes[0].deadline, Some(Duration::from_millis(40)));
        assert!(cfg.admission.is_active());
    }

    #[test]
    fn traffic_classes_map_to_policies() {
        let mix = vec![
            TrafficClass::interactive(0.3, Duration::from_millis(50)),
            TrafficClass::batch(0.7),
        ];
        let cfg = ServeConfig::default().with_traffic_classes(&mix);
        assert_eq!(cfg.classes.len(), 2);
        assert_eq!(cfg.classes[0].name, "interactive");
        assert_eq!(cfg.classes[0].deadline, Some(Duration::from_millis(50)));
        assert_eq!(cfg.classes[1].name, "batch");
        assert_eq!(cfg.classes[1].deadline, None);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        ServeConfig::default().with_workers(0).validate();
    }

    #[test]
    #[should_panic(expected = "queue capacity")]
    fn queue_smaller_than_batch_rejected() {
        let cfg = ServeConfig { queue_capacity: 4, max_batch_size: 8, ..ServeConfig::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "at least one request class")]
    fn empty_class_list_rejected() {
        ServeConfig { classes: Vec::new(), ..ServeConfig::default() }.validate();
    }

    #[test]
    fn memory_config_defaults_and_builder() {
        let cfg = ServeConfig::default();
        assert!(cfg.memory.is_none(), "residency management is opt-in");
        let cfg =
            cfg.with_memory(MemoryConfig { vram_bytes: Some(1 << 20), ..MemoryConfig::default() });
        cfg.validate();
        let memory = cfg.memory.unwrap();
        assert_eq!(memory.vram_bytes, Some(1 << 20));
        assert_eq!(memory.page_bytes, tw_memory::ModelRegistry::DEFAULT_PAGE_BYTES);
        assert_eq!(memory.policy, PolicyKind::Lru);
    }

    #[test]
    #[should_panic(expected = "page size must be positive")]
    fn zero_page_size_rejected() {
        ServeConfig::default()
            .with_memory(MemoryConfig { page_bytes: 0, ..MemoryConfig::default() })
            .validate();
    }

    #[test]
    #[should_panic(expected = "shed depth")]
    fn shed_depth_beyond_capacity_rejected() {
        let cfg = ServeConfig {
            queue_capacity: 64,
            admission: AdmissionConfig { max_queue_depth: Some(128), ..Default::default() },
            ..ServeConfig::default()
        };
        cfg.validate();
    }
}
