//! Serving runtime configuration.

use std::time::Duration;

/// How the worker pool accounts for simulated GPU time.
///
/// The workspace models the V100 analytically (`tw-gpu-sim`); a serving
/// worker therefore executes the batch's functional math on the CPU and then
/// *dwells* for the batch's priced device time, exactly as a real inference
/// worker blocks on an accelerator. The dwell is what dynamic batching and
/// worker pools exist to overlap, so it is on by default in benchmarks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuDwell {
    /// Wall-clock seconds per simulated device second.  `1.0` replays the
    /// modelled V100 in real time; larger values stretch device time so the
    /// serving dynamics (queueing, batching, pool overlap) dominate the
    /// benchmark instead of CPU kernel time.
    pub time_scale: f64,
}

impl GpuDwell {
    /// Real-time replay of the modelled device.
    pub fn realtime() -> Self {
        Self { time_scale: 1.0 }
    }
}

/// Configuration of a [`crate::Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Largest number of requests fused into one batch.
    pub max_batch_size: usize,
    /// Longest a batch head waits for followers before the batch is flushed.
    pub max_batch_wait: Duration,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Bound on queued requests; submitters block when the queue is full
    /// (backpressure).
    pub queue_capacity: usize,
    /// Simulated device dwell per batch; `None` serves CPU-only.
    pub gpu_dwell: Option<GpuDwell>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch_size: 8,
            max_batch_wait: Duration::from_millis(2),
            workers: 2,
            queue_capacity: 1024,
            gpu_dwell: None,
        }
    }
}

impl ServeConfig {
    /// Panics on nonsensical settings; called by [`crate::Server::start`].
    pub fn validate(&self) {
        assert!(self.max_batch_size > 0, "max batch size must be positive");
        assert!(self.workers > 0, "need at least one worker");
        assert!(
            self.queue_capacity >= self.max_batch_size,
            "queue capacity must hold at least one full batch"
        );
        if let Some(dwell) = &self.gpu_dwell {
            assert!(
                dwell.time_scale.is_finite() && dwell.time_scale >= 0.0,
                "GPU dwell time scale must be finite and non-negative"
            );
        }
    }

    /// Builder-style override of the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder-style override of the batch bounds.
    pub fn with_batching(mut self, max_batch_size: usize, max_batch_wait: Duration) -> Self {
        self.max_batch_size = max_batch_size;
        self.max_batch_wait = max_batch_wait;
        self
    }

    /// Builder-style override of the simulated device dwell.
    pub fn with_gpu_dwell(mut self, dwell: GpuDwell) -> Self {
        self.gpu_dwell = Some(dwell);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ServeConfig::default().validate();
    }

    #[test]
    fn builders_compose() {
        let cfg = ServeConfig::default()
            .with_workers(4)
            .with_batching(16, Duration::from_millis(5))
            .with_gpu_dwell(GpuDwell::realtime());
        cfg.validate();
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.max_batch_size, 16);
        assert_eq!(cfg.gpu_dwell, Some(GpuDwell { time_scale: 1.0 }));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        ServeConfig::default().with_workers(0).validate();
    }

    #[test]
    #[should_panic(expected = "queue capacity")]
    fn queue_smaller_than_batch_rejected() {
        let cfg = ServeConfig { queue_capacity: 4, max_batch_size: 8, ..ServeConfig::default() };
        cfg.validate();
    }
}
