//! The worker pool: threads that turn batches into responses.
//!
//! Each worker loops on the shared [`SloBatcher`], fuses the batch's
//! payloads into one activation matrix (via `tw_tensor::batch`), runs the
//! session's batched forward pass on the CPU — each layer through whatever
//! [`tilewise::KernelBackend`] its plan bound, heterogeneous plans included
//! — then, when configured, dwells for the batch's simulated device time
//! from the GPU cost model, exactly as a real worker blocks on an
//! accelerator.  The dwell is why a pool helps even on a small host: while
//! one worker waits on the "device", another batches and launches.
//!
//! Completion stamps each response with its request's class and — for SLO
//! classes — whether it beat its deadline, feeding the per-class goodput
//! accounting in [`crate::ServeReport`].

use crate::batcher::SloBatcher;
use crate::config::ServeConfig;
use crate::request::InferenceResponse;
use crate::stats::WorkerStats;
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tilewise::{DwellModel, InferenceSession};
use tw_tensor::batch::stack_rows;

/// Handle over the pool's threads; joined at shutdown.
pub struct WorkerPool {
    handles: Vec<JoinHandle<WorkerStats>>,
}

impl WorkerPool {
    /// Spawns `config.workers` threads draining `batcher` into `responses`,
    /// pricing each batch's simulated device time from `dwell_model` (the
    /// same memoized table admission control and the batcher use).
    ///
    /// Worker threads exit when the batcher's queue is closed and drained;
    /// they stop sending silently if the response receiver is dropped early.
    pub fn spawn(
        session: Arc<InferenceSession>,
        batcher: Arc<SloBatcher>,
        config: &ServeConfig,
        dwell_model: &DwellModel,
        responses: Sender<InferenceResponse>,
    ) -> Self {
        let handles = (0..config.workers)
            .map(|worker| {
                let session = Arc::clone(&session);
                let batcher = Arc::clone(&batcher);
                let responses = responses.clone();
                let dwell = config.gpu_dwell;
                let dwell_model = dwell_model.clone();
                std::thread::Builder::new()
                    .name(format!("tw-serve-worker-{worker}"))
                    .spawn(move || {
                        run_worker(worker, &session, &batcher, dwell, &dwell_model, &responses)
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self { handles }
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the pool has no workers (never true for a spawned pool).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to finish and returns their counters.
    pub fn join(self) -> Vec<WorkerStats> {
        self.handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    }
}

fn run_worker(
    worker: usize,
    session: &InferenceSession,
    batcher: &SloBatcher,
    dwell: Option<crate::config::GpuDwell>,
    dwell_model: &DwellModel,
    responses: &Sender<InferenceResponse>,
) -> WorkerStats {
    let mut stats = WorkerStats { worker, ..WorkerStats::default() };

    while let Some(batch) = batcher.next_batch() {
        let cpu_start = Instant::now();
        let rows: Vec<&[f32]> = batch.iter().map(|r| r.payload.as_slice()).collect();
        let inputs = stack_rows(&rows);
        let outputs = session.forward_batch(&inputs);
        stats.cpu_busy += cpu_start.elapsed();

        // The simulated device time depends only on batch size; the shared
        // table keeps the planner out of the hot loop.
        let sim_s = dwell_model.seconds_for(batch.len());
        stats.sim_gpu_s += sim_s;
        if let Some(dwell) = dwell {
            let wait = sim_s * dwell.time_scale;
            if wait > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(wait));
            }
        }

        stats.batches += 1;
        stats.requests += batch.len();
        let batch_size = batch.len();
        let completed_at = Instant::now();
        for (i, request) in batch.into_iter().enumerate() {
            let response = InferenceResponse {
                id: request.id,
                output: outputs.row(i).to_vec(),
                latency: completed_at.saturating_duration_since(request.submitted_at),
                batch_size,
                worker,
                class: request.class,
                deadline_met: request.deadline.map(|d| completed_at <= d),
            };
            if responses.send(response).is_err() {
                // Receiver dropped: the server is being torn down early;
                // keep draining so submitters are not wedged on a full queue.
                break;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::PriorityQueue;
    use crate::request::InferenceRequest;
    use std::collections::HashMap;
    use std::sync::mpsc;
    use tilewise::Backend;

    fn tiny_session() -> Arc<InferenceSession> {
        Arc::new(InferenceSession::synthetic_chain(&[24, 32, 16], 0.5, 8, 3, Backend::TileWise))
    }

    fn spawn_pool(
        workers: usize,
        capacity: usize,
    ) -> (Arc<SloBatcher>, WorkerPool, mpsc::Receiver<InferenceResponse>) {
        let session = tiny_session();
        let queue = Arc::new(PriorityQueue::new(2, capacity));
        let batcher = Arc::new(SloBatcher::new(queue, 4, Duration::from_millis(2), Duration::ZERO));
        let (tx, rx) = mpsc::channel();
        let config = ServeConfig {
            workers,
            max_batch_size: 4,
            queue_capacity: capacity,
            ..ServeConfig::default()
        };
        let dwell_model = session.dwell_model(4);
        let pool = WorkerPool::spawn(session, Arc::clone(&batcher), &config, &dwell_model, tx);
        (batcher, pool, rx)
    }

    #[test]
    fn workers_complete_all_requests_and_exit_on_close() {
        let (batcher, pool, rx) = spawn_pool(2, 64);
        for id in 0..20 {
            batcher.queue().push(0, InferenceRequest::new(id, vec![0.1; 24])).unwrap();
        }
        batcher.queue().close();
        let stats = pool.join();
        let responses: Vec<InferenceResponse> = rx.try_iter().collect();
        assert_eq!(responses.len(), 20);
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..20).collect::<Vec<u64>>());
        assert!(responses.iter().all(|r| r.output.len() == 16));
        assert!(responses.iter().all(|r| r.batch_size >= 1 && r.batch_size <= 4));
        assert!(responses.iter().all(|r| r.class == 0 && r.deadline_met.is_none()));
        assert_eq!(stats.iter().map(|s| s.requests).sum::<usize>(), 20);
        assert_eq!(
            stats.iter().map(|s| s.batches).sum::<usize>(),
            responses.iter().map(|r| 1.0 / r.batch_size as f64).sum::<f64>().round() as usize,
        );
        assert!(stats.iter().all(|s| s.sim_gpu_s >= 0.0));
    }

    #[test]
    fn responses_match_direct_session_output() {
        let session = tiny_session();
        let (batcher, pool, rx) = spawn_pool(1, 16);
        let payload: Vec<f32> = (0..24).map(|i| (i as f32) * 0.05 - 0.5).collect();
        batcher.queue().push(0, InferenceRequest::new(1, payload.clone())).unwrap();
        batcher.queue().close();
        pool.join();
        let response = rx.try_iter().next().expect("one response");
        let expected = session.forward_one(&payload);
        assert_eq!(response.output.len(), expected.len());
        for (a, b) in response.output.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn responses_report_deadline_outcomes() {
        let (batcher, pool, rx) = spawn_pool(1, 16);
        // A generous SLO that completes in time, and one that already
        // expired at submission.
        let roomy = InferenceRequest::classed(1, vec![0.1; 24], 0, Some(Duration::from_secs(60)));
        let expired = InferenceRequest::classed(2, vec![0.1; 24], 1, Some(Duration::ZERO));
        batcher.queue().push(0, roomy).unwrap();
        batcher.queue().push(1, expired).unwrap();
        batcher.queue().close();
        pool.join();
        let responses: Vec<InferenceResponse> = rx.try_iter().collect();
        assert_eq!(responses.len(), 2);
        let by_id: HashMap<u64, &InferenceResponse> = responses.iter().map(|r| (r.id, r)).collect();
        assert_eq!(by_id[&1].deadline_met, Some(true));
        assert_eq!(by_id[&1].class, 0);
        assert_eq!(by_id[&2].deadline_met, Some(false));
        assert_eq!(by_id[&2].class, 1);
    }

    #[test]
    fn pool_with_closed_empty_queue_exits_immediately() {
        let (batcher, pool, _rx) = spawn_pool(3, 8);
        batcher.queue().close();
        let stats = pool.join();
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().all(|s| s.batches == 0));
    }
}
