//! The worker pool: threads that turn batches into responses.
//!
//! Each worker loops on the shared [`SloBatcher`], resolves the (model-pure)
//! batch's [`ModelRuntime`], fuses the payloads into one activation matrix
//! (via `tw_tensor::batch`), runs the session's batched forward pass on the
//! CPU — each layer through whatever [`tilewise::KernelBackend`] its plan
//! bound — then, when configured, dwells for the batch's simulated device
//! time, exactly as a real worker blocks on an accelerator.
//!
//! With memory management active the dwell gains a **cold-miss component**:
//! before executing, the worker acquires the model's weight tiles from the
//! shared [`TileCache`], and any tiles not resident are paged in over the
//! device's PCIe profile — the returned transfer seconds are added to the
//! batch's dwell and the batch is marked *cold*.  Tiles stay pinned until
//! the batch completes, so a concurrent batch of another model can never
//! evict weights mid-execution.
//!
//! Completion stamps each response with its request's class, model, the
//! batch's cold/warm outcome and — for SLO classes — whether it beat its
//! deadline, feeding the per-class goodput and per-model cold-start
//! accounting in [`crate::ServeReport`].

use crate::batcher::SloBatcher;
use crate::config::ServeConfig;
use crate::request::InferenceResponse;
use crate::stats::WorkerStats;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tilewise::{DwellModel, InferenceSession};
use tw_memory::{TileCache, WeightTile};
use tw_tensor::batch::stack_rows;

/// One servable model as the workers see it: the executable session, its
/// memoized dwell table, and the weight tiles the cache pages for it.
#[derive(Clone, Debug)]
pub struct ModelRuntime {
    /// Model name from the registry.
    pub name: String,
    /// The executable forward pass.
    pub session: Arc<InferenceSession>,
    /// Cost-model dwell table at the server's max batch size.
    pub dwell: DwellModel,
    /// The model's pageable weight tiles (empty when memory management is
    /// off — nothing to acquire).
    pub tiles: Vec<WeightTile>,
}

/// Handle over the pool's threads; joined at shutdown.
pub struct WorkerPool {
    handles: Vec<JoinHandle<WorkerStats>>,
}

impl WorkerPool {
    /// Spawns `config.workers` threads draining `batcher` into `responses`,
    /// resolving each batch's model in `models` (indexed by
    /// [`crate::request::ModelId`]) and paging weights through `memory`
    /// when present.
    ///
    /// Worker threads exit when the batcher's queue is closed and drained;
    /// they stop sending silently if the response receiver is dropped early.
    pub fn spawn(
        models: Arc<Vec<ModelRuntime>>,
        memory: Option<Arc<Mutex<TileCache>>>,
        batcher: Arc<SloBatcher>,
        config: &ServeConfig,
        responses: Sender<InferenceResponse>,
    ) -> Self {
        let handles = (0..config.workers)
            .map(|worker| {
                let models = Arc::clone(&models);
                let memory = memory.clone();
                let batcher = Arc::clone(&batcher);
                let responses = responses.clone();
                let dwell = config.gpu_dwell;
                std::thread::Builder::new()
                    .name(format!("tw-serve-worker-{worker}"))
                    .spawn(move || {
                        run_worker(worker, &models, memory.as_deref(), &batcher, dwell, &responses)
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self { handles }
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the pool has no workers (never true for a spawned pool).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to finish and returns their counters.
    pub fn join(self) -> Vec<WorkerStats> {
        self.handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    }
}

fn run_worker(
    worker: usize,
    models: &[ModelRuntime],
    memory: Option<&Mutex<TileCache>>,
    batcher: &SloBatcher,
    dwell: Option<crate::config::GpuDwell>,
    responses: &Sender<InferenceResponse>,
) -> WorkerStats {
    let mut stats = WorkerStats { worker, ..WorkerStats::default() };

    while let Some(batch) = batcher.next_batch() {
        let model_id = batch[0].model;
        debug_assert!(batch.iter().all(|r| r.model == model_id), "batches are model-pure");
        let runtime = &models[model_id];

        // Cold-miss phase: make the model's tiles resident and pinned.
        // The cache lock covers only the residency bookkeeping — the
        // (simulated) transfer itself is served as dwell below, so
        // concurrent workers do not serialize on each other's copies.
        let acquisition =
            memory.map(|cache| cache.lock().expect("tile cache poisoned").acquire(&runtime.tiles));

        let cpu_start = Instant::now();
        let rows: Vec<&[f32]> = batch.iter().map(|r| r.payload.as_slice()).collect();
        let inputs = stack_rows(&rows);
        let outputs = runtime.session.forward_batch(&inputs);
        stats.cpu_busy += cpu_start.elapsed();

        // The simulated device time depends only on batch size; the shared
        // table keeps the planner out of the hot loop.  Cold batches add
        // their PCIe transfer time on top — that is the cold-start cost.
        let kernel_s = runtime.dwell.seconds_for(batch.len());
        let transfer_s = acquisition.map_or(0.0, |a| a.transfer_seconds);
        let cold = acquisition.is_some_and(|a| a.is_cold());
        stats.sim_gpu_s += kernel_s;
        stats.transfer_sim_s += transfer_s;
        if let Some(a) = acquisition {
            stats.bytes_paged += a.bytes_transferred;
        }
        if cold {
            stats.cold_batches += 1;
        }
        if let Some(dwell) = dwell {
            let wait = (kernel_s + transfer_s) * dwell.time_scale;
            if wait > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(wait));
            }
        }
        if let Some(cache) = memory {
            cache.lock().expect("tile cache poisoned").release(&runtime.tiles);
        }

        stats.batches += 1;
        stats.requests += batch.len();
        let batch_size = batch.len();
        let completed_at = Instant::now();
        for (i, request) in batch.into_iter().enumerate() {
            let response = InferenceResponse {
                id: request.id,
                output: outputs.row(i).to_vec(),
                latency: completed_at.saturating_duration_since(request.submitted_at),
                batch_size,
                worker,
                class: request.class,
                model: model_id,
                cold,
                deadline_met: request.deadline.map(|d| completed_at <= d),
            };
            if responses.send(response).is_err() {
                // Receiver dropped: the server is being torn down early;
                // keep draining so submitters are not wedged on a full queue.
                break;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::PriorityQueue;
    use crate::request::InferenceRequest;
    use std::collections::HashMap;
    use std::sync::mpsc;
    use tilewise::Backend;
    use tw_gpu_sim::TransferCost;
    use tw_memory::{MemoryPool, ModelRegistry, PolicyKind};

    fn tiny_session() -> Arc<InferenceSession> {
        Arc::new(InferenceSession::synthetic_chain(&[24, 32, 16], 0.5, 8, 3, Backend::TileWise))
    }

    fn runtime(session: Arc<InferenceSession>, tiles: Vec<WeightTile>) -> ModelRuntime {
        let dwell = session.dwell_model(4);
        ModelRuntime { name: "default".into(), session, dwell, tiles }
    }

    fn spawn_pool(
        workers: usize,
        capacity: usize,
    ) -> (Arc<SloBatcher>, WorkerPool, mpsc::Receiver<InferenceResponse>) {
        let session = tiny_session();
        let queue = Arc::new(PriorityQueue::new(2, capacity));
        let batcher = Arc::new(SloBatcher::new(queue, 4, Duration::from_millis(2), Duration::ZERO));
        let (tx, rx) = mpsc::channel();
        let config = ServeConfig {
            workers,
            max_batch_size: 4,
            queue_capacity: capacity,
            ..ServeConfig::default()
        };
        let models = Arc::new(vec![runtime(session, Vec::new())]);
        let pool = WorkerPool::spawn(models, None, Arc::clone(&batcher), &config, tx);
        (batcher, pool, rx)
    }

    #[test]
    fn workers_complete_all_requests_and_exit_on_close() {
        let (batcher, pool, rx) = spawn_pool(2, 64);
        for id in 0..20 {
            batcher.queue().push(0, InferenceRequest::new(id, vec![0.1; 24])).unwrap();
        }
        batcher.queue().close();
        let stats = pool.join();
        let responses: Vec<InferenceResponse> = rx.try_iter().collect();
        assert_eq!(responses.len(), 20);
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..20).collect::<Vec<u64>>());
        assert!(responses.iter().all(|r| r.output.len() == 16));
        assert!(responses.iter().all(|r| r.batch_size >= 1 && r.batch_size <= 4));
        assert!(responses.iter().all(|r| r.class == 0 && r.deadline_met.is_none()));
        assert!(responses.iter().all(|r| r.model == 0 && !r.cold), "no paging configured");
        assert_eq!(stats.iter().map(|s| s.requests).sum::<usize>(), 20);
        assert_eq!(
            stats.iter().map(|s| s.batches).sum::<usize>(),
            responses.iter().map(|r| 1.0 / r.batch_size as f64).sum::<f64>().round() as usize,
        );
        assert!(stats.iter().all(|s| s.sim_gpu_s >= 0.0));
        assert!(stats.iter().all(|s| s.bytes_paged == 0 && s.cold_batches == 0));
    }

    #[test]
    fn responses_match_direct_session_output() {
        let session = tiny_session();
        let (batcher, pool, rx) = spawn_pool(1, 16);
        let payload: Vec<f32> = (0..24).map(|i| (i as f32) * 0.05 - 0.5).collect();
        batcher.queue().push(0, InferenceRequest::new(1, payload.clone())).unwrap();
        batcher.queue().close();
        pool.join();
        let response = rx.try_iter().next().expect("one response");
        let expected = session.forward_one(&payload);
        assert_eq!(response.output.len(), expected.len());
        for (a, b) in response.output.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn responses_report_deadline_outcomes() {
        let (batcher, pool, rx) = spawn_pool(1, 16);
        // A generous SLO that completes in time, and one that already
        // expired at submission.
        let roomy = InferenceRequest::classed(1, vec![0.1; 24], 0, Some(Duration::from_secs(60)));
        let expired = InferenceRequest::classed(2, vec![0.1; 24], 1, Some(Duration::ZERO));
        batcher.queue().push(0, roomy).unwrap();
        batcher.queue().push(1, expired).unwrap();
        batcher.queue().close();
        pool.join();
        let responses: Vec<InferenceResponse> = rx.try_iter().collect();
        assert_eq!(responses.len(), 2);
        let by_id: HashMap<u64, &InferenceResponse> = responses.iter().map(|r| (r.id, r)).collect();
        assert_eq!(by_id[&1].deadline_met, Some(true));
        assert_eq!(by_id[&1].class, 0);
        assert_eq!(by_id[&2].deadline_met, Some(false));
        assert_eq!(by_id[&2].class, 1);
    }

    #[test]
    fn cold_batches_page_then_warm_batches_hit() {
        // Two models behind one pool with a cache big enough for both: the
        // first batch of each model is cold, the rest are warm hits.
        let sessions = [tiny_session(), tiny_session()];
        let mut registry = ModelRegistry::with_page_bytes(1024);
        let m0 = registry.register("m0", 1, Arc::clone(&sessions[0]));
        let m1 = registry.register("m1", 1, Arc::clone(&sessions[1]));
        let models = Arc::new(vec![
            runtime(Arc::clone(&sessions[0]), registry.get(m0).tiles().to_vec()),
            runtime(Arc::clone(&sessions[1]), registry.get(m1).tiles().to_vec()),
        ]);
        let cache = Arc::new(Mutex::new(TileCache::new(
            MemoryPool::new(registry.total_footprint()),
            TransferCost::new(1.0e9, 1.0e-6),
            PolicyKind::Lru.build(),
        )));
        let queue = Arc::new(PriorityQueue::new(1, 64));
        let batcher = Arc::new(SloBatcher::new(queue, 4, Duration::from_millis(2), Duration::ZERO));
        let (tx, rx) = mpsc::channel();
        let config =
            ServeConfig { workers: 1, max_batch_size: 4, queue_capacity: 64, ..Default::default() };
        let pool =
            WorkerPool::spawn(models, Some(Arc::clone(&cache)), Arc::clone(&batcher), &config, tx);
        for round in 0..4u64 {
            for (id_offset, model) in [(0, m0), (100, m1)] {
                batcher
                    .queue()
                    .push(
                        0,
                        InferenceRequest::for_model(
                            round + id_offset,
                            model,
                            vec![0.1; 24],
                            0,
                            None,
                        ),
                    )
                    .unwrap();
            }
        }
        batcher.queue().close();
        let stats = pool.join();
        let responses: Vec<InferenceResponse> = rx.try_iter().collect();
        assert_eq!(responses.len(), 8);
        let cold: Vec<&InferenceResponse> = responses.iter().filter(|r| r.cold).collect();
        assert!(!cold.is_empty(), "first touch of each model must be cold");
        assert!(cold.len() < responses.len(), "later batches must be warm");
        let total_paged: u64 = stats.iter().map(|s| s.bytes_paged).sum();
        assert_eq!(total_paged, registry.total_footprint(), "each model paged in exactly once");
        let cache = cache.lock().unwrap();
        assert_eq!(cache.stats().evictions, 0, "both models fit");
        assert!(stats.iter().map(|s| s.transfer_sim_s).sum::<f64>() > 0.0);
    }

    #[test]
    fn pool_with_closed_empty_queue_exits_immediately() {
        let (batcher, pool, _rx) = spawn_pool(3, 8);
        batcher.queue().close();
        let stats = pool.join();
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().all(|s| s.batches == 0));
    }
}
