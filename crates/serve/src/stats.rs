//! Latency, throughput, goodput and shed accounting — overall and per class.

use crate::config::ClassPolicy;
use crate::request::{InferenceResponse, ShedRecord};
use std::time::Duration;

/// Order statistics over a set of request latencies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: usize,
    /// Mean latency in seconds.
    pub mean_s: f64,
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Worst observed latency.
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarizes latency samples (seconds).  Returns an all-zero summary
    /// for an empty input.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return Self { count: 0, mean_s: 0.0, p50_s: 0.0, p95_s: 0.0, p99_s: 0.0, max_s: 0.0 };
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies must not be NaN"));
        let count = samples.len();
        let mean_s = samples.iter().sum::<f64>() / count as f64;
        Self {
            count,
            mean_s,
            p50_s: percentile(&samples, 0.50),
            p95_s: percentile(&samples, 0.95),
            p99_s: percentile(&samples, 0.99),
            max_s: samples[count - 1],
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
///
/// # Panics
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-worker execution counters, merged into the final report.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Batches this worker executed.
    pub batches: usize,
    /// Requests this worker completed.
    pub requests: usize,
    /// Wall time spent in CPU kernel execution.
    pub cpu_busy: Duration,
    /// Simulated device seconds this worker's batches were priced at
    /// (kernel time only; paging time is [`WorkerStats::transfer_sim_s`]).
    pub sim_gpu_s: f64,
    /// Simulated PCIe seconds this worker's cold batches paid paging
    /// weight tiles in.
    pub transfer_sim_s: f64,
    /// Bytes this worker's batches paged host→device.
    pub bytes_paged: u64,
    /// Batches that had to page at least one tile in.
    pub cold_batches: usize,
}

/// One completed request's contribution to the report: its class, latency,
/// and whether it beat its deadline.  The server keeps these (not whole
/// responses) for results already streamed out mid-run, so the final report
/// still covers the entire run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunObservation {
    /// Class of the completed request.
    pub class: usize,
    /// Model that served the request.
    pub model: usize,
    /// Whether the request's batch had to page weight tiles in.
    pub cold: bool,
    /// Submission-to-completion latency in seconds.
    pub latency_s: f64,
    /// Deadline outcome (`None` for classes without an SLO).
    pub deadline_met: Option<bool>,
}

impl RunObservation {
    /// The observation a response contributes.
    pub fn of(response: &InferenceResponse) -> Self {
        Self {
            class: response.class,
            model: response.model,
            cold: response.cold,
            latency_s: response.latency.as_secs_f64(),
            deadline_met: response.deadline_met,
        }
    }
}

/// Per-class outcome breakdown.
#[derive(Clone, Debug)]
pub struct ClassStats {
    /// Class id (index into the server's class list = priority).
    pub class: usize,
    /// Class name from the [`ClassPolicy`].
    pub name: String,
    /// Requests of this class completed.
    pub completed: usize,
    /// Requests of this class refused by admission control.
    pub shed: usize,
    /// Completions that count toward goodput: within the class SLO, or any
    /// completion for a class without one.
    pub good: usize,
    /// Latency order statistics over this class's completions.
    pub latency: LatencySummary,
}

impl ClassStats {
    /// Requests of this class that entered the server (completed + shed).
    pub fn submitted(&self) -> usize {
        self.completed + self.shed
    }

    /// Fraction of this class's submissions that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted() == 0 {
            return 0.0;
        }
        self.shed as f64 / self.submitted() as f64
    }

    /// Fraction of completions that beat the SLO (1.0 for best-effort
    /// classes).
    pub fn hit_rate(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.good as f64 / self.completed as f64
    }
}

/// Per-model outcome breakdown: the cold-start story.  A request is *cold*
/// when its batch had to page weight tiles in over PCIe; the split
/// latency summaries make cold-start vs warm latency directly visible, and
/// the tile counters quantify the paging traffic behind it.
#[derive(Clone, Debug)]
pub struct ModelStats {
    /// Model id (index into the server's registry).
    pub model: usize,
    /// Model name (`name@version` style naming is up to the registrant).
    pub name: String,
    /// Requests this model completed.
    pub completed: usize,
    /// Completions whose batch paged tiles in.
    pub cold: usize,
    /// Latency order statistics over warm completions.
    pub warm_latency: LatencySummary,
    /// Latency order statistics over cold completions.
    pub cold_latency: LatencySummary,
    /// Weight-tile cache hits for this model.
    pub tile_hits: u64,
    /// Weight-tile cache misses for this model.
    pub tile_misses: u64,
    /// Bytes paged host→device for this model.
    pub bytes_paged: u64,
    /// Simulated PCIe seconds charged to this model's batches.
    pub transfer_sim_s: f64,
}

impl ModelStats {
    /// Fraction of tile lookups that hit (1.0 when the model was never
    /// paged, i.e. memory management off or no traffic).
    pub fn tile_hit_rate(&self) -> f64 {
        let total = self.tile_hits + self.tile_misses;
        if total == 0 {
            return 1.0;
        }
        self.tile_hits as f64 / total as f64
    }

    /// Fraction of completions that rode a cold batch.
    pub fn cold_rate(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.cold as f64 / self.completed as f64
    }

    /// The one-line cold-start view of this model — shared by the
    /// single-server and cluster report printers so the two cannot drift.
    pub fn summary_line(&self) -> String {
        format!(
            "model {} ({}): {} completed ({} cold, {:.1}%) | tile hit {:.1}% | paged {:.2} MiB | warm p99 {:.2}ms vs cold p99 {:.2}ms",
            self.model,
            self.name,
            self.completed,
            self.cold,
            self.cold_rate() * 100.0,
            self.tile_hit_rate() * 100.0,
            self.bytes_paged as f64 / (1 << 20) as f64,
            self.warm_latency.p99_s * 1e3,
            self.cold_latency.p99_s * 1e3,
        )
    }
}

/// The outcome of one serving run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests completed.
    pub completed: usize,
    /// Requests refused by admission control (every shed is recorded; none
    /// are silently dropped).
    pub shed: usize,
    /// Wall-clock span from server start to shutdown.
    pub wall: Duration,
    /// Latency order statistics over all completions.
    pub latency: LatencySummary,
    /// Per-class breakdowns, in class (= priority) order.  Empty for
    /// reports built from bare latency samples.
    pub classes: Vec<ClassStats>,
    /// Total batches executed across workers.
    pub batches: usize,
    /// Per-worker counters.
    pub workers: Vec<WorkerStats>,
    /// Total simulated device seconds across all batches.
    pub sim_gpu_s: f64,
    /// Total simulated PCIe seconds spent paging weight tiles (zero when
    /// memory management is off).
    pub transfer_sim_s: f64,
    /// Total bytes paged host→device across all batches.
    pub bytes_paged: u64,
    /// Per-model breakdowns, in registry order.  Empty for single-model
    /// reports without memory management (the legacy shape).
    pub models: Vec<ModelStats>,
    /// Resolved kernel family of each served layer, in layer order (empty
    /// when the report was built without a session, e.g. in unit tests).
    pub backend_plan: Vec<String>,
}

impl ServeReport {
    /// Builds a report from collected responses and worker counters.
    pub fn new(responses: &[InferenceResponse], wall: Duration, workers: Vec<WorkerStats>) -> Self {
        let samples: Vec<f64> = responses.iter().map(|r| r.latency.as_secs_f64()).collect();
        Self::from_latencies(samples, wall, workers)
    }

    /// Builds a class-blind report from raw latency samples (seconds) and
    /// worker counters.
    pub fn from_latencies(
        latencies_s: Vec<f64>,
        wall: Duration,
        workers: Vec<WorkerStats>,
    ) -> Self {
        let batches = workers.iter().map(|w| w.batches).sum();
        let sim_gpu_s = workers.iter().map(|w| w.sim_gpu_s).sum();
        let transfer_sim_s = workers.iter().map(|w| w.transfer_sim_s).sum();
        let bytes_paged = workers.iter().map(|w| w.bytes_paged).sum();
        Self {
            completed: latencies_s.len(),
            shed: 0,
            wall,
            latency: LatencySummary::from_samples(latencies_s),
            classes: Vec::new(),
            batches,
            workers,
            sim_gpu_s,
            transfer_sim_s,
            bytes_paged,
            models: Vec::new(),
            backend_plan: Vec::new(),
        }
    }

    /// Builds the full per-class report the server emits: one observation
    /// per completion (streamed-out or final), the shed log, and the class
    /// policies for naming.
    pub fn from_observations(
        observations: &[RunObservation],
        shed: &[ShedRecord],
        classes: &[ClassPolicy],
        wall: Duration,
        workers: Vec<WorkerStats>,
    ) -> Self {
        let class_stats: Vec<ClassStats> = classes
            .iter()
            .enumerate()
            .map(|(id, policy)| {
                let samples: Vec<f64> =
                    observations.iter().filter(|o| o.class == id).map(|o| o.latency_s).collect();
                let good = observations
                    .iter()
                    .filter(|o| o.class == id && o.deadline_met != Some(false))
                    .count();
                ClassStats {
                    class: id,
                    name: policy.name.clone(),
                    completed: samples.len(),
                    shed: shed.iter().filter(|s| s.class == id).count(),
                    good,
                    latency: LatencySummary::from_samples(samples),
                }
            })
            .collect();
        let all: Vec<f64> = observations.iter().map(|o| o.latency_s).collect();
        let mut report = Self::from_latencies(all, wall, workers);
        report.shed = shed.len();
        report.classes = class_stats;
        report
    }

    /// Attaches the served model's per-layer backend plan to the report.
    pub fn with_backend_plan(mut self, backend_plan: Vec<String>) -> Self {
        self.backend_plan = backend_plan;
        self
    }

    /// Attaches per-model breakdowns (multi-model / paging servers).
    pub fn with_model_stats(mut self, models: Vec<ModelStats>) -> Self {
        self.models = models;
        self
    }

    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        per_second(self.completed, self.wall)
    }

    /// *Useful* completions per wall-clock second: completions within their
    /// class SLO (best-effort completions all count).  Equals throughput
    /// for class-blind reports.
    pub fn goodput_rps(&self) -> f64 {
        if self.classes.is_empty() {
            return self.throughput_rps();
        }
        per_second(self.classes.iter().map(|c| c.good).sum(), self.wall)
    }

    /// Fraction of submissions (completed + shed) refused by admission.
    pub fn shed_rate(&self) -> f64 {
        let submitted = self.completed + self.shed;
        if submitted == 0 {
            return 0.0;
        }
        self.shed as f64 / submitted as f64
    }

    /// Mean number of requests fused per batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.completed as f64 / self.batches as f64
    }

    /// One human-readable summary line per run.
    pub fn summary(&self) -> String {
        let plan = if self.backend_plan.is_empty() {
            String::new()
        } else {
            format!(" | plan [{}]", self.backend_plan.join(","))
        };
        let shed = if self.shed > 0 {
            format!(" | shed {} ({:.1}%)", self.shed, self.shed_rate() * 100.0)
        } else {
            String::new()
        };
        let paged = if self.bytes_paged > 0 {
            format!(
                " | paged {:.1} MiB ({:.3}s PCIe)",
                self.bytes_paged as f64 / (1 << 20) as f64,
                self.transfer_sim_s,
            )
        } else {
            String::new()
        };
        format!(
            "{} requests in {:.3}s | {:.1} req/s ({:.1} good) | batch x̄ {:.2} | latency p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms | sim-GPU {:.3}s{paged}{shed}{plan}",
            self.completed,
            self.wall.as_secs_f64(),
            self.throughput_rps(),
            self.goodput_rps(),
            self.mean_batch_size(),
            self.latency.p50_s * 1e3,
            self.latency.p95_s * 1e3,
            self.latency.p99_s * 1e3,
            self.sim_gpu_s,
        )
    }

    /// One line per class: completions, sheds, SLO hit rate and latency
    /// percentiles — the per-class view the scenario benchmarks print.
    pub fn class_summary(&self) -> Vec<String> {
        self.classes
            .iter()
            .map(|c| {
                format!(
                    "class {} ({}): {} completed, {} shed ({:.1}%), hit rate {:.1}% | p50 {:.2}ms p99 {:.2}ms",
                    c.class,
                    c.name,
                    c.completed,
                    c.shed,
                    c.shed_rate() * 100.0,
                    c.hit_rate() * 100.0,
                    c.latency.p50_s * 1e3,
                    c.latency.p99_s * 1e3,
                )
            })
            .collect()
    }

    /// One line per model: cold vs warm latency, tile hit rate and paging
    /// traffic — the cold-start view the multi-model benchmarks print.
    pub fn model_summary(&self) -> Vec<String> {
        self.models.iter().map(ModelStats::summary_line).collect()
    }
}

fn per_second(count: usize, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    count as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ShedReason;

    #[test]
    fn percentiles_on_known_distribution() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
    }

    #[test]
    fn summary_from_samples() {
        let s = LatencySummary::from_samples(vec![0.4, 0.1, 0.2, 0.3]);
        assert_eq!(s.count, 4);
        assert!((s.mean_s - 0.25).abs() < 1e-12);
        assert_eq!(s.p50_s, 0.2);
        assert_eq!(s.max_s, 0.4);
    }

    #[test]
    fn empty_samples_are_all_zero() {
        let s = LatencySummary::from_samples(Vec::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_s, 0.0);
    }

    #[test]
    fn report_aggregates_workers() {
        let responses: Vec<InferenceResponse> = (0..10)
            .map(|i| InferenceResponse {
                id: i,
                output: vec![0.0],
                latency: Duration::from_millis(10 + i),
                batch_size: 5,
                worker: (i % 2) as usize,
                class: 0,
                model: 0,
                cold: false,
                deadline_met: None,
            })
            .collect();
        let workers = vec![
            WorkerStats {
                worker: 0,
                batches: 1,
                requests: 5,
                sim_gpu_s: 0.5,
                ..Default::default()
            },
            WorkerStats {
                worker: 1,
                batches: 1,
                requests: 5,
                sim_gpu_s: 0.25,
                transfer_sim_s: 0.1,
                bytes_paged: 2048,
                cold_batches: 1,
                ..Default::default()
            },
        ];
        let report = ServeReport::new(&responses, Duration::from_secs(2), workers)
            .with_backend_plan(vec!["tile-wise".into(), "csr".into()]);
        assert_eq!(report.completed, 10);
        assert!(report.summary().contains("plan [tile-wise,csr]"));
        assert_eq!(report.batches, 2);
        assert!((report.throughput_rps() - 5.0).abs() < 1e-12);
        // Class-blind report: goodput falls back to throughput.
        assert_eq!(report.goodput_rps(), report.throughput_rps());
        assert!((report.mean_batch_size() - 5.0).abs() < 1e-12);
        assert!((report.sim_gpu_s - 0.75).abs() < 1e-12);
        assert!((report.transfer_sim_s - 0.1).abs() < 1e-12);
        assert_eq!(report.bytes_paged, 2048);
        assert!(report.summary().contains("req/s"));
        assert!(report.summary().contains("paged"), "paging shows up: {}", report.summary());
    }

    #[test]
    fn per_class_breakdown_splits_goodput_and_sheds() {
        let classes = vec![
            ClassPolicy::with_deadline("interactive", Duration::from_millis(50)),
            ClassPolicy::best_effort("batch"),
        ];
        let observations = vec![
            RunObservation {
                class: 0,
                model: 0,
                cold: false,
                latency_s: 0.010,
                deadline_met: Some(true),
            },
            RunObservation {
                class: 0,
                model: 0,
                cold: false,
                latency_s: 0.080,
                deadline_met: Some(false),
            },
            RunObservation {
                class: 1,
                model: 0,
                cold: false,
                latency_s: 0.200,
                deadline_met: None,
            },
            RunObservation {
                class: 1,
                model: 0,
                cold: false,
                latency_s: 0.400,
                deadline_met: None,
            },
        ];
        let shed = vec![
            ShedRecord { id: 10, class: 0, reason: ShedReason::Deadline },
            ShedRecord { id: 11, class: 1, reason: ShedReason::QueueFull },
            ShedRecord { id: 12, class: 1, reason: ShedReason::QueueFull },
        ];
        let report = ServeReport::from_observations(
            &observations,
            &shed,
            &classes,
            Duration::from_secs(1),
            Vec::new(),
        );
        assert_eq!(report.completed, 4);
        assert_eq!(report.shed, 3);
        assert!((report.shed_rate() - 3.0 / 7.0).abs() < 1e-12);
        // Goodput: 1 interactive hit + 2 best-effort completions.
        assert!((report.goodput_rps() - 3.0).abs() < 1e-12);
        assert!((report.throughput_rps() - 4.0).abs() < 1e-12);

        let interactive = &report.classes[0];
        assert_eq!(interactive.name, "interactive");
        assert_eq!(interactive.completed, 2);
        assert_eq!(interactive.shed, 1);
        assert_eq!(interactive.good, 1);
        assert!((interactive.hit_rate() - 0.5).abs() < 1e-12);
        assert!((interactive.shed_rate() - 1.0 / 3.0).abs() < 1e-12);

        let batch = &report.classes[1];
        assert_eq!(batch.completed, 2);
        assert_eq!(batch.shed, 2);
        assert_eq!(batch.good, 2, "best-effort completions all count as good");
        assert!(batch.latency.p99_s >= interactive.latency.p99_s);

        let lines = report.class_summary();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("interactive"));
        assert!(report.summary().contains("shed 3"));
    }

    #[test]
    fn observation_of_response_carries_class_model_and_outcome() {
        let response = InferenceResponse {
            id: 1,
            output: Vec::new(),
            latency: Duration::from_millis(30),
            batch_size: 4,
            worker: 0,
            class: 1,
            model: 2,
            cold: true,
            deadline_met: Some(true),
        };
        let obs = RunObservation::of(&response);
        assert_eq!(obs.class, 1);
        assert_eq!(obs.model, 2);
        assert!(obs.cold);
        assert_eq!(obs.deadline_met, Some(true));
        assert!((obs.latency_s - 0.030).abs() < 1e-9);
    }

    #[test]
    fn model_stats_rates_and_summary_lines() {
        let stats = ModelStats {
            model: 0,
            name: "bert".into(),
            completed: 10,
            cold: 4,
            warm_latency: LatencySummary::from_samples(vec![0.002; 6]),
            cold_latency: LatencySummary::from_samples(vec![0.009; 4]),
            tile_hits: 90,
            tile_misses: 10,
            bytes_paged: 3 << 20,
            transfer_sim_s: 0.25,
        };
        assert!((stats.tile_hit_rate() - 0.9).abs() < 1e-12);
        assert!((stats.cold_rate() - 0.4).abs() < 1e-12);
        let report =
            ServeReport::from_latencies(vec![0.002; 10], Duration::from_secs(1), Vec::new())
                .with_model_stats(vec![stats]);
        let lines = report.model_summary();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("bert"), "{}", lines[0]);
        assert!(lines[0].contains("4 cold"), "{}", lines[0]);
        assert!(lines[0].contains("tile hit 90.0%"), "{}", lines[0]);
        // A model never paged reports a perfect hit rate, not a 0/0 NaN.
        let untouched = ModelStats {
            model: 1,
            name: "idle".into(),
            completed: 0,
            cold: 0,
            warm_latency: LatencySummary::from_samples(Vec::new()),
            cold_latency: LatencySummary::from_samples(Vec::new()),
            tile_hits: 0,
            tile_misses: 0,
            bytes_paged: 0,
            transfer_sim_s: 0.0,
        };
        assert_eq!(untouched.tile_hit_rate(), 1.0);
        assert_eq!(untouched.cold_rate(), 0.0);
    }
}
