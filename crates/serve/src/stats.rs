//! Latency and throughput accounting.

use crate::request::InferenceResponse;
use std::time::Duration;

/// Order statistics over a set of request latencies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: usize,
    /// Mean latency in seconds.
    pub mean_s: f64,
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Worst observed latency.
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarizes latency samples (seconds).  Returns an all-zero summary
    /// for an empty input.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return Self { count: 0, mean_s: 0.0, p50_s: 0.0, p95_s: 0.0, p99_s: 0.0, max_s: 0.0 };
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies must not be NaN"));
        let count = samples.len();
        let mean_s = samples.iter().sum::<f64>() / count as f64;
        Self {
            count,
            mean_s,
            p50_s: percentile(&samples, 0.50),
            p95_s: percentile(&samples, 0.95),
            p99_s: percentile(&samples, 0.99),
            max_s: samples[count - 1],
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
///
/// # Panics
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-worker execution counters, merged into the final report.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Batches this worker executed.
    pub batches: usize,
    /// Requests this worker completed.
    pub requests: usize,
    /// Wall time spent in CPU kernel execution.
    pub cpu_busy: Duration,
    /// Simulated device seconds this worker's batches were priced at.
    pub sim_gpu_s: f64,
}

/// The outcome of one serving run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests completed.
    pub completed: usize,
    /// Wall-clock span from server start to shutdown.
    pub wall: Duration,
    /// Latency order statistics.
    pub latency: LatencySummary,
    /// Total batches executed across workers.
    pub batches: usize,
    /// Per-worker counters.
    pub workers: Vec<WorkerStats>,
    /// Total simulated device seconds across all batches.
    pub sim_gpu_s: f64,
    /// Resolved kernel family of each served layer, in layer order (empty
    /// when the report was built without a session, e.g. in unit tests).
    pub backend_plan: Vec<String>,
}

impl ServeReport {
    /// Builds a report from collected responses and worker counters.
    pub fn new(responses: &[InferenceResponse], wall: Duration, workers: Vec<WorkerStats>) -> Self {
        let samples: Vec<f64> = responses.iter().map(|r| r.latency.as_secs_f64()).collect();
        Self::from_latencies(samples, wall, workers)
    }

    /// Builds a report from raw latency samples (seconds) and worker
    /// counters — the form the server uses so responses already streamed
    /// out via `drain_responses` stay accounted for.
    pub fn from_latencies(
        latencies_s: Vec<f64>,
        wall: Duration,
        workers: Vec<WorkerStats>,
    ) -> Self {
        let batches = workers.iter().map(|w| w.batches).sum();
        let sim_gpu_s = workers.iter().map(|w| w.sim_gpu_s).sum();
        Self {
            completed: latencies_s.len(),
            wall,
            latency: LatencySummary::from_samples(latencies_s),
            batches,
            workers,
            sim_gpu_s,
            backend_plan: Vec::new(),
        }
    }

    /// Attaches the served model's per-layer backend plan to the report.
    pub fn with_backend_plan(mut self, backend_plan: Vec<String>) -> Self {
        self.backend_plan = backend_plan;
        self
    }

    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Mean number of requests fused per batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.completed as f64 / self.batches as f64
    }

    /// One human-readable summary line per run.
    pub fn summary(&self) -> String {
        let plan = if self.backend_plan.is_empty() {
            String::new()
        } else {
            format!(" | plan [{}]", self.backend_plan.join(","))
        };
        format!(
            "{} requests in {:.3}s | {:.1} req/s | batch x̄ {:.2} | latency p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms | sim-GPU {:.3}s{plan}",
            self.completed,
            self.wall.as_secs_f64(),
            self.throughput_rps(),
            self.mean_batch_size(),
            self.latency.p50_s * 1e3,
            self.latency.p95_s * 1e3,
            self.latency.p99_s * 1e3,
            self.sim_gpu_s,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_distribution() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
    }

    #[test]
    fn summary_from_samples() {
        let s = LatencySummary::from_samples(vec![0.4, 0.1, 0.2, 0.3]);
        assert_eq!(s.count, 4);
        assert!((s.mean_s - 0.25).abs() < 1e-12);
        assert_eq!(s.p50_s, 0.2);
        assert_eq!(s.max_s, 0.4);
    }

    #[test]
    fn empty_samples_are_all_zero() {
        let s = LatencySummary::from_samples(Vec::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_s, 0.0);
    }

    #[test]
    fn report_aggregates_workers() {
        let responses: Vec<InferenceResponse> = (0..10)
            .map(|i| InferenceResponse {
                id: i,
                output: vec![0.0],
                latency: Duration::from_millis(10 + i),
                batch_size: 5,
                worker: (i % 2) as usize,
            })
            .collect();
        let workers = vec![
            WorkerStats {
                worker: 0,
                batches: 1,
                requests: 5,
                cpu_busy: Duration::ZERO,
                sim_gpu_s: 0.5,
            },
            WorkerStats {
                worker: 1,
                batches: 1,
                requests: 5,
                cpu_busy: Duration::ZERO,
                sim_gpu_s: 0.25,
            },
        ];
        let report = ServeReport::new(&responses, Duration::from_secs(2), workers)
            .with_backend_plan(vec!["tile-wise".into(), "csr".into()]);
        assert_eq!(report.completed, 10);
        assert!(report.summary().contains("plan [tile-wise,csr]"));
        assert_eq!(report.batches, 2);
        assert!((report.throughput_rps() - 5.0).abs() < 1e-12);
        assert!((report.mean_batch_size() - 5.0).abs() < 1e-12);
        assert!((report.sim_gpu_s - 0.75).abs() < 1e-12);
        assert!(report.summary().contains("req/s"));
    }
}
