//! `tw-serve` — a batched sparse-inference serving runtime.
//!
//! The rest of the workspace reproduces the paper's *offline* story: prune a
//! model tile-wise, compact the weights, plan the kernels, price them on the
//! GPU cost model.  This crate adds the *online* layer a production system
//! needs — accepting a stream of inference requests and turning it into
//! batched sparse kernel executions with bounded latency:
//!
//! ```text
//!  submit()                 +------------------+
//!  ---------> BoundedQueue  |  DynamicBatcher  |   worker 0 ── forward_batch (TW/CSR/dense)
//!  ---------> (backpressure)|  max size / wait | → worker 1 ──   + simulated GPU dwell
//!  --------->               +------------------+   worker N ── responses → ServeReport
//! ```
//!
//! * [`queue::BoundedQueue`] — the admission path: multi-producer,
//!   multi-consumer, bounded (submitters block when the system is
//!   saturated), closable (shutdown drains in-flight work).
//! * [`batcher::DynamicBatcher`] — groups requests into batches of at most
//!   `max_batch_size`, waiting at most `max_batch_wait` after the batch
//!   head arrives: the standard latency/throughput compromise.
//! * [`pool::WorkerPool`] — N threads, each executing whole batches on a
//!   shared [`tilewise::InferenceSession`] whose layers each run their own
//!   [`tilewise::KernelBackend`] (dense, tile-wise, CSR, BSR, or any
//!   registered custom family — possibly a different one per layer, as the
//!   auto-planner picks), then dwelling for the batch's simulated device
//!   time so pool-level overlap behaves like a real accelerator-backed tier.
//! * [`stats::ServeReport`] — per-request latency percentiles (p50/p95/p99),
//!   throughput, batch-size and per-worker counters, plus the per-layer
//!   backend plan the session actually served with.
//!
//! The [`Server`] ties these together; [`serve_closed_loop`] is the
//! one-call harness the benchmarks and examples use.
//!
//! Everything is deterministic except scheduling: responses carry request
//! ids, and the batched sparse outputs equal per-request dense inference
//! within kernel tolerance (pinned by `tests/serving_end_to_end.rs`).

pub mod batcher;
pub mod config;
pub mod pool;
pub mod queue;
pub mod request;
pub mod stats;

pub use batcher::DynamicBatcher;
pub use config::{GpuDwell, ServeConfig};
pub use pool::WorkerPool;
pub use queue::{BoundedQueue, Pop};
pub use request::{InferenceRequest, InferenceResponse};
pub use stats::{LatencySummary, ServeReport, WorkerStats};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;
use tilewise::InferenceSession;

/// A running serving instance: submit requests, then shut down for a report.
pub struct Server {
    session: Arc<InferenceSession>,
    queue: Arc<BoundedQueue<InferenceRequest>>,
    pool: WorkerPool,
    responses: Mutex<Receiver<InferenceResponse>>,
    // Latencies of responses already handed out via `drain_responses`, so
    // the final report still covers the whole run.
    drained_latencies: Mutex<Vec<f64>>,
    // Kept so the response channel outlives the workers; dropped in
    // `shutdown` so the final drain terminates.
    _response_tx: Sender<InferenceResponse>,
    next_id: AtomicU64,
    started: Instant,
}

impl Server {
    /// Starts the queue, batcher and worker pool for `session`.
    ///
    /// # Panics
    /// Panics if `config` is invalid (see [`ServeConfig::validate`]).
    pub fn start(session: Arc<InferenceSession>, config: ServeConfig) -> Self {
        config.validate();
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let batcher = Arc::new(DynamicBatcher::new(
            Arc::clone(&queue),
            config.max_batch_size,
            config.max_batch_wait,
        ));
        let (tx, rx) = mpsc::channel();
        let pool = WorkerPool::spawn(Arc::clone(&session), batcher, &config, tx.clone());
        Self {
            session,
            queue,
            pool,
            responses: Mutex::new(rx),
            drained_latencies: Mutex::new(Vec::new()),
            _response_tx: tx,
            next_id: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// The served model.
    pub fn session(&self) -> &Arc<InferenceSession> {
        &self.session
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.len()
    }

    /// Submits one request, blocking while the queue is full.  Returns the
    /// assigned request id, or `Err` if the server is shutting down.
    ///
    /// # Panics
    /// Panics if the payload length does not match the model's input dim —
    /// rejecting malformed requests at admission instead of inside a worker.
    pub fn submit(&self, payload: Vec<f32>) -> Result<u64, ServerClosed> {
        assert_eq!(
            payload.len(),
            self.session.input_dim(),
            "request payload length must match the model input dim"
        );
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.queue.push(InferenceRequest::new(id, payload)).map(|()| id).map_err(|_| ServerClosed)
    }

    /// Non-blocking drain of responses completed so far.  Drained responses
    /// remain accounted for in the final [`ServeReport`].
    pub fn drain_responses(&self) -> Vec<InferenceResponse> {
        let drained: Vec<InferenceResponse> =
            self.responses.lock().expect("response receiver poisoned").try_iter().collect();
        self.drained_latencies
            .lock()
            .expect("latency log poisoned")
            .extend(drained.iter().map(|r| r.latency.as_secs_f64()));
        drained
    }

    /// Stops admission, lets the workers drain the queue, joins them and
    /// returns the whole run's report plus the responses not previously
    /// handed out by [`Server::drain_responses`].
    pub fn shutdown(self) -> (ServeReport, Vec<InferenceResponse>) {
        self.queue.close();
        let worker_stats = self.pool.join();
        // Workers are done; hang up our own sender so the drain terminates.
        drop(self._response_tx);
        let receiver = self.responses.into_inner().expect("response receiver poisoned");
        let responses: Vec<InferenceResponse> = receiver.iter().collect();
        let mut latencies = self.drained_latencies.into_inner().expect("latency log poisoned");
        latencies.extend(responses.iter().map(|r| r.latency.as_secs_f64()));
        let backend_plan =
            self.session.layer_backends().iter().map(|name| name.to_string()).collect();
        let report = ServeReport::from_latencies(latencies, self.started.elapsed(), worker_stats)
            .with_backend_plan(backend_plan);
        (report, responses)
    }
}

/// Error returned by [`Server::submit`] once shutdown has begun.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerClosed;

impl std::fmt::Display for ServerClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server is shutting down; request rejected")
    }
}

impl std::error::Error for ServerClosed {}

/// Closed-loop harness: submit every payload (blocking on backpressure),
/// then shut down and report.  This is what the serving benchmark and the
/// example drive.
pub fn serve_closed_loop(
    session: Arc<InferenceSession>,
    config: ServeConfig,
    payloads: Vec<Vec<f32>>,
) -> (ServeReport, Vec<InferenceResponse>) {
    let server = Server::start(session, config);
    for payload in payloads {
        server.submit(payload).expect("closed-loop submit before shutdown");
    }
    server.shutdown()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tilewise::Backend;
    use tw_models::RequestGenerator;

    fn session(backend: Backend) -> Arc<InferenceSession> {
        Arc::new(InferenceSession::synthetic_chain(&[24, 32, 12], 0.5, 8, 17, backend))
    }

    fn quick_config(workers: usize) -> ServeConfig {
        ServeConfig {
            workers,
            max_batch_size: 8,
            max_batch_wait: Duration::from_millis(1),
            queue_capacity: 64,
            gpu_dwell: None,
        }
    }

    #[test]
    fn closed_loop_serves_every_request_exactly_once() {
        let mut generator = RequestGenerator::new(24, 1.0, 5);
        let payloads = generator.payloads(100);
        let (report, responses) =
            serve_closed_loop(session(Backend::TileWise), quick_config(2), payloads);
        assert_eq!(report.completed, 100);
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<u64>>());
        assert_eq!(report.latency.count, 100);
        assert!(report.latency.p50_s <= report.latency.p95_s);
        assert!(report.latency.p95_s <= report.latency.p99_s);
        assert!(report.latency.p99_s <= report.latency.max_s);
        assert!(report.throughput_rps() > 0.0);
        assert!(report.mean_batch_size() >= 1.0);
        assert_eq!(report.workers.len(), 2);
        assert_eq!(report.backend_plan, vec!["tile-wise", "tile-wise"]);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let server = Server::start(session(Backend::Dense), quick_config(1));
        let id = server.submit(vec![0.0; 24]).unwrap();
        assert_eq!(id, 0);
        let queue = Arc::clone(&server.queue);
        let (report, _) = server.shutdown();
        assert_eq!(report.completed, 1);
        assert!(queue.is_closed());
    }

    #[test]
    #[should_panic(expected = "payload length")]
    fn malformed_payload_rejected_at_admission() {
        let server = Server::start(session(Backend::Dense), quick_config(1));
        let _ = server.submit(vec![0.0; 3]);
    }

    #[test]
    fn drain_responses_streams_results() {
        let server = Server::start(session(Backend::TileWise), quick_config(1));
        for _ in 0..10 {
            server.submit(vec![0.25; 24]).unwrap();
        }
        // Poll until the pipeline has pushed everything through.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut drained = Vec::new();
        while drained.len() < 10 && Instant::now() < deadline {
            drained.extend(server.drain_responses());
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(drained.len(), 10, "pipeline stalled");
        let (report, late) = server.shutdown();
        // Responses already streamed out stay accounted for in the report.
        assert!(late.is_empty(), "everything was already drained");
        assert_eq!(report.completed, 10);
        assert_eq!(report.latency.count, 10);
    }

    #[test]
    fn gpu_dwell_overlaps_across_workers() {
        // With a dwell that dominates CPU time, quadrupling the workers must
        // cut wall time noticeably — the core serving-tier property.
        let mut generator = RequestGenerator::new(24, 1.0, 9);
        let payloads = generator.payloads(64);
        let dwell_cfg = |workers| ServeConfig {
            workers,
            max_batch_size: 4,
            max_batch_wait: Duration::from_millis(1),
            queue_capacity: 64,
            // Huge scale so the modelled microsecond batches dwell ~ms.
            gpu_dwell: Some(GpuDwell { time_scale: 2e3 }),
        };
        let (one, _) =
            serve_closed_loop(session(Backend::TileWise), dwell_cfg(1), payloads.clone());
        let (four, _) = serve_closed_loop(session(Backend::TileWise), dwell_cfg(4), payloads);
        assert_eq!(one.completed, 64);
        assert_eq!(four.completed, 64);
        assert!(
            four.wall.as_secs_f64() < one.wall.as_secs_f64() * 0.7,
            "4 workers {:?} should beat 1 worker {:?} by >30%",
            four.wall,
            one.wall
        );
    }
}
