//! `tw-serve` — a batched sparse-inference serving runtime with SLO-aware
//! admission control.
//!
//! The rest of the workspace reproduces the paper's *offline* story: prune a
//! model tile-wise, compact the weights, plan the kernels, price them on the
//! GPU cost model.  This crate adds the *online* layer a production system
//! needs — accepting a stream of inference requests (closed-loop or
//! open-loop, uniform or heavy-tailed) and turning it into batched sparse
//! kernel executions with bounded latency:
//!
//! ```text
//!  submit / submit_to       +------------------+
//!  ---> AdmissionController |    SloBatcher    |   worker 0 ── forward_batch (TW/CSR/dense)
//!  ---> PriorityQueue       | size / wait / SLO| → worker 1 ──   + simulated GPU dwell
//!  ---> (shed or backpress.)|   early close    |   worker N ── responses → ServeReport
//! ```
//!
//! * [`admission::AdmissionController`] — SLO-aware load shedding: refuses
//!   requests when queue depth, cost-model-predicted wait, or a hopeless
//!   class deadline says admitting them would only burn capacity.  Every
//!   shed is recorded; ids are never silently dropped.
//! * [`queue::PriorityQueue`] — the admission path: multi-producer,
//!   multi-consumer, bounded, closable, with one FIFO lane per request
//!   class served in strict priority order (interactive jumps batch).
//! * [`batcher::SloBatcher`] — groups requests into batches of at most
//!   `max_batch_size`, waiting at most `max_batch_wait` after the batch
//!   head arrives — and closes *early* when a member's deadline leaves no
//!   slack for the predicted batch execution time.
//! * [`pool::WorkerPool`] — N threads, each executing whole batches on a
//!   shared [`tilewise::InferenceSession`] whose layers each run their own
//!   [`tilewise::KernelBackend`], then dwelling for the batch's simulated
//!   device time so pool-level overlap behaves like a real
//!   accelerator-backed tier.
//! * [`stats::ServeReport`] — overall and per-class latency percentiles,
//!   throughput, *goodput* (completions within SLO), shed rates, batch-size
//!   and per-worker counters, plus the per-layer backend plan.
//!
//! The [`Server`] ties these together; [`serve_closed_loop`] submits a
//! fixed payload list under blocking backpressure (peak-throughput
//! benchmarks), while [`serve_open_loop`] replays a `tw-models`
//! [`Arrival`] schedule on its own clock (traffic scenarios: steady,
//! bursty, heavy-tailed, mixed-priority).
//!
//! Everything is deterministic except scheduling: responses carry request
//! ids, and the batched sparse outputs equal per-request dense inference
//! within kernel tolerance (pinned by `tests/serving_end_to_end.rs`).

pub mod admission;
pub mod batcher;
pub mod config;
pub mod pool;
pub mod queue;
pub mod request;
pub mod stats;

pub use admission::AdmissionController;
pub use batcher::SloBatcher;
pub use config::{AdmissionConfig, ClassPolicy, GpuDwell, MemoryConfig, ServeConfig};
pub use pool::{ModelRuntime, WorkerPool};
pub use queue::{Pop, PriorityQueue, PushError};
pub use request::{ClassId, InferenceRequest, InferenceResponse, ModelId, ShedReason, ShedRecord};
pub use stats::{ClassStats, LatencySummary, ModelStats, RunObservation, ServeReport, WorkerStats};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;
use tilewise::{DwellModel, InferenceSession};
use tw_gpu_sim::TransferCost;
use tw_memory::{CacheStats, MemoryPool, ModelRegistry, TileCache};
use tw_models::Arrival;

/// Outcome of one [`Server::submit_to`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The request was queued and will be served; the id will appear in a
    /// response.
    Admitted(u64),
    /// The request was refused; the id appears in the report's shed log.
    Shed(ShedRecord),
}

impl Admission {
    /// The id assigned to the submission, admitted or not.
    pub fn id(&self) -> u64 {
        match self {
            Admission::Admitted(id) => *id,
            Admission::Shed(record) => record.id,
        }
    }
}

/// A running serving instance: submit requests, then shut down for a report.
pub struct Server {
    /// The hosted models, indexed by [`ModelId`] (registry order).
    models: Arc<Vec<ModelRuntime>>,
    /// The VRAM residency manager; `None` models eternally-resident
    /// weights (the single-model legacy behavior).
    memory: Option<Arc<Mutex<TileCache>>>,
    queue: Arc<PriorityQueue<InferenceRequest>>,
    pool: WorkerPool,
    admission: AdmissionController,
    classes: Vec<ClassPolicy>,
    responses: Mutex<Receiver<InferenceResponse>>,
    // Observations of responses already handed out via `drain_responses`,
    // so the final report still covers the whole run.
    drained: Mutex<Vec<RunObservation>>,
    // Every shed submission, in shed order: sheds are recorded outcomes.
    shed: Mutex<Vec<ShedRecord>>,
    // Kept so the response channel outlives the workers; dropped in
    // `shutdown` so the final drain terminates.
    _response_tx: Sender<InferenceResponse>,
    next_id: AtomicU64,
    admitted: AtomicU64,
    started: Instant,
}

impl Server {
    /// Starts the queue, batcher and worker pool for a single `session`
    /// hosted as model 0 (named `default`).  With
    /// [`ServeConfig::memory`] set, even a single model is served through
    /// the tile cache — its first batches page weights in.
    ///
    /// # Panics
    /// Panics if `config` is invalid (see [`ServeConfig::validate`]).
    pub fn start(session: Arc<InferenceSession>, config: ServeConfig) -> Self {
        let page_bytes = config.memory.map_or(ModelRegistry::DEFAULT_PAGE_BYTES, |m| m.page_bytes);
        let mut registry = ModelRegistry::with_page_bytes(page_bytes);
        registry.register("default", 1, session);
        Self::start_registry(registry, config)
    }

    /// Starts a multi-model server hosting every model in `registry`.
    /// Requests carry a [`ModelId`] (see [`Server::submit_model`]); batches
    /// are model-pure; and with [`ServeConfig::memory`] set the models
    /// share one VRAM budget, paging weight tiles on demand with the
    /// transfer time charged to the batch that missed.
    ///
    /// All hosted models are priced on model 0's device profile (one
    /// server simulates one accelerator).
    ///
    /// # Panics
    /// Panics if `config` is invalid or the registry is empty.
    pub fn start_registry(registry: ModelRegistry, config: ServeConfig) -> Self {
        config.validate();
        assert!(!registry.is_empty(), "a server needs at least one registered model");
        let memory_active = config.memory.is_some();
        let models: Vec<ModelRuntime> = registry
            .iter()
            .map(|(_, entry)| ModelRuntime {
                name: format!("{}@v{}", entry.name(), entry.version()),
                session: Arc::clone(entry.session()),
                dwell: entry.session().dwell_model(config.max_batch_size),
                tiles: if memory_active { entry.tiles().to_vec() } else { Vec::new() },
            })
            .collect();
        let memory = config.memory.map(|mem| {
            let device = models[0].session.device();
            let vram = mem.vram_bytes.unwrap_or(device.vram_bytes);
            Arc::new(Mutex::new(TileCache::new(
                MemoryPool::new(vram),
                TransferCost::of(device),
                mem.policy.build(),
            )))
        });
        let models = Arc::new(models);
        let queue = Arc::new(PriorityQueue::new(config.classes.len(), config.queue_capacity));
        // One cost-model pricing pass up front; admission control and the
        // batcher's SLO early-close both schedule against this table.  With
        // several hosted models the admission table is the per-batch-size
        // *worst case* across them — conservative for every model.
        let dwell_model = worst_case_dwell(&models, config.max_batch_size);
        let admission = AdmissionController::new(&config, &dwell_model);
        let batcher = Arc::new(SloBatcher::new(
            Arc::clone(&queue),
            config.max_batch_size,
            config.max_batch_wait,
            admission.predicted_execution(),
        ));
        let (tx, rx) = mpsc::channel();
        let pool =
            WorkerPool::spawn(Arc::clone(&models), memory.clone(), batcher, &config, tx.clone());
        Self {
            models,
            memory,
            queue,
            pool,
            admission,
            classes: config.classes,
            responses: Mutex::new(rx),
            drained: Mutex::new(Vec::new()),
            shed: Mutex::new(Vec::new()),
            _response_tx: tx,
            next_id: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// The served model (model 0 — the only one on a single-model server).
    pub fn session(&self) -> &Arc<InferenceSession> {
        &self.models[0].session
    }

    /// Number of hosted models.
    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    /// The hosted model names (`name@vN`), in [`ModelId`] order.
    pub fn model_names(&self) -> Vec<String> {
        self.models.iter().map(|m| m.name.clone()).collect()
    }

    /// Fraction of `model`'s weight bytes currently resident in VRAM — the
    /// *warmth* probe residency-aware cluster routing ranks replicas by.
    /// `1.0` when memory management is off (everything is always resident).
    ///
    /// # Panics
    /// Panics if `model` is out of range.
    pub fn model_warm_fraction(&self, model: ModelId) -> f64 {
        let tiles = &self.models[model].tiles;
        match &self.memory {
            Some(cache) => cache.lock().expect("tile cache poisoned").resident_fraction(tiles),
            None => 1.0,
        }
    }

    /// Snapshot of the tile cache's lifetime counters; `None` when memory
    /// management is off.
    pub fn memory_stats(&self) -> Option<CacheStats> {
        self.memory.as_ref().map(|cache| cache.lock().expect("tile cache poisoned").stats())
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.len()
    }

    /// The configured request classes, in priority order.
    pub fn classes(&self) -> &[ClassPolicy] {
        &self.classes
    }

    /// Submits one request of the default class (0), blocking while the
    /// queue is full — the closed-loop path.  Returns the assigned request
    /// id, or `Err` if the server is shutting down.
    ///
    /// # Panics
    /// Panics if the payload length does not match the model's input dim,
    /// or if admission control is active (an open-loop server sheds instead
    /// of blocking — use [`Server::submit_to`]).
    pub fn submit(&self, payload: Vec<f32>) -> Result<u64, ServerClosed> {
        assert!(
            !self.admission.is_active(),
            "blocking submit() is the closed-loop path; with admission control active use submit_to()"
        );
        match self.submit_to(0, payload)? {
            Admission::Admitted(id) => Ok(id),
            Admission::Shed(_) => unreachable!("inactive admission never sheds"),
        }
    }

    /// Submits one request of `class` against the default model (0).  See
    /// [`Server::submit_model`].
    ///
    /// # Panics
    /// Panics if `class` is out of range or the payload length does not
    /// match model 0's input dim.
    pub fn submit_to(&self, class: ClassId, payload: Vec<f32>) -> Result<Admission, ServerClosed> {
        self.submit_model(0, class, payload)
    }

    /// Submits one request of `class` against `model`.  With admission
    /// control inactive this blocks while the queue is full
    /// (backpressure); with it active the call never blocks — the request
    /// is either queued or *shed*, and every shed is recorded in the final
    /// report's shed log.  `Err` only once shutdown has begun.
    ///
    /// # Panics
    /// Panics if `class` or `model` is out of range, or the payload length
    /// does not match that model's input dim — malformed requests are
    /// rejected at admission instead of inside a worker.
    pub fn submit_model(
        &self,
        model: ModelId,
        class: ClassId,
        payload: Vec<f32>,
    ) -> Result<Admission, ServerClosed> {
        assert!(class < self.classes.len(), "class {class} out of range");
        assert!(model < self.models.len(), "model {model} out of range");
        assert_eq!(
            payload.len(),
            self.models[model].session.input_dim(),
            "request payload length must match the model input dim"
        );
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let policy = &self.classes[class];
        if self.admission.is_active() {
            let (total_depth, depth_ahead) = self.queue.depths(class);
            if let Some(reason) = self.admission.decide(total_depth, depth_ahead, policy) {
                return Ok(Admission::Shed(self.record_shed(id, class, reason)));
            }
            let request = InferenceRequest::for_model(id, model, payload, class, policy.deadline);
            return match self.queue.try_push(class, request) {
                Ok(()) => {
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    Ok(Admission::Admitted(id))
                }
                // Raced other producers past the depth check: the queue
                // itself is the last line of defense; shed, don't block.
                Err(PushError::Full(_)) => {
                    Ok(Admission::Shed(self.record_shed(id, class, ShedReason::QueueFull)))
                }
                Err(PushError::Closed(_)) => Err(ServerClosed),
            };
        }
        let request = InferenceRequest::for_model(id, model, payload, class, policy.deadline);
        match self.queue.push(class, request) {
            Ok(()) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(Admission::Admitted(id))
            }
            Err(_) => Err(ServerClosed),
        }
    }

    fn record_shed(&self, id: u64, class: ClassId, reason: ShedReason) -> ShedRecord {
        let record = ShedRecord { id, class, reason };
        self.shed.lock().expect("shed log poisoned").push(record);
        record
    }

    /// Number of requests shed so far.
    pub fn shed_so_far(&self) -> usize {
        self.shed.lock().expect("shed log poisoned").len()
    }

    /// Current total queue depth (the admission controller's input).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// `(total queue depth, depth ahead of a new arrival of `class`)` under
    /// one lock — the routing probe a multi-replica load balancer polls.
    /// The second component counts the backlog in lanes of the same or
    /// higher priority, which under strict priority is what the arrival
    /// would actually wait behind.
    ///
    /// # Panics
    /// Panics if `class` is out of range.
    pub fn class_depths(&self, class: ClassId) -> (usize, usize) {
        self.queue.depths(class)
    }

    /// Cost-model-predicted wall-clock wait a new `class` arrival would
    /// face behind the current backlog, priced by the session's
    /// [`tilewise::DwellModel`] and this server's batch size, worker count
    /// and dwell scale.  Zero when the server dwells no simulated device
    /// time (the prediction has nothing to price).  This is the probe the
    /// cluster layer's cost-aware balancer ranks replicas with.
    ///
    /// # Panics
    /// Panics if `class` is out of range.
    pub fn predicted_wait(&self, class: ClassId) -> std::time::Duration {
        self.routing_probe(class).2
    }

    /// The whole routing snapshot — `(total depth, depth ahead of a new
    /// `class` arrival, predicted wait for that backlog)` — with the queue
    /// lock taken once.  A cluster router polls every replica per
    /// submission, so this is the hot-path form of
    /// [`Server::class_depths`] + [`Server::predicted_wait`].
    ///
    /// # Panics
    /// Panics if `class` is out of range.
    pub fn routing_probe(&self, class: ClassId) -> (usize, usize, std::time::Duration) {
        let (total, ahead) = self.queue.depths(class);
        (total, ahead, self.admission.predicted_wait(ahead))
    }

    /// Number of requests admitted so far (completed or in flight).
    pub fn admitted_so_far(&self) -> usize {
        self.admitted.load(Ordering::Relaxed) as usize
    }

    /// Non-blocking drain of responses completed so far.  Drained responses
    /// remain accounted for in the final [`ServeReport`].
    pub fn drain_responses(&self) -> Vec<InferenceResponse> {
        let drained: Vec<InferenceResponse> =
            self.responses.lock().expect("response receiver poisoned").try_iter().collect();
        self.drained
            .lock()
            .expect("observation log poisoned")
            .extend(drained.iter().map(RunObservation::of));
        drained
    }

    /// Stops admission, drains in-flight work deterministically, and
    /// returns the whole run's report plus the responses not previously
    /// handed out by [`Server::drain_responses`].
    ///
    /// # Ordering guarantee
    ///
    /// Shutdown is a strict four-step sequence, so the report is complete
    /// and reproducible regardless of scheduling:
    ///
    /// 1. The queue is **closed**: concurrent and later submissions fail
    ///    with [`ServerClosed`] (no new ids enter the system).
    /// 2. The worker pool is **joined**: workers keep popping until the
    ///    closed queue is drained, so every admitted request's response has
    ///    been sent before any worker exits.
    /// 3. The response channel is **drained**: the server's own sender is
    ///    dropped after the join, so iteration observes every in-flight
    ///    response, then terminates — it cannot race a straggling worker.
    /// 4. The **report** is computed over drained + final observations and
    ///    the shed log.  Every admitted id has exactly one response
    ///    (asserted), and `completed + shed` equals the number of
    ///    submissions the server accepted an id for.
    pub fn shutdown(self) -> (ServeReport, Vec<InferenceResponse>) {
        // Step 1: stop admission; queued items remain poppable.
        self.queue.close();
        // Step 2: workers drain the queue and exit; all sends happen-before
        // this join returns.
        let worker_stats = self.pool.join();
        // Step 3: hang up our own sender so the drain terminates.
        drop(self._response_tx);
        let receiver = self.responses.into_inner().expect("response receiver poisoned");
        let responses: Vec<InferenceResponse> = receiver.iter().collect();
        // Step 4: the report covers the whole run.
        let mut observations = self.drained.into_inner().expect("observation log poisoned");
        observations.extend(responses.iter().map(RunObservation::of));
        let shed = self.shed.into_inner().expect("shed log poisoned");
        let admitted = self.admitted.load(Ordering::Relaxed) as usize;
        assert_eq!(
            observations.len(),
            admitted,
            "every admitted request must complete exactly once"
        );
        let backend_plan =
            self.models[0].session.layer_backends().iter().map(|name| name.to_string()).collect();
        let mut report = ServeReport::from_observations(
            &observations,
            &shed,
            &self.classes,
            self.started.elapsed(),
            worker_stats,
        )
        .with_backend_plan(backend_plan);
        // Per-model cold-start rows, whenever paging or multi-tenancy is in
        // play (single-model no-memory reports keep the legacy shape).
        if self.memory.is_some() || self.models.len() > 1 {
            let paging = self
                .memory
                .as_ref()
                .map(|cache| cache.lock().expect("tile cache poisoned").model_stats().clone())
                .unwrap_or_default();
            let model_stats = self
                .models
                .iter()
                .enumerate()
                .map(|(id, runtime)| {
                    let warm: Vec<f64> = observations
                        .iter()
                        .filter(|o| o.model == id && !o.cold)
                        .map(|o| o.latency_s)
                        .collect();
                    let cold: Vec<f64> = observations
                        .iter()
                        .filter(|o| o.model == id && o.cold)
                        .map(|o| o.latency_s)
                        .collect();
                    let paged = paging.get(&id).cloned().unwrap_or_default();
                    ModelStats {
                        model: id,
                        name: runtime.name.clone(),
                        completed: warm.len() + cold.len(),
                        cold: cold.len(),
                        warm_latency: LatencySummary::from_samples(warm),
                        cold_latency: LatencySummary::from_samples(cold),
                        tile_hits: paged.hits,
                        tile_misses: paged.misses,
                        bytes_paged: paged.bytes_transferred,
                        transfer_sim_s: paged.transfer_seconds,
                    }
                })
                .collect();
            report = report.with_model_stats(model_stats);
        }
        (report, responses)
    }
}

/// The admission/batcher dwell table of a multi-model server: the
/// per-batch-size worst case across every hosted model, so wait prediction
/// and SLO early-close stay conservative for all of them.
fn worst_case_dwell(models: &[ModelRuntime], max_batch: usize) -> DwellModel {
    DwellModel::from_seconds(
        (1..=max_batch)
            .map(|b| models.iter().map(|m| m.dwell.seconds_for(b)).fold(0.0, f64::max))
            .collect(),
    )
}

/// Error returned by [`Server::submit`] once shutdown has begun.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerClosed;

impl std::fmt::Display for ServerClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server is shutting down; request rejected")
    }
}

impl std::error::Error for ServerClosed {}

/// Closed-loop harness: submit every payload (blocking on backpressure),
/// then shut down and report.  This is what the peak-throughput benchmark
/// and the example drive.
pub fn serve_closed_loop(
    session: Arc<InferenceSession>,
    config: ServeConfig,
    payloads: Vec<Vec<f32>>,
) -> (ServeReport, Vec<InferenceResponse>) {
    let server = Server::start(session, config);
    for payload in payloads {
        server.submit(payload).expect("closed-loop submit before shutdown");
    }
    server.shutdown()
}

/// Open-loop harness: replay a `tw-models` traffic schedule on its own
/// clock — each [`Arrival`] is submitted at its offset from the start of
/// the run — then shut down and report.  Requests refused by admission
/// control appear in the report's shed accounting; the submission loop
/// never blocks on them.
///
/// The open-loop contract holds exactly when admission control is active
/// (submission then never blocks).  With admission *inactive*, a full
/// queue falls back to blocking backpressure ([`Server::submit_to`]'s
/// documented behavior), and arrivals behind the stall slip later than
/// their scheduled offsets — so size `queue_capacity` for the offered
/// load, or activate admission, when the arrival clock must be honored
/// under overload.
///
/// # Panics
/// Panics if an arrival's class is outside the configured class list or a
/// payload does not match the model's input dim.
pub fn serve_open_loop(
    session: Arc<InferenceSession>,
    config: ServeConfig,
    schedule: &[Arrival],
) -> (ServeReport, Vec<InferenceResponse>) {
    let server = Server::start(session, config);
    let started = Instant::now();
    for arrival in schedule {
        let target = started + arrival.at;
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        server
            .submit_to(arrival.class, arrival.payload.clone())
            .expect("open-loop submit before shutdown");
    }
    server.shutdown()
}

/// [`serve_closed_loop`] over a multi-model registry: payload `i` targets
/// `assignment[i % assignment.len()]` under blocking backpressure.  The
/// same backpressure contract as the single-model harness applies.
///
/// # Panics
/// Panics on an empty assignment, or payloads/models that do not fit the
/// registry (see [`Server::submit_model`]).
pub fn serve_closed_loop_models(
    registry: ModelRegistry,
    config: ServeConfig,
    payloads: Vec<Vec<f32>>,
    assignment: &[ModelId],
) -> (ServeReport, Vec<InferenceResponse>) {
    assert!(!assignment.is_empty(), "model assignment cannot be empty");
    let server = Server::start_registry(registry, config);
    for (i, payload) in payloads.into_iter().enumerate() {
        server
            .submit_model(assignment[i % assignment.len()], 0, payload)
            .expect("closed-loop submit before shutdown");
    }
    server.shutdown()
}

/// [`serve_open_loop`] over a multi-model registry: arrival `i` targets
/// `assignment[i % assignment.len()]` at its scheduled offset.  The same
/// arrival-clock caveat as the single-model harness applies: activate
/// admission control, or size `queue_capacity` for the offered load, when
/// the clock must be honored under overload.
///
/// # Panics
/// Panics on an empty assignment, or arrivals whose class, model or
/// payload does not fit the config.
pub fn serve_open_loop_models(
    registry: ModelRegistry,
    config: ServeConfig,
    schedule: &[Arrival],
    assignment: &[ModelId],
) -> (ServeReport, Vec<InferenceResponse>) {
    assert!(!assignment.is_empty(), "model assignment cannot be empty");
    let server = Server::start_registry(registry, config);
    let started = Instant::now();
    for (i, arrival) in schedule.iter().enumerate() {
        let target = started + arrival.at;
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        server
            .submit_model(assignment[i % assignment.len()], arrival.class, arrival.payload.clone())
            .expect("open-loop submit before shutdown");
    }
    server.shutdown()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tilewise::Backend;
    use tw_models::{RequestGenerator, TrafficSpec};

    fn session(backend: Backend) -> Arc<InferenceSession> {
        Arc::new(InferenceSession::synthetic_chain(&[24, 32, 12], 0.5, 8, 17, backend))
    }

    fn quick_config(workers: usize) -> ServeConfig {
        ServeConfig {
            workers,
            max_batch_size: 8,
            max_batch_wait: Duration::from_millis(1),
            queue_capacity: 64,
            gpu_dwell: None,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn closed_loop_serves_every_request_exactly_once() {
        let mut generator = RequestGenerator::new(24, 1.0, 5);
        let payloads = generator.payloads(100);
        let (report, responses) =
            serve_closed_loop(session(Backend::TileWise), quick_config(2), payloads);
        assert_eq!(report.completed, 100);
        assert_eq!(report.shed, 0);
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<u64>>());
        assert_eq!(report.latency.count, 100);
        assert!(report.latency.p50_s <= report.latency.p95_s);
        assert!(report.latency.p95_s <= report.latency.p99_s);
        assert!(report.latency.p99_s <= report.latency.max_s);
        assert!(report.throughput_rps() > 0.0);
        assert_eq!(report.goodput_rps(), report.throughput_rps());
        assert!(report.mean_batch_size() >= 1.0);
        assert_eq!(report.workers.len(), 2);
        assert_eq!(report.backend_plan, vec!["tile-wise", "tile-wise"]);
        // Default config: one best-effort class holding every completion.
        assert_eq!(report.classes.len(), 1);
        assert_eq!(report.classes[0].completed, 100);
        assert_eq!(report.classes[0].good, 100);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let server = Server::start(session(Backend::Dense), quick_config(1));
        let id = server.submit(vec![0.0; 24]).unwrap();
        assert_eq!(id, 0);
        let queue = Arc::clone(&server.queue);
        let (report, _) = server.shutdown();
        assert_eq!(report.completed, 1);
        assert!(queue.is_closed());
    }

    #[test]
    #[should_panic(expected = "payload length")]
    fn malformed_payload_rejected_at_admission() {
        let server = Server::start(session(Backend::Dense), quick_config(1));
        let _ = server.submit(vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_class_rejected_at_admission() {
        let server = Server::start(session(Backend::Dense), quick_config(1));
        let _ = server.submit_to(3, vec![0.0; 24]);
    }

    #[test]
    fn drain_responses_streams_results() {
        let server = Server::start(session(Backend::TileWise), quick_config(1));
        for _ in 0..10 {
            server.submit(vec![0.25; 24]).unwrap();
        }
        // Poll until the pipeline has pushed everything through.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut drained = Vec::new();
        while drained.len() < 10 && Instant::now() < deadline {
            drained.extend(server.drain_responses());
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(drained.len(), 10, "pipeline stalled");
        let (report, late) = server.shutdown();
        // Responses already streamed out stay accounted for in the report.
        assert!(late.is_empty(), "everything was already drained");
        assert_eq!(report.completed, 10);
        assert_eq!(report.latency.count, 10);
    }

    #[test]
    fn routing_probes_track_backlog_and_price_it() {
        // A huge dwell with one worker: submissions pile up behind the
        // first batch, so the probes must see the backlog grow — and the
        // interactive lane must report less depth ahead than the batch lane.
        let config = ServeConfig {
            workers: 1,
            max_batch_size: 4,
            max_batch_wait: Duration::from_millis(1),
            queue_capacity: 256,
            gpu_dwell: Some(GpuDwell { time_scale: 5e4 }),
            classes: vec![
                ClassPolicy::with_deadline("interactive", Duration::from_secs(30)),
                ClassPolicy::best_effort("batch"),
            ],
            ..ServeConfig::default()
        };
        let server = Server::start(session(Backend::TileWise), config);
        for _ in 0..40 {
            server.submit_to(1, vec![0.1; 24]).unwrap();
        }
        let (total, batch_ahead) = server.class_depths(1);
        let (_, interactive_ahead) = server.class_depths(0);
        assert!(total >= 30, "backlog should be visible, saw {total}");
        assert!(interactive_ahead < batch_ahead, "interactive lane jumps the batch wall");
        // The cost-aware probe prices the backlog: a batch-lane arrival
        // waits behind full batches, an interactive arrival behind none.
        assert!(server.predicted_wait(1) > Duration::ZERO);
        assert_eq!(server.predicted_wait(0), Duration::ZERO);
        assert_eq!(server.admitted_so_far(), 40);
        let (report, _) = server.shutdown();
        assert_eq!(report.completed, 40);
    }

    #[test]
    fn gpu_dwell_overlaps_across_workers() {
        // With a dwell that dominates CPU time, quadrupling the workers must
        // cut wall time noticeably — the core serving-tier property.
        let mut generator = RequestGenerator::new(24, 1.0, 9);
        let payloads = generator.payloads(64);
        let dwell_cfg = |workers| ServeConfig {
            workers,
            max_batch_size: 4,
            max_batch_wait: Duration::from_millis(1),
            queue_capacity: 64,
            // Huge scale so the modelled microsecond batches dwell ~ms.
            gpu_dwell: Some(GpuDwell { time_scale: 2e3 }),
            ..ServeConfig::default()
        };
        let (one, _) =
            serve_closed_loop(session(Backend::TileWise), dwell_cfg(1), payloads.clone());
        let (four, _) = serve_closed_loop(session(Backend::TileWise), dwell_cfg(4), payloads);
        assert_eq!(one.completed, 64);
        assert_eq!(four.completed, 64);
        assert!(
            four.wall.as_secs_f64() < one.wall.as_secs_f64() * 0.7,
            "4 workers {:?} should beat 1 worker {:?} by >30%",
            four.wall,
            one.wall
        );
    }

    #[test]
    fn overloaded_open_loop_sheds_but_never_loses_ids() {
        // A tiny shed threshold under a fast schedule: many submissions
        // must shed, and completed + shed must cover every issued id.
        let spec = TrafficSpec::steady(4000.0, Duration::from_millis(30), 200, 24, 3);
        let schedule = spec.schedule();
        let config = ServeConfig {
            workers: 1,
            max_batch_size: 4,
            max_batch_wait: Duration::from_millis(1),
            queue_capacity: 64,
            gpu_dwell: Some(GpuDwell { time_scale: 5e3 }),
            admission: AdmissionConfig { max_queue_depth: Some(8), ..Default::default() },
            ..ServeConfig::default()
        }
        .with_traffic_classes(&spec.classes);
        let (report, responses) = serve_open_loop(session(Backend::TileWise), config, &schedule);
        assert_eq!(report.completed + report.shed, 200, "no submission may vanish");
        assert!(report.shed > 0, "overload must shed under a depth bound of 8");
        assert!(report.completed > 0, "admitted requests must still be served");
        assert_eq!(responses.len(), report.completed);
        assert!(report.shed_rate() > 0.0);
        let by_class: usize = report.classes.iter().map(|c| c.submitted()).sum();
        assert_eq!(by_class, 200, "per-class breakdown covers the whole run");
    }

    #[test]
    #[should_panic(expected = "closed-loop path")]
    fn blocking_submit_rejected_under_admission_control() {
        let config = ServeConfig {
            admission: AdmissionConfig { max_queue_depth: Some(32), ..Default::default() },
            ..quick_config(1)
        };
        let server = Server::start(session(Backend::Dense), config);
        let _ = server.submit(vec![0.0; 24]);
    }
}
