//! A bounded, closable, priority-aware MPMC queue — the admission path.
//!
//! `std::sync::mpsc` channels are single-consumer and unbounded (or
//! rendezvous when bounded), neither of which fits a serving queue: many
//! workers pop concurrently, submitters must feel backpressure when the
//! system is saturated, and shutdown must let workers drain what is already
//! queued.  On top of that, an SLO-aware server cannot serve one FIFO: an
//! interactive request arriving behind a wall of batch work would inherit
//! the whole backlog's wait.  [`PriorityQueue`] therefore keeps one FIFO
//! *lane per class* under a single capacity bound: pops always drain the
//! highest-priority non-empty lane (strict priority — lane 0 first), FIFO
//! within a lane.  A one-lane queue degenerates to exactly the plain
//! bounded FIFO it replaced.
//!
//! Strict priority means sustained interactive overload can starve batch
//! lanes; that is the intended SLO trade and is bounded in practice by the
//! admission controller shedding load before the queue wedges.
//!
//! Producers choose per push: [`PriorityQueue::push`] blocks while full
//! (closed-loop backpressure), [`PriorityQueue::try_push`] refuses instead
//! (the open-loop admission path, which must never block the arrival clock).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Result of a pop attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The queue stayed empty for the whole timeout (but is still open).
    TimedOut,
    /// The queue is closed and fully drained; no item will ever arrive.
    Closed,
}

/// Why a [`PriorityQueue::try_push`] was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was at capacity; the item is handed back.
    Full(T),
    /// The queue is closed; the item is handed back.
    Closed(T),
}

struct State<T> {
    lanes: Vec<VecDeque<T>>,
    len: usize,
    closed: bool,
}

/// A bounded multi-producer multi-consumer priority queue with close
/// semantics.  See the module docs for the scheduling discipline.
pub struct PriorityQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> PriorityQueue<T> {
    /// A queue with `lanes` priority lanes holding at most `capacity` items
    /// in total.
    ///
    /// # Panics
    /// Panics if `capacity` or `lanes` is zero.
    pub fn new(lanes: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(lanes > 0, "queue needs at least one priority lane");
        Self {
            state: Mutex::new(State {
                lanes: (0..lanes).map(|_| VecDeque::new()).collect(),
                len: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item` on `lane`, blocking while the queue is full.  Returns
    /// the item back as `Err` if the queue has been closed.
    ///
    /// # Panics
    /// Panics if `lane` is out of range.
    pub fn push(&self, lane: usize, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        assert!(lane < state.lanes.len(), "lane {lane} out of range");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.len < self.capacity {
                state.lanes[lane].push_back(item);
                state.len += 1;
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue lock poisoned");
        }
    }

    /// Non-blocking enqueue: refuses (handing the item back) instead of
    /// blocking when the queue is full — the open-loop admission path.
    ///
    /// # Panics
    /// Panics if `lane` is out of range.
    pub fn try_push(&self, lane: usize, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        assert!(lane < state.lanes.len(), "lane {lane} out of range");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.len >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.lanes[lane].push_back(item);
        state.len += 1;
        self.not_empty.notify_one();
        Ok(())
    }

    fn pop_front(state: &mut State<T>) -> Option<T> {
        for lane in &mut state.lanes {
            if let Some(item) = lane.pop_front() {
                state.len -= 1;
                return Some(item);
            }
        }
        None
    }

    /// Dequeues from the highest-priority non-empty lane, immediately if an
    /// item is available.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        let item = Self::pop_front(&mut state);
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Dequeues from lanes *strictly higher priority* than `lane`
    /// (`0..lane`), immediately if such an item is available — the probe a
    /// consumer holding lower-priority deferred work uses to keep strict
    /// priority intact.  `lane == 0` can never yield anything.
    ///
    /// # Panics
    /// Panics if `lane` exceeds the lane count.
    pub fn try_pop_before(&self, lane: usize) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        assert!(lane <= state.lanes.len(), "lane {lane} out of range");
        for higher in &mut state.lanes[..lane] {
            if let Some(item) = higher.pop_front() {
                state.len -= 1;
                self.not_full.notify_one();
                return Some(item);
            }
        }
        None
    }

    /// Dequeues, waiting up to `timeout` for an item.  Items still queued at
    /// close time are drained before [`Pop::Closed`] is reported.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = Self::pop_front(&mut state) {
                self.not_full.notify_one();
                return Pop::Item(item);
            }
            if state.closed {
                return Pop::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Pop::TimedOut;
            }
            let (next, timed_out) =
                self.not_empty.wait_timeout(state, deadline - now).expect("queue lock poisoned");
            state = next;
            if timed_out.timed_out() && state.len == 0 && !state.closed {
                return Pop::TimedOut;
            }
        }
    }

    /// Closes the queue: subsequent pushes fail, queued items remain
    /// poppable, and blocked poppers wake up.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`PriorityQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock poisoned").closed
    }

    /// Number of queued items right now, across all lanes.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").len
    }

    /// Number of items queued in one lane right now.
    ///
    /// # Panics
    /// Panics if `lane` is out of range.
    pub fn lane_len(&self, lane: usize) -> usize {
        self.state.lock().expect("queue lock poisoned").lanes[lane].len()
    }

    /// `(total depth, depth through lane)` under one lock: the second
    /// component counts items in lanes `0..=lane` — the backlog served
    /// *before* a new arrival on `lane`, which is what wait prediction
    /// needs under strict priority.
    ///
    /// # Panics
    /// Panics if `lane` is out of range.
    pub fn depths(&self, lane: usize) -> (usize, usize) {
        let state = self.state.lock().expect("queue lock poisoned");
        assert!(lane < state.lanes.len(), "lane {lane} out of range");
        let through = state.lanes[..=lane].iter().map(VecDeque::len).sum();
        (state.len, through)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of priority lanes.
    pub fn lanes(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").lanes.len()
    }

    /// Maximum number of queued items across all lanes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn fifo(capacity: usize) -> PriorityQueue<u64> {
        PriorityQueue::new(1, capacity)
    }

    #[test]
    fn single_lane_is_fifo() {
        let q = fifo(8);
        for i in 0..5 {
            q.push(0, i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn pops_prefer_the_highest_priority_lane() {
        let q = PriorityQueue::new(3, 16);
        q.push(2, 20).unwrap();
        q.push(1, 10).unwrap();
        q.push(2, 21).unwrap();
        q.push(0, 0).unwrap();
        q.push(1, 11).unwrap();
        // Lane 0 first, then lane 1 FIFO, then lane 2 FIFO.
        let drained: Vec<u64> = std::iter::from_fn(|| q.try_pop()).collect();
        assert_eq!(drained, vec![0, 10, 11, 20, 21]);
        assert_eq!(q.lanes(), 3);
    }

    #[test]
    fn late_high_priority_overtakes_queued_low_priority() {
        let q = PriorityQueue::new(2, 16);
        for i in 0..4 {
            q.push(1, 100 + i).unwrap();
        }
        q.push(0, 1).unwrap();
        assert_eq!(q.depths(0), (5, 1), "one item is ahead of a new lane-0 arrival");
        assert_eq!(q.depths(1), (5, 5), "everything is ahead of a new lane-1 arrival");
        assert_eq!(q.try_pop(), Some(1), "interactive must jump the batch backlog");
        assert_eq!(q.lane_len(1), 4);
    }

    #[test]
    fn try_pop_before_only_yields_strictly_higher_priority() {
        let q = PriorityQueue::new(3, 16);
        q.push(1, 10).unwrap();
        q.push(2, 20).unwrap();
        // Nothing outranks lane 0; lane 1 work does not outrank itself.
        assert_eq!(q.try_pop_before(0), None);
        assert_eq!(q.try_pop_before(1), None);
        // Lane-1 work outranks a lane-2 holder.
        assert_eq!(q.try_pop_before(2), Some(10));
        assert_eq!(q.try_pop_before(2), None, "lane 2 itself is not eligible");
        assert_eq!(q.len(), 1);
        q.push(0, 0).unwrap();
        assert_eq!(q.try_pop_before(1), Some(0));
    }

    #[test]
    fn try_push_refuses_when_full_and_after_close() {
        let q = fifo(2);
        q.try_push(0, 1).unwrap();
        q.try_push(0, 2).unwrap();
        assert_eq!(q.try_push(0, 3), Err(PushError::Full(3)));
        q.close();
        assert_eq!(q.try_push(0, 4), Err(PushError::Closed(4)));
    }

    #[test]
    fn capacity_is_shared_across_lanes() {
        let q = PriorityQueue::new(2, 2);
        q.try_push(1, 10).unwrap();
        q.try_push(1, 11).unwrap();
        // The high-priority lane is empty but the *queue* is full.
        assert_eq!(q.try_push(0, 0), Err(PushError::Full(0)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_timeout_times_out_when_empty() {
        let q = fifo(4);
        let start = Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(20)), Pop::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = fifo(4);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        q.close();
        assert_eq!(q.push(0, 3), Err(3));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Closed);
    }

    #[test]
    fn full_queue_blocks_until_a_pop() {
        let q = Arc::new(fifo(2));
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let start = Instant::now();
                q.push(0, 3).unwrap();
                start.elapsed()
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.try_pop(), Some(1));
        let blocked_for = producer.join().unwrap();
        assert!(
            blocked_for >= Duration::from_millis(20),
            "producer should have blocked, blocked {blocked_for:?}"
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q: Arc<PriorityQueue<u32>> = Arc::new(PriorityQueue::new(1, 2));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_timeout(Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), Pop::Closed);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(PriorityQueue::new(2, 16));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        q.push((p % 2) as usize, p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    loop {
                        match q.pop_timeout(Duration::from_secs(10)) {
                            Pop::Item(v) => seen.push(v),
                            Pop::Closed => break,
                            Pop::TimedOut => panic!("starved"),
                        }
                    }
                    seen
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let mut expected: Vec<u64> =
            (0..4).flat_map(|p| (0..100).map(move |i| p * 1000 + i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: PriorityQueue<u8> = PriorityQueue::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "at least one priority lane")]
    fn zero_lanes_rejected() {
        let _: PriorityQueue<u8> = PriorityQueue::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_lane_rejected() {
        let q = fifo(4);
        let _ = q.push(1, 9);
    }
}
