//! A bounded, closable MPMC queue — the admission path of the server.
//!
//! `std::sync::mpsc` channels are single-consumer and unbounded (or
//! rendezvous when bounded), neither of which fits a serving queue: many
//! workers pop concurrently, submitters must feel backpressure when the
//! system is saturated, and shutdown must let workers drain what is already
//! queued.  This queue is a `Mutex<VecDeque>` with two condvars (not-empty /
//! not-full) and a closed flag.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Result of a pop attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The queue stayed empty for the whole timeout (but is still open).
    TimedOut,
    /// The queue is closed and fully drained; no item will ever arrive.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue with close semantics.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item`, blocking while the queue is full.  Returns the item
    /// back as `Err` if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue lock poisoned");
        }
    }

    /// Dequeues immediately if an item is available.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        let item = state.items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Dequeues, waiting up to `timeout` for an item.  Items still queued at
    /// close time are drained before [`Pop::Closed`] is reported.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Pop::Item(item);
            }
            if state.closed {
                return Pop::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Pop::TimedOut;
            }
            let (next, timed_out) =
                self.not_empty.wait_timeout(state, deadline - now).expect("queue lock poisoned");
            state = next;
            if timed_out.timed_out() && state.items.is_empty() && !state.closed {
                return Pop::TimedOut;
            }
        }
    }

    /// Closes the queue: subsequent pushes fail, queued items remain
    /// poppable, and blocked poppers wake up.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock poisoned").closed
    }

    /// Number of queued items right now.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn pop_timeout_times_out_when_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let start = Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(20)), Pop::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Closed);
    }

    #[test]
    fn full_queue_blocks_until_a_pop() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(1).unwrap();
        q.push(2).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let start = Instant::now();
                q.push(3).unwrap();
                start.elapsed()
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.try_pop(), Some(1));
        let blocked_for = producer.join().unwrap();
        assert!(
            blocked_for >= Duration::from_millis(20),
            "producer should have blocked, blocked {blocked_for:?}"
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(2));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_timeout(Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), Pop::Closed);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::new(16));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    loop {
                        match q.pop_timeout(Duration::from_secs(10)) {
                            Pop::Item(v) => seen.push(v),
                            Pop::Closed => break,
                            Pop::TimedOut => panic!("starved"),
                        }
                    }
                    seen
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let mut expected: Vec<u64> =
            (0..4).flat_map(|p| (0..100).map(move |i| p * 1000 + i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: BoundedQueue<u8> = BoundedQueue::new(0);
    }
}
