//! SLO-aware admission control: shed load the system cannot serve in time.
//!
//! Backpressure (blocking the submitter on a full queue) is the right
//! overload response for a closed loop, but an open-loop front-end cannot
//! block the world: requests keep arriving on their own clock, and queueing
//! everything just converts overload into unbounded latency for *every*
//! class.  The admission controller instead refuses work at the door, using
//! the same `tw-gpu-sim` cost model the planner prices kernels with:
//!
//! 1. **Depth** — shed once queue depth reaches the configured bound.
//! 2. **Predicted wait** — the *full* batches ahead of a new request (a
//!    trailing partial batch is one the request joins, not one it waits
//!    behind) cost `depth / max_batch` batch executions spread over the
//!    worker pool; each batch's wall time comes from the session's [`DwellModel`]
//!    scaled by the configured [`crate::GpuDwell`].  Under strict priority
//!    the depth that matters is the backlog in lanes of the same or higher
//!    priority, not the whole queue — an interactive request jumps any
//!    batch-lane wall.  Shed when that predicted wait exceeds the budget.
//! 3. **Hopeless deadlines** — a request whose predicted wait *plus* its own
//!    batch's predicted execution already overruns its class SLO would burn
//!    device time without earning goodput; shed it immediately so the
//!    capacity serves requests that can still win.
//!
//! Every shed is recorded — the server guarantees each submitted id ends up
//! either completed or in the shed log, never silently dropped.

use crate::config::{ClassPolicy, ServeConfig};
use crate::request::ShedReason;
use std::time::Duration;
use tilewise::DwellModel;

/// Decides, per submission, whether the request is admitted or shed.
#[derive(Clone, Debug)]
pub struct AdmissionController {
    policy: crate::config::AdmissionConfig,
    /// The session's memoized cost-model table; all wait prediction runs
    /// through [`DwellModel::backlog_seconds`] so the formula lives in
    /// exactly one place.
    dwell: DwellModel,
    /// Wall-clock seconds per simulated device second (`0` when serving
    /// CPU-only, which disables the wait- and deadline-based policies).
    time_scale: f64,
    max_batch: usize,
    workers: usize,
}

impl AdmissionController {
    /// Builds the controller for `config`, pricing batches with `dwell` (the
    /// session's memoized cost-model table).
    pub fn new(config: &ServeConfig, dwell: &DwellModel) -> Self {
        Self {
            policy: config.admission,
            dwell: dwell.clone(),
            time_scale: config.gpu_dwell.map_or(0.0, |d| d.time_scale),
            max_batch: config.max_batch_size,
            workers: config.workers,
        }
    }

    /// Whether any shedding policy is active (otherwise the server uses
    /// blocking backpressure and never consults [`Self::decide`]).
    pub fn is_active(&self) -> bool {
        self.policy.is_active()
    }

    /// Predicted wall-clock wait before a request admitted behind
    /// `queue_depth` others starts executing: the dwell model's backlog
    /// prediction ([`DwellModel::backlog_seconds`] — full batches ahead,
    /// spread over the pool) scaled to wall clock.
    pub fn predicted_wait(&self, queue_depth: usize) -> Duration {
        Duration::from_secs_f64(
            self.dwell.backlog_seconds(queue_depth, self.max_batch, self.workers) * self.time_scale,
        )
    }

    /// Predicted wall-clock execution time of the batch the request itself
    /// will ride in (worst case: a full batch).
    pub fn predicted_execution(&self) -> Duration {
        Duration::from_secs_f64(self.dwell.seconds_for(self.max_batch) * self.time_scale)
    }

    /// `None` to admit, or the reason to shed.  `total_depth` is the whole
    /// queue (the capacity-protection input of the depth policy);
    /// `depth_ahead` is the backlog in lanes of the same or higher priority
    /// (see [`crate::PriorityQueue::depths`]) — under strict priority that,
    /// not the total, is what the request actually waits behind, so the
    /// wait- and deadline-based policies use it.  An interactive request in
    /// front of a wall of batch work is *not* hopeless.
    pub fn decide(
        &self,
        total_depth: usize,
        depth_ahead: usize,
        class: &ClassPolicy,
    ) -> Option<ShedReason> {
        if let Some(depth) = self.policy.max_queue_depth {
            if total_depth >= depth {
                return Some(ShedReason::QueueFull);
            }
        }
        let wait = self.predicted_wait(depth_ahead);
        if let Some(budget) = self.policy.max_predicted_wait {
            if wait > budget {
                return Some(ShedReason::WaitBudget);
            }
        }
        if self.policy.shed_hopeless {
            if let Some(slo) = class.deadline {
                if wait + self.predicted_execution() > slo {
                    return Some(ShedReason::Deadline);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionConfig, GpuDwell};
    use std::sync::Arc;
    use tilewise::{Backend, InferenceSession};

    fn dwell_model() -> (Arc<InferenceSession>, DwellModel) {
        let session =
            Arc::new(InferenceSession::synthetic_chain(&[24, 32, 12], 0.5, 8, 17, Backend::Dense));
        let model = session.dwell_model(8);
        (session, model)
    }

    fn config(admission: AdmissionConfig, time_scale: f64) -> ServeConfig {
        ServeConfig {
            max_batch_size: 8,
            workers: 2,
            gpu_dwell: (time_scale > 0.0).then_some(GpuDwell { time_scale }),
            admission,
            classes: vec![
                ClassPolicy::with_deadline("interactive", Duration::from_millis(20)),
                ClassPolicy::best_effort("batch"),
            ],
            ..ServeConfig::default()
        }
    }

    #[test]
    fn inactive_controller_admits_everything() {
        let (_s, dwell) = dwell_model();
        let ctl = AdmissionController::new(&config(AdmissionConfig::default(), 0.0), &dwell);
        assert!(!ctl.is_active());
        let class = ClassPolicy::best_effort("x");
        assert_eq!(ctl.decide(1_000_000, 1_000_000, &class), None);
    }

    #[test]
    fn depth_policy_sheds_at_the_bound() {
        let (_s, dwell) = dwell_model();
        let cfg = config(AdmissionConfig { max_queue_depth: Some(64), ..Default::default() }, 0.0);
        let ctl = AdmissionController::new(&cfg, &dwell);
        let class = ClassPolicy::best_effort("x");
        assert_eq!(ctl.decide(63, 63, &class), None);
        assert_eq!(ctl.decide(64, 0, &class), Some(ShedReason::QueueFull));
    }

    #[test]
    fn predicted_wait_scales_with_depth_and_pool() {
        let (_s, dwell) = dwell_model();
        let cfg = config(AdmissionConfig::default(), 1e4);
        let ctl = AdmissionController::new(&cfg, &dwell);
        let empty = ctl.predicted_wait(0);
        let shallow = ctl.predicted_wait(16);
        let deep = ctl.predicted_wait(160);
        assert_eq!(empty, Duration::ZERO);
        assert!(shallow > Duration::ZERO);
        assert!(deep > shallow * 5, "deep {deep:?} vs shallow {shallow:?}");
    }

    #[test]
    fn wait_budget_sheds_deep_backlogs_only() {
        let (_s, dwell) = dwell_model();
        let budget = {
            // Pick a budget between the 1-round and 100-round predicted waits.
            let probe = AdmissionController::new(&config(AdmissionConfig::default(), 1e4), &dwell);
            probe.predicted_wait(16) * 10
        };
        let cfg =
            config(AdmissionConfig { max_predicted_wait: Some(budget), ..Default::default() }, 1e4);
        let ctl = AdmissionController::new(&cfg, &dwell);
        let class = ClassPolicy::best_effort("x");
        assert_eq!(ctl.decide(16, 16, &class), None);
        assert_eq!(ctl.decide(1600, 1600, &class), Some(ShedReason::WaitBudget));
    }

    #[test]
    fn near_empty_queue_does_not_shed_feasible_slo_requests() {
        let (_s, dwell) = dwell_model();
        // SLO of 1.5x the full-batch wall time: feasible whenever no full
        // batch is queued ahead, since the request joins the next batch.
        let cfg = config(AdmissionConfig { shed_hopeless: true, ..Default::default() }, 1e4);
        let ctl = AdmissionController::new(&cfg, &dwell);
        let slo = ctl.predicted_execution().mul_f64(1.5);
        let class = ClassPolicy::with_deadline("interactive", slo);
        for depth in 0..cfg.max_batch_size {
            assert_eq!(ctl.predicted_wait(depth), Duration::ZERO, "depth {depth}");
            assert_eq!(ctl.decide(depth, depth, &class), None, "depth {depth} must admit");
        }
        // One full batch of same-priority work ahead makes the same SLO
        // hopeless...
        let full = cfg.max_batch_size * cfg.workers;
        assert_eq!(ctl.decide(full, full, &class), Some(ShedReason::Deadline));
        // ...but the same *total* depth made of lower-priority (batch-lane)
        // work does not: the interactive request jumps it.
        assert_eq!(ctl.decide(full, 0, &class), None);
    }

    #[test]
    fn hopeless_deadline_sheds_only_slo_classes() {
        let (_s, dwell) = dwell_model();
        // Enormous time scale: even one batch ahead blows a 20ms SLO.
        let cfg = config(AdmissionConfig { shed_hopeless: true, ..Default::default() }, 1e6);
        let ctl = AdmissionController::new(&cfg, &dwell);
        let interactive = &cfg.classes[0];
        let batch = &cfg.classes[1];
        assert_eq!(ctl.decide(64, 64, interactive), Some(ShedReason::Deadline));
        assert_eq!(ctl.decide(64, 64, batch), None, "best-effort class has no deadline to miss");
    }

    #[test]
    fn cpu_only_serving_disables_wait_based_policies() {
        let (_s, dwell) = dwell_model();
        let cfg = config(
            AdmissionConfig {
                max_predicted_wait: Some(Duration::from_nanos(1)),
                shed_hopeless: true,
                ..Default::default()
            },
            0.0,
        );
        let ctl = AdmissionController::new(&cfg, &dwell);
        assert!(ctl.is_active());
        // With no dwell the predicted wait is zero, so neither wait policy
        // can trigger; only the depth policy would.
        assert_eq!(ctl.decide(10_000, 10_000, &cfg.classes[0]), None);
    }
}
