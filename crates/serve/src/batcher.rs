//! The SLO-aware dynamic batcher: size-, wait- and deadline-bounded
//! request grouping.
//!
//! Batching amortizes per-kernel overhead (and, on the modelled GPU, fills
//! streams), but waiting for a full batch adds latency.  The standard
//! compromise — used by every production inference server — is a *dynamic*
//! batch: close the batch at `max_batch_size` requests, or `max_batch_wait`
//! after the first request arrived, whichever comes first.  The wait clock
//! starts at the batch head, so an idle server adds zero batching latency to
//! a lone request beyond the configured budget.
//!
//! On top of that, [`SloBatcher`] is *deadline-aware*: every batch member
//! with an SLO tightens the fill deadline to `member.deadline -
//! predicted_execution`, where the predicted execution time comes from the
//! session's cost-model dwell table.  A batch carrying a near-deadline
//! interactive request therefore closes early — shipping a smaller batch —
//! instead of politely waiting out a budget the request cannot afford.
//! Requests are popped from the priority queue, so higher-priority lanes
//! fill batches first.
//!
//! # Model purity
//!
//! A batch is fused into *one* activation matrix against *one* model's
//! weights, so every batch must be model-pure.  On a multi-model server the
//! fill phase stops at the first popped request targeting a different
//! model; that request is stashed (never dropped) and becomes the head of a
//! subsequent batch.  On a single-model server the stash stays empty and
//! behavior is unchanged.

use crate::queue::{Pop, PriorityQueue};
use crate::request::InferenceRequest;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Groups queued requests into dynamic batches.  One batcher is shared by
/// all workers; each [`SloBatcher::next_batch`] call assembles one batch.
pub struct SloBatcher {
    queue: Arc<PriorityQueue<InferenceRequest>>,
    max_batch_size: usize,
    max_batch_wait: Duration,
    /// Predicted wall-clock execution time of a full batch — the margin a
    /// member's deadline must leave for the batch to still be worth joining.
    /// `ZERO` (e.g. CPU-only serving) degrades to the plain wait budget.
    predicted_exec: Duration,
    /// Requests popped while filling a batch of a *different* model: they
    /// head later batches, in stash order, before the queue is consulted.
    stash: Mutex<VecDeque<InferenceRequest>>,
}

impl SloBatcher {
    /// A batcher draining `queue` with the given bounds.
    ///
    /// # Panics
    /// Panics if `max_batch_size` is zero.
    pub fn new(
        queue: Arc<PriorityQueue<InferenceRequest>>,
        max_batch_size: usize,
        max_batch_wait: Duration,
        predicted_exec: Duration,
    ) -> Self {
        assert!(max_batch_size > 0, "max batch size must be positive");
        Self {
            queue,
            max_batch_size,
            max_batch_wait,
            predicted_exec,
            stash: Mutex::new(VecDeque::new()),
        }
    }

    /// The queue this batcher drains.
    pub fn queue(&self) -> &Arc<PriorityQueue<InferenceRequest>> {
        &self.queue
    }

    /// The latest moment the batch may keep filling once `request` is a
    /// member: its deadline minus the predicted batch execution time (never
    /// later than the running `fill_until`).
    fn tighten(&self, fill_until: Instant, request: &InferenceRequest) -> Instant {
        match request.deadline {
            Some(deadline) => {
                let latest_start =
                    deadline.checked_sub(self.predicted_exec).unwrap_or_else(Instant::now);
                fill_until.min(latest_start)
            }
            None => fill_until,
        }
    }

    /// Takes the highest-priority stashed request (FIFO within a class) —
    /// unless the queue holds work of *strictly higher priority still*,
    /// which wins the head slot (the stashed request stays in place among
    /// its peers).  Stashing must not invert the queue's strict-priority
    /// discipline in either direction: a best-effort request deferred by a
    /// model switch may not overtake interactive arrivals, whether those
    /// are still queued or themselves already stashed.
    fn pop_stash_or_higher_priority(&self) -> Option<InferenceRequest> {
        let mut stash = self.stash.lock().expect("batch stash poisoned");
        let best = stash.iter().enumerate().min_by_key(|(i, r)| (r.class, *i)).map(|(i, _)| i)?;
        let stashed = stash.remove(best).expect("index from enumerate");
        if let Some(higher) = self.queue.try_pop_before(stashed.class) {
            stash.insert(best, stashed);
            return Some(higher);
        }
        Some(stashed)
    }

    /// Assembles the next batch: blocks for a batch head (stashed work
    /// first, unless the queue holds strictly higher-priority arrivals),
    /// then fills with same-model requests until the size cap, the wait
    /// deadline, or the earliest member's SLO cutoff.  Returns `None` once
    /// the queue is closed and drained and no stashed request remains —
    /// the worker's signal to exit.
    pub fn next_batch(&self) -> Option<Vec<InferenceRequest>> {
        // Phase 1: wait (in slices, re-checking the stash so a request
        // stashed by another worker is never stranded behind an idle queue)
        // for the batch head.
        let head = loop {
            if let Some(item) = self.pop_stash_or_higher_priority() {
                break item;
            }
            match self.queue.pop_timeout(Duration::from_millis(50)) {
                Pop::Item(item) => break item,
                Pop::TimedOut => continue,
                Pop::Closed => match self.pop_stash_or_higher_priority() {
                    Some(item) => break item,
                    None => return None,
                },
            }
        };
        let model = head.model;

        // Phase 2: fill until size cap, wait deadline, or SLO cutoff.
        let mut fill_until = self.tighten(Instant::now() + self.max_batch_wait, &head);
        let mut batch = Vec::with_capacity(self.max_batch_size);
        batch.push(head);
        while batch.len() < self.max_batch_size {
            let now = Instant::now();
            if now >= fill_until {
                break;
            }
            match self.queue.pop_timeout(fill_until - now) {
                Pop::Item(item) if item.model == model => {
                    fill_until = self.tighten(fill_until, &item);
                    batch.push(item);
                }
                // A different model cannot share the fused activation
                // matrix: stash it as a future batch head and close this
                // batch (stopping here preserves per-model FIFO order).
                Pop::Item(item) => {
                    self.stash.lock().expect("batch stash poisoned").push_back(item);
                    break;
                }
                // Closed with a partial batch in hand: flush what we have;
                // the next call will observe Closed and return None.
                Pop::TimedOut | Pop::Closed => break,
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64) -> InferenceRequest {
        InferenceRequest::new(id, vec![0.0; 4])
    }

    fn deadline_request(id: u64, slo_ms: u64) -> InferenceRequest {
        InferenceRequest::classed(id, vec![0.0; 4], 0, Some(Duration::from_millis(slo_ms)))
    }

    fn ids(batch: &[InferenceRequest]) -> Vec<u64> {
        batch.iter().map(|r| r.id).collect()
    }

    fn batcher(capacity: usize, max_batch: usize, wait_ms: u64) -> SloBatcher {
        batcher_with_exec(capacity, max_batch, wait_ms, 0)
    }

    fn batcher_with_exec(
        capacity: usize,
        max_batch: usize,
        wait_ms: u64,
        exec_ms: u64,
    ) -> SloBatcher {
        SloBatcher::new(
            Arc::new(PriorityQueue::new(2, capacity)),
            max_batch,
            Duration::from_millis(wait_ms),
            Duration::from_millis(exec_ms),
        )
    }

    #[test]
    fn full_batch_closes_at_size_cap_without_waiting() {
        let b = batcher(64, 4, 10_000);
        for i in 0..11 {
            b.queue().push(0, request(i)).unwrap();
        }
        // A queue holding >= max_batch items must yield a full batch
        // immediately even with a huge wait budget.
        let start = Instant::now();
        assert_eq!(ids(&b.next_batch().unwrap()), vec![0, 1, 2, 3]);
        assert!(start.elapsed() < Duration::from_secs(1), "must not wait out the budget");
        assert_eq!(ids(&b.next_batch().unwrap()), vec![4, 5, 6, 7]);
        // The remainder is flushed as a partial batch after close...
        b.queue().close();
        assert_eq!(ids(&b.next_batch().unwrap()), vec![8, 9, 10]);
        assert!(b.next_batch().is_none());
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let b = batcher(64, 8, 30);
        b.queue().push(0, request(1)).unwrap();
        b.queue().push(0, request(2)).unwrap();
        let start = Instant::now();
        let batch = b.next_batch().unwrap();
        let waited = start.elapsed();
        assert_eq!(ids(&batch), vec![1, 2]);
        // The batcher must have honoured (roughly) the wait budget before
        // flushing a partial batch.
        assert!(waited >= Duration::from_millis(25), "flushed after {waited:?}");
        assert!(waited < Duration::from_millis(500), "overslept: {waited:?}");
    }

    #[test]
    fn late_arrivals_within_budget_join_the_batch() {
        let b = Arc::new(batcher(64, 3, 500));
        b.queue().push(0, request(1)).unwrap();
        let feeder = {
            let q = Arc::clone(b.queue());
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.push(0, request(2)).unwrap();
                q.push(0, request(3)).unwrap();
            })
        };
        let start = Instant::now();
        let batch = b.next_batch().unwrap();
        feeder.join().unwrap();
        assert_eq!(ids(&batch), vec![1, 2, 3]);
        // Filled by arrival, not by deadline.
        assert!(start.elapsed() < Duration::from_millis(400));
    }

    #[test]
    fn close_flushes_partial_batch_then_ends() {
        let b = Arc::new(batcher(64, 8, 10_000));
        b.queue().push(0, request(5)).unwrap();
        let closer = {
            let q = Arc::clone(b.queue());
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.close();
            })
        };
        // Close must cut the fill phase short well before the 10s budget.
        let start = Instant::now();
        assert_eq!(ids(&b.next_batch().unwrap()), vec![5]);
        assert!(start.elapsed() < Duration::from_secs(5));
        closer.join().unwrap();
        assert!(b.next_batch().is_none());
    }

    #[test]
    fn batch_size_one_never_waits() {
        let b = batcher(8, 1, 10_000);
        b.queue().push(0, request(9)).unwrap();
        let start = Instant::now();
        assert_eq!(ids(&b.next_batch().unwrap()), vec![9]);
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn zero_wait_degenerates_to_head_only_batches() {
        let b = batcher(8, 4, 0);
        b.queue().push(0, request(1)).unwrap();
        b.queue().push(0, request(2)).unwrap();
        // With a zero wait budget the deadline has already passed once the
        // head is in hand, so every batch is a singleton.
        assert_eq!(ids(&b.next_batch().unwrap()), vec![1]);
        assert_eq!(ids(&b.next_batch().unwrap()), vec![2]);
    }

    #[test]
    fn near_deadline_head_closes_the_batch_early() {
        // Wait budget 500ms, but the head's SLO leaves no slack after the
        // predicted 90ms execution: the batch must flush (almost)
        // immediately instead of waiting out the budget.
        let b = batcher_with_exec(64, 8, 500, 90);
        b.queue().push(0, deadline_request(1, 100)).unwrap();
        let start = Instant::now();
        let batch = b.next_batch().unwrap();
        assert_eq!(ids(&batch), vec![1]);
        assert!(start.elapsed() < Duration::from_millis(120), "waited {:?}", start.elapsed());
    }

    #[test]
    fn deadline_member_tightens_a_running_fill() {
        // Best-effort head opens a 10s fill window; a near-deadline joiner
        // must slam it shut.
        let b = Arc::new(batcher_with_exec(64, 8, 10_000, 50));
        b.queue().push(1, request(1)).unwrap();
        let feeder = {
            let q = Arc::clone(b.queue());
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.push(0, deadline_request(2, 60)).unwrap();
            })
        };
        let start = Instant::now();
        let batch = b.next_batch().unwrap();
        feeder.join().unwrap();
        let mut got = ids(&batch);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(start.elapsed() < Duration::from_millis(500), "waited {:?}", start.elapsed());
    }

    #[test]
    fn higher_priority_lane_fills_batches_first() {
        let b = batcher(64, 2, 10_000);
        b.queue().push(1, request(10)).unwrap();
        b.queue().push(1, request(11)).unwrap();
        b.queue().push(0, request(1)).unwrap();
        b.queue().push(0, request(2)).unwrap();
        assert_eq!(ids(&b.next_batch().unwrap()), vec![1, 2]);
        assert_eq!(ids(&b.next_batch().unwrap()), vec![10, 11]);
    }

    #[test]
    fn batches_are_model_pure_and_no_request_is_lost() {
        let b = batcher(64, 8, 10_000);
        // Interleaved models on one lane: the batcher must split them into
        // model-pure batches while preserving arrival order per model.
        let models = [0usize, 0, 1, 1, 0, 2];
        for (id, &model) in models.iter().enumerate() {
            b.queue()
                .push(0, InferenceRequest::for_model(id as u64, model, vec![0.0; 4], 0, None))
                .unwrap();
        }
        b.queue().close();
        let mut batches = Vec::new();
        while let Some(batch) = b.next_batch() {
            assert!(
                batch.iter().all(|r| r.model == batch[0].model),
                "mixed-model batch: {:?}",
                batch.iter().map(|r| (r.id, r.model)).collect::<Vec<_>>()
            );
            batches.push(ids(&batch));
        }
        assert_eq!(batches, vec![vec![0, 1], vec![2, 3], vec![4], vec![5]]);
    }

    #[test]
    fn stashed_low_priority_request_does_not_overtake_interactive_arrivals() {
        // Lane 0 = interactive, lane 1 = batch.  A model-1 batch-class
        // request gets stashed while a model-0 batch fills; interactive
        // model-0 work arriving meanwhile must still head the next batch —
        // the stash may not invert strict priority.
        let b = batcher(64, 3, 10_000);
        let req =
            |id, model, class| InferenceRequest::for_model(id, model, vec![0.0; 4], class, None);
        b.queue().push(1, req(1, 0, 1)).unwrap();
        b.queue().push(1, req(2, 0, 1)).unwrap();
        b.queue().push(1, req(3, 1, 1)).unwrap();
        // First batch: the model-0 pair; request 3 (model 1) is popped
        // during the fill and stashed, closing the batch early.
        assert_eq!(ids(&b.next_batch().unwrap()), vec![1, 2]);
        b.queue().push(0, req(4, 0, 0)).unwrap();
        b.queue().push(0, req(5, 0, 0)).unwrap();
        b.queue().close();
        // The interactive arrivals outrank the stashed batch request.
        assert_eq!(ids(&b.next_batch().unwrap()), vec![4, 5]);
        // The stashed request is served next — never lost.
        assert_eq!(ids(&b.next_batch().unwrap()), vec![3]);
        assert!(b.next_batch().is_none());
    }

    #[test]
    fn stash_yields_its_own_highest_priority_request_first() {
        // Strict priority must hold *within* the stash too: a best-effort
        // request stashed earlier may not overtake an interactive request
        // stashed later.
        let b = batcher(64, 2, 10_000);
        let req =
            |id, model, class| InferenceRequest::for_model(id, model, vec![0.0; 4], class, None);
        // Head req 1 (model 0); fill pops the model-1 best-effort req 2 and
        // stashes it.
        b.queue().push(1, req(1, 0, 1)).unwrap();
        b.queue().push(1, req(2, 1, 1)).unwrap();
        assert_eq!(ids(&b.next_batch().unwrap()), vec![1]);
        // Head req 3 (model 2, interactive); fill pops the interactive
        // model-3 req 4 and stashes it behind req 2.
        b.queue().push(0, req(3, 2, 0)).unwrap();
        b.queue().push(0, req(4, 3, 0)).unwrap();
        assert_eq!(ids(&b.next_batch().unwrap()), vec![3]);
        b.queue().close();
        // Stash is [2 (class 1), 4 (class 0)]: the interactive request
        // heads the next batch despite being stashed later.
        assert_eq!(ids(&b.next_batch().unwrap()), vec![4]);
        assert_eq!(ids(&b.next_batch().unwrap()), vec![2]);
        assert!(b.next_batch().is_none());
    }

    #[test]
    fn single_model_serving_never_stashes() {
        let b = batcher(64, 4, 10_000);
        for id in 0..8 {
            b.queue().push(0, request(id)).unwrap();
        }
        b.queue().close();
        assert_eq!(ids(&b.next_batch().unwrap()), vec![0, 1, 2, 3]);
        assert_eq!(ids(&b.next_batch().unwrap()), vec![4, 5, 6, 7]);
        assert!(b.next_batch().is_none());
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        let _ = batcher(8, 0, 1);
    }
}
