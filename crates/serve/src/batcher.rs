//! The dynamic batcher: size- and deadline-bounded request grouping.
//!
//! Batching amortizes per-kernel overhead (and, on the modelled GPU, fills
//! streams), but waiting for a full batch adds latency.  The standard
//! compromise — used by every production inference server — is a *dynamic*
//! batch: close the batch at `max_batch_size` requests, or `max_batch_wait`
//! after the first request arrived, whichever comes first.  The wait clock
//! starts at the batch head, so an idle server adds zero batching latency to
//! a lone request beyond the configured budget.

use crate::queue::{BoundedQueue, Pop};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Groups queued items into dynamic batches.  One batcher is shared by all
/// workers; each [`DynamicBatcher::next_batch`] call assembles one batch.
pub struct DynamicBatcher<T> {
    queue: Arc<BoundedQueue<T>>,
    max_batch_size: usize,
    max_batch_wait: Duration,
}

impl<T> DynamicBatcher<T> {
    /// A batcher draining `queue` with the given bounds.
    ///
    /// # Panics
    /// Panics if `max_batch_size` is zero.
    pub fn new(
        queue: Arc<BoundedQueue<T>>,
        max_batch_size: usize,
        max_batch_wait: Duration,
    ) -> Self {
        assert!(max_batch_size > 0, "max batch size must be positive");
        Self { queue, max_batch_size, max_batch_wait }
    }

    /// The queue this batcher drains.
    pub fn queue(&self) -> &Arc<BoundedQueue<T>> {
        &self.queue
    }

    /// Assembles the next batch: blocks for a batch head, then fills until
    /// the size cap or the wait deadline.  Returns `None` once the queue is
    /// closed and drained — the worker's signal to exit.
    pub fn next_batch(&self) -> Option<Vec<T>> {
        // Phase 1: wait (indefinitely, in slices) for the batch head.
        let head = loop {
            match self.queue.pop_timeout(Duration::from_millis(50)) {
                Pop::Item(item) => break item,
                Pop::TimedOut => continue,
                Pop::Closed => return None,
            }
        };

        // Phase 2: fill until size cap or deadline.
        let deadline = Instant::now() + self.max_batch_wait;
        let mut batch = Vec::with_capacity(self.max_batch_size);
        batch.push(head);
        while batch.len() < self.max_batch_size {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.queue.pop_timeout(deadline - now) {
                Pop::Item(item) => batch.push(item),
                // Closed with a partial batch in hand: flush what we have;
                // the next call will observe Closed and return None.
                Pop::TimedOut | Pop::Closed => break,
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher(capacity: usize, max_batch: usize, wait_ms: u64) -> DynamicBatcher<u64> {
        DynamicBatcher::new(
            Arc::new(BoundedQueue::new(capacity)),
            max_batch,
            Duration::from_millis(wait_ms),
        )
    }

    #[test]
    fn full_batch_closes_at_size_cap_without_waiting() {
        let b = batcher(64, 4, 10_000);
        for i in 0..11 {
            b.queue().push(i).unwrap();
        }
        // A queue holding >= max_batch items must yield a full batch
        // immediately even with a huge wait budget.
        let start = Instant::now();
        assert_eq!(b.next_batch(), Some(vec![0, 1, 2, 3]));
        assert!(start.elapsed() < Duration::from_secs(1), "must not wait out the budget");
        assert_eq!(b.next_batch(), Some(vec![4, 5, 6, 7]));
        // The remainder is flushed as a partial batch after the deadline...
        b.queue().close();
        assert_eq!(b.next_batch(), Some(vec![8, 9, 10]));
        assert_eq!(b.next_batch(), None);
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let b = batcher(64, 8, 30);
        b.queue().push(1).unwrap();
        b.queue().push(2).unwrap();
        let start = Instant::now();
        let batch = b.next_batch().unwrap();
        let waited = start.elapsed();
        assert_eq!(batch, vec![1, 2]);
        // The batcher must have honoured (roughly) the wait budget before
        // flushing a partial batch.
        assert!(waited >= Duration::from_millis(25), "flushed after {waited:?}");
        assert!(waited < Duration::from_millis(500), "overslept: {waited:?}");
    }

    #[test]
    fn late_arrivals_within_budget_join_the_batch() {
        let b = Arc::new(batcher(64, 3, 500));
        b.queue().push(1).unwrap();
        let feeder = {
            let q = Arc::clone(b.queue());
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.push(2).unwrap();
                q.push(3).unwrap();
            })
        };
        let start = Instant::now();
        let batch = b.next_batch().unwrap();
        feeder.join().unwrap();
        assert_eq!(batch, vec![1, 2, 3]);
        // Filled by arrival, not by deadline.
        assert!(start.elapsed() < Duration::from_millis(400));
    }

    #[test]
    fn close_flushes_partial_batch_then_ends() {
        let b = Arc::new(batcher(64, 8, 10_000));
        b.queue().push(5).unwrap();
        let closer = {
            let q = Arc::clone(b.queue());
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.close();
            })
        };
        // Close must cut the fill phase short well before the 10s budget.
        let start = Instant::now();
        assert_eq!(b.next_batch(), Some(vec![5]));
        assert!(start.elapsed() < Duration::from_secs(5));
        closer.join().unwrap();
        assert_eq!(b.next_batch(), None);
    }

    #[test]
    fn batch_size_one_never_waits() {
        let b = batcher(8, 1, 10_000);
        b.queue().push(9).unwrap();
        let start = Instant::now();
        assert_eq!(b.next_batch(), Some(vec![9]));
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn zero_wait_degenerates_to_head_only_batches() {
        let b = batcher(8, 4, 0);
        b.queue().push(1).unwrap();
        b.queue().push(2).unwrap();
        // With a zero wait budget the deadline has already passed once the
        // head is in hand, so every batch is a singleton.
        assert_eq!(b.next_batch(), Some(vec![1]));
        assert_eq!(b.next_batch(), Some(vec![2]));
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        let _ = batcher(8, 0, 1);
    }
}
