//! The SLO-aware dynamic batcher: size-, wait- and deadline-bounded
//! request grouping.
//!
//! Batching amortizes per-kernel overhead (and, on the modelled GPU, fills
//! streams), but waiting for a full batch adds latency.  The standard
//! compromise — used by every production inference server — is a *dynamic*
//! batch: close the batch at `max_batch_size` requests, or `max_batch_wait`
//! after the first request arrived, whichever comes first.  The wait clock
//! starts at the batch head, so an idle server adds zero batching latency to
//! a lone request beyond the configured budget.
//!
//! On top of that, [`SloBatcher`] is *deadline-aware*: every batch member
//! with an SLO tightens the fill deadline to `member.deadline -
//! predicted_execution`, where the predicted execution time comes from the
//! session's cost-model dwell table.  A batch carrying a near-deadline
//! interactive request therefore closes early — shipping a smaller batch —
//! instead of politely waiting out a budget the request cannot afford.
//! Requests are popped from the priority queue, so higher-priority lanes
//! fill batches first.

use crate::queue::{Pop, PriorityQueue};
use crate::request::InferenceRequest;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Groups queued requests into dynamic batches.  One batcher is shared by
/// all workers; each [`SloBatcher::next_batch`] call assembles one batch.
pub struct SloBatcher {
    queue: Arc<PriorityQueue<InferenceRequest>>,
    max_batch_size: usize,
    max_batch_wait: Duration,
    /// Predicted wall-clock execution time of a full batch — the margin a
    /// member's deadline must leave for the batch to still be worth joining.
    /// `ZERO` (e.g. CPU-only serving) degrades to the plain wait budget.
    predicted_exec: Duration,
}

impl SloBatcher {
    /// A batcher draining `queue` with the given bounds.
    ///
    /// # Panics
    /// Panics if `max_batch_size` is zero.
    pub fn new(
        queue: Arc<PriorityQueue<InferenceRequest>>,
        max_batch_size: usize,
        max_batch_wait: Duration,
        predicted_exec: Duration,
    ) -> Self {
        assert!(max_batch_size > 0, "max batch size must be positive");
        Self { queue, max_batch_size, max_batch_wait, predicted_exec }
    }

    /// The queue this batcher drains.
    pub fn queue(&self) -> &Arc<PriorityQueue<InferenceRequest>> {
        &self.queue
    }

    /// The latest moment the batch may keep filling once `request` is a
    /// member: its deadline minus the predicted batch execution time (never
    /// later than the running `fill_until`).
    fn tighten(&self, fill_until: Instant, request: &InferenceRequest) -> Instant {
        match request.deadline {
            Some(deadline) => {
                let latest_start =
                    deadline.checked_sub(self.predicted_exec).unwrap_or_else(Instant::now);
                fill_until.min(latest_start)
            }
            None => fill_until,
        }
    }

    /// Assembles the next batch: blocks for a batch head, then fills until
    /// the size cap, the wait deadline, or the earliest member's SLO cutoff.
    /// Returns `None` once the queue is closed and drained — the worker's
    /// signal to exit.
    pub fn next_batch(&self) -> Option<Vec<InferenceRequest>> {
        // Phase 1: wait (indefinitely, in slices) for the batch head.
        let head = loop {
            match self.queue.pop_timeout(Duration::from_millis(50)) {
                Pop::Item(item) => break item,
                Pop::TimedOut => continue,
                Pop::Closed => return None,
            }
        };

        // Phase 2: fill until size cap, wait deadline, or SLO cutoff.
        let mut fill_until = self.tighten(Instant::now() + self.max_batch_wait, &head);
        let mut batch = Vec::with_capacity(self.max_batch_size);
        batch.push(head);
        while batch.len() < self.max_batch_size {
            let now = Instant::now();
            if now >= fill_until {
                break;
            }
            match self.queue.pop_timeout(fill_until - now) {
                Pop::Item(item) => {
                    fill_until = self.tighten(fill_until, &item);
                    batch.push(item);
                }
                // Closed with a partial batch in hand: flush what we have;
                // the next call will observe Closed and return None.
                Pop::TimedOut | Pop::Closed => break,
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64) -> InferenceRequest {
        InferenceRequest::new(id, vec![0.0; 4])
    }

    fn deadline_request(id: u64, slo_ms: u64) -> InferenceRequest {
        InferenceRequest::classed(id, vec![0.0; 4], 0, Some(Duration::from_millis(slo_ms)))
    }

    fn ids(batch: &[InferenceRequest]) -> Vec<u64> {
        batch.iter().map(|r| r.id).collect()
    }

    fn batcher(capacity: usize, max_batch: usize, wait_ms: u64) -> SloBatcher {
        batcher_with_exec(capacity, max_batch, wait_ms, 0)
    }

    fn batcher_with_exec(
        capacity: usize,
        max_batch: usize,
        wait_ms: u64,
        exec_ms: u64,
    ) -> SloBatcher {
        SloBatcher::new(
            Arc::new(PriorityQueue::new(2, capacity)),
            max_batch,
            Duration::from_millis(wait_ms),
            Duration::from_millis(exec_ms),
        )
    }

    #[test]
    fn full_batch_closes_at_size_cap_without_waiting() {
        let b = batcher(64, 4, 10_000);
        for i in 0..11 {
            b.queue().push(0, request(i)).unwrap();
        }
        // A queue holding >= max_batch items must yield a full batch
        // immediately even with a huge wait budget.
        let start = Instant::now();
        assert_eq!(ids(&b.next_batch().unwrap()), vec![0, 1, 2, 3]);
        assert!(start.elapsed() < Duration::from_secs(1), "must not wait out the budget");
        assert_eq!(ids(&b.next_batch().unwrap()), vec![4, 5, 6, 7]);
        // The remainder is flushed as a partial batch after close...
        b.queue().close();
        assert_eq!(ids(&b.next_batch().unwrap()), vec![8, 9, 10]);
        assert!(b.next_batch().is_none());
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let b = batcher(64, 8, 30);
        b.queue().push(0, request(1)).unwrap();
        b.queue().push(0, request(2)).unwrap();
        let start = Instant::now();
        let batch = b.next_batch().unwrap();
        let waited = start.elapsed();
        assert_eq!(ids(&batch), vec![1, 2]);
        // The batcher must have honoured (roughly) the wait budget before
        // flushing a partial batch.
        assert!(waited >= Duration::from_millis(25), "flushed after {waited:?}");
        assert!(waited < Duration::from_millis(500), "overslept: {waited:?}");
    }

    #[test]
    fn late_arrivals_within_budget_join_the_batch() {
        let b = Arc::new(batcher(64, 3, 500));
        b.queue().push(0, request(1)).unwrap();
        let feeder = {
            let q = Arc::clone(b.queue());
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.push(0, request(2)).unwrap();
                q.push(0, request(3)).unwrap();
            })
        };
        let start = Instant::now();
        let batch = b.next_batch().unwrap();
        feeder.join().unwrap();
        assert_eq!(ids(&batch), vec![1, 2, 3]);
        // Filled by arrival, not by deadline.
        assert!(start.elapsed() < Duration::from_millis(400));
    }

    #[test]
    fn close_flushes_partial_batch_then_ends() {
        let b = Arc::new(batcher(64, 8, 10_000));
        b.queue().push(0, request(5)).unwrap();
        let closer = {
            let q = Arc::clone(b.queue());
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.close();
            })
        };
        // Close must cut the fill phase short well before the 10s budget.
        let start = Instant::now();
        assert_eq!(ids(&b.next_batch().unwrap()), vec![5]);
        assert!(start.elapsed() < Duration::from_secs(5));
        closer.join().unwrap();
        assert!(b.next_batch().is_none());
    }

    #[test]
    fn batch_size_one_never_waits() {
        let b = batcher(8, 1, 10_000);
        b.queue().push(0, request(9)).unwrap();
        let start = Instant::now();
        assert_eq!(ids(&b.next_batch().unwrap()), vec![9]);
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn zero_wait_degenerates_to_head_only_batches() {
        let b = batcher(8, 4, 0);
        b.queue().push(0, request(1)).unwrap();
        b.queue().push(0, request(2)).unwrap();
        // With a zero wait budget the deadline has already passed once the
        // head is in hand, so every batch is a singleton.
        assert_eq!(ids(&b.next_batch().unwrap()), vec![1]);
        assert_eq!(ids(&b.next_batch().unwrap()), vec![2]);
    }

    #[test]
    fn near_deadline_head_closes_the_batch_early() {
        // Wait budget 500ms, but the head's SLO leaves no slack after the
        // predicted 90ms execution: the batch must flush (almost)
        // immediately instead of waiting out the budget.
        let b = batcher_with_exec(64, 8, 500, 90);
        b.queue().push(0, deadline_request(1, 100)).unwrap();
        let start = Instant::now();
        let batch = b.next_batch().unwrap();
        assert_eq!(ids(&batch), vec![1]);
        assert!(start.elapsed() < Duration::from_millis(120), "waited {:?}", start.elapsed());
    }

    #[test]
    fn deadline_member_tightens_a_running_fill() {
        // Best-effort head opens a 10s fill window; a near-deadline joiner
        // must slam it shut.
        let b = Arc::new(batcher_with_exec(64, 8, 10_000, 50));
        b.queue().push(1, request(1)).unwrap();
        let feeder = {
            let q = Arc::clone(b.queue());
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.push(0, deadline_request(2, 60)).unwrap();
            })
        };
        let start = Instant::now();
        let batch = b.next_batch().unwrap();
        feeder.join().unwrap();
        let mut got = ids(&batch);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(start.elapsed() < Duration::from_millis(500), "waited {:?}", start.elapsed());
    }

    #[test]
    fn higher_priority_lane_fills_batches_first() {
        let b = batcher(64, 2, 10_000);
        b.queue().push(1, request(10)).unwrap();
        b.queue().push(1, request(11)).unwrap();
        b.queue().push(0, request(1)).unwrap();
        b.queue().push(0, request(2)).unwrap();
        assert_eq!(ids(&b.next_batch().unwrap()), vec![1, 2]);
        assert_eq!(ids(&b.next_batch().unwrap()), vec![10, 11]);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        let _ = batcher(8, 0, 1);
    }
}
