//! Request and response types flowing through the serving runtime.

use std::time::{Duration, Instant};
pub use tw_memory::ModelId;

/// Index into the server's configured class list (`0` = highest priority).
pub type ClassId = usize;

/// One inference request: a payload vector plus submission bookkeeping.
#[derive(Clone, Debug)]
pub struct InferenceRequest {
    /// Server-assigned unique id.
    pub id: u64,
    /// Input features; length must equal the served model's input dim.
    pub payload: Vec<f32>,
    /// When the request entered the server (starts the latency clock).
    pub submitted_at: Instant,
    /// Request class (priority lane + SLO policy).
    pub class: ClassId,
    /// The model the request targets (index into the server's registry;
    /// `0` on a single-model server).
    pub model: ModelId,
    /// Absolute completion deadline derived from the class SLO; `None` =
    /// best effort.
    pub deadline: Option<Instant>,
}

impl InferenceRequest {
    /// A best-effort request of the default class and model, submitted now.
    pub fn new(id: u64, payload: Vec<f32>) -> Self {
        Self::classed(id, payload, 0, None)
    }

    /// A request of `class` against the default model, submitted now, due
    /// `slo` from now (if any).
    pub fn classed(id: u64, payload: Vec<f32>, class: ClassId, slo: Option<Duration>) -> Self {
        Self::for_model(id, 0, payload, class, slo)
    }

    /// The fully general constructor: a request of `class` against `model`.
    pub fn for_model(
        id: u64,
        model: ModelId,
        payload: Vec<f32>,
        class: ClassId,
        slo: Option<Duration>,
    ) -> Self {
        let submitted_at = Instant::now();
        Self { id, payload, submitted_at, class, model, deadline: slo.map(|d| submitted_at + d) }
    }
}

/// The completed result of one request.
#[derive(Clone, Debug)]
pub struct InferenceResponse {
    /// Id of the originating request.
    pub id: u64,
    /// Model output row for this request.
    pub output: Vec<f32>,
    /// Submission-to-completion latency.
    pub latency: Duration,
    /// Size of the batch this request was fused into.
    pub batch_size: usize,
    /// Index of the worker that executed the batch.
    pub worker: usize,
    /// Class of the originating request.
    pub class: ClassId,
    /// Model the request was served by.
    pub model: ModelId,
    /// Whether the batch this request rode in had to page weight tiles in
    /// (a *cold* batch) — always `false` when memory management is off.
    pub cold: bool,
    /// Whether the response beat its deadline; `None` for classes without
    /// an SLO.
    pub deadline_met: Option<bool>,
}

/// Why the admission controller refused a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// Queue depth reached the configured shed threshold (or the queue was
    /// full while admission control was active).
    QueueFull,
    /// Predicted queue wait exceeded the configured budget.
    WaitBudget,
    /// Predicted wait plus batch execution could not meet the class SLO.
    Deadline,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "queue depth over shed threshold"),
            ShedReason::WaitBudget => write!(f, "predicted wait over budget"),
            ShedReason::Deadline => write!(f, "deadline unmeetable at admission"),
        }
    }
}

/// Record of one shed request — sheds are first-class outcomes, never
/// silent: every submitted id ends up completed or in the shed log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShedRecord {
    /// Id the request would have served under.
    pub id: u64,
    /// Class of the shed request.
    pub class: ClassId,
    /// Why it was refused.
    pub reason: ShedReason,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stamps_submission_time() {
        let before = Instant::now();
        let req = InferenceRequest::new(7, vec![1.0, 2.0]);
        assert_eq!(req.id, 7);
        assert_eq!(req.payload.len(), 2);
        assert_eq!(req.class, 0);
        assert_eq!(req.model, 0);
        assert_eq!(req.deadline, None);
        assert!(req.submitted_at >= before);
        assert!(req.submitted_at.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn classed_request_derives_absolute_deadline() {
        let slo = Duration::from_millis(40);
        let req = InferenceRequest::classed(3, vec![0.0], 1, Some(slo));
        assert_eq!(req.class, 1);
        let deadline = req.deadline.expect("slo => deadline");
        assert_eq!(deadline, req.submitted_at + slo);
    }

    #[test]
    fn model_requests_carry_their_target() {
        let req = InferenceRequest::for_model(5, 2, vec![0.0; 3], 1, None);
        assert_eq!(req.model, 2);
        assert_eq!(req.class, 1);
        // The classed/default constructors target model 0.
        assert_eq!(InferenceRequest::classed(6, vec![0.0], 1, None).model, 0);
    }
}
