//! Request and response types flowing through the serving runtime.

use std::time::{Duration, Instant};

/// One inference request: a payload vector plus submission bookkeeping.
#[derive(Clone, Debug)]
pub struct InferenceRequest {
    /// Server-assigned unique id.
    pub id: u64,
    /// Input features; length must equal the served model's input dim.
    pub payload: Vec<f32>,
    /// When the request entered the server (starts the latency clock).
    pub submitted_at: Instant,
}

impl InferenceRequest {
    /// A request submitted now.
    pub fn new(id: u64, payload: Vec<f32>) -> Self {
        Self { id, payload, submitted_at: Instant::now() }
    }
}

/// The completed result of one request.
#[derive(Clone, Debug)]
pub struct InferenceResponse {
    /// Id of the originating request.
    pub id: u64,
    /// Model output row for this request.
    pub output: Vec<f32>,
    /// Submission-to-completion latency.
    pub latency: Duration,
    /// Size of the batch this request was fused into.
    pub batch_size: usize,
    /// Index of the worker that executed the batch.
    pub worker: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stamps_submission_time() {
        let before = Instant::now();
        let req = InferenceRequest::new(7, vec![1.0, 2.0]);
        assert_eq!(req.id, 7);
        assert_eq!(req.payload.len(), 2);
        assert!(req.submitted_at >= before);
        assert!(req.submitted_at.elapsed() < Duration::from_secs(1));
    }
}
