//! Shared helpers for the figure-regeneration binaries and Criterion
//! benchmarks.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper and prints
//! it as CSV on stdout; `EXPERIMENTS.md` records the paper-vs-measured
//! comparison.  The Criterion benches in `benches/` measure the library
//! itself (kernels, pruning algorithms, planner) rather than the modelled
//! GPU times.

/// Prints a CSV header line.
pub fn csv_header(columns: &[&str]) {
    println!("{}", columns.join(","));
}

/// Formats a float with enough precision for the figures without drowning
/// the CSV in digits.
pub fn fmt(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Prints one CSV row of heterogeneous fields.
pub fn csv_row(fields: &[String]) {
    println!("{}", fields.join(","));
}

/// Minimal JSON emission (the workspace builds offline, so no serde): just
/// enough structure for machine-readable benchmark artifacts like
/// `BENCH_serving.json`.  Values are pre-rendered strings; the helpers only
/// handle quoting, escaping and composition.
pub mod json {
    /// A quoted, escaped JSON string literal.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// A JSON number; non-finite values (which JSON cannot represent)
    /// become `null`.
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// `[a,b,c]` from pre-rendered values.
    pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
        format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
    }

    /// `{"k":v,...}` from pre-rendered values (keys are escaped here).
    pub fn object(fields: &[(&str, String)]) -> String {
        let body: Vec<String> = fields.iter().map(|(k, v)| format!("{}:{v}", string(k))).collect();
        format!("{{{}}}", body.join(","))
    }

    /// A parsed JSON value — just enough structure for the perf-regression
    /// gate to read benchmark artifacts back.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (parsed as `f64`).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup; `None` on non-objects or missing keys.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The number inside, if any.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(v) => Some(*v),
                _ => None,
            }
        }

        /// The string inside, if any.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The array elements, if any.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':')?;
                    let value = parse_value(bytes, pos)?;
                    fields.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') if bytes[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if bytes[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if bytes[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => {
                let start = *pos;
                while *pos < bytes.len()
                    && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *pos += 1;
                }
                let token = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
                token
                    .parse::<f64>()
                    .map(Value::Num)
                    .map_err(|_| format!("invalid number {token:?} at byte {start}"))
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex =
                                bytes.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(0.123456), "0.1235");
        assert_eq!(fmt(1234.5678), "1234.57");
        assert_eq!(fmt(-0.5), "-0.5000");
    }

    #[test]
    fn json_composition_and_escaping() {
        assert_eq!(json::string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json::number(1.5), "1.5");
        assert_eq!(json::number(f64::NAN), "null");
        let obj = json::object(&[
            ("name", json::string("tw")),
            ("workers", "2".to_string()),
            ("plan", json::array(["tile-wise", "csr"].map(json::string))),
        ]);
        assert_eq!(obj, r#"{"name":"tw","workers":2,"plan":["tile-wise","csr"]}"#);
    }

    #[test]
    fn json_parse_round_trips_emitted_documents() {
        let doc = json::object(&[
            ("benchmark", json::string("serving")),
            ("throughput_rps", json::number(1234.5)),
            ("nan", json::number(f64::NAN)),
            ("ok", "true".to_string()),
            (
                "runs",
                json::array(vec![
                    json::object(&[("workers", "2".to_string())]),
                    json::object(&[("workers", "4".to_string())]),
                ]),
            ),
        ]);
        let parsed = json::parse(&doc).expect("round trip");
        assert_eq!(parsed.get("benchmark").unwrap().as_str(), Some("serving"));
        assert_eq!(parsed.get("throughput_rps").unwrap().as_f64(), Some(1234.5));
        assert_eq!(parsed.get("nan"), Some(&json::Value::Null));
        assert_eq!(parsed.get("ok"), Some(&json::Value::Bool(true)));
        let runs = parsed.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].get("workers").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn json_parse_handles_escapes_whitespace_and_errors() {
        let v = json::parse(" {\n  \"a\\n\\\"b\" : [1, -2.5e1, null] }\n").unwrap();
        let arr = v.get("a\n\"b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(json::parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
        assert!(json::parse("{\"a\":1,}").is_err());
        assert!(json::parse("[1, 2] trailing").is_err());
        assert!(json::parse("").is_err());
        assert!(json::parse("{\"unterminated").is_err());
    }
}
