//! Shared helpers for the figure-regeneration binaries and Criterion
//! benchmarks.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper and prints
//! it as CSV on stdout; `EXPERIMENTS.md` records the paper-vs-measured
//! comparison.  The Criterion benches in `benches/` measure the library
//! itself (kernels, pruning algorithms, planner) rather than the modelled
//! GPU times.

/// Prints a CSV header line.
pub fn csv_header(columns: &[&str]) {
    println!("{}", columns.join(","));
}

/// Formats a float with enough precision for the figures without drowning
/// the CSV in digits.
pub fn fmt(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Prints one CSV row of heterogeneous fields.
pub fn csv_row(fields: &[String]) {
    println!("{}", fields.join(","));
}

/// Minimal JSON emission (the workspace builds offline, so no serde): just
/// enough structure for machine-readable benchmark artifacts like
/// `BENCH_serving.json`.  Values are pre-rendered strings; the helpers only
/// handle quoting, escaping and composition.
pub mod json {
    /// A quoted, escaped JSON string literal.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// A JSON number; non-finite values (which JSON cannot represent)
    /// become `null`.
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// `[a,b,c]` from pre-rendered values.
    pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
        format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
    }

    /// `{"k":v,...}` from pre-rendered values (keys are escaped here).
    pub fn object(fields: &[(&str, String)]) -> String {
        let body: Vec<String> = fields.iter().map(|(k, v)| format!("{}:{v}", string(k))).collect();
        format!("{{{}}}", body.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(0.123456), "0.1235");
        assert_eq!(fmt(1234.5678), "1234.57");
        assert_eq!(fmt(-0.5), "-0.5000");
    }

    #[test]
    fn json_composition_and_escaping() {
        assert_eq!(json::string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json::number(1.5), "1.5");
        assert_eq!(json::number(f64::NAN), "null");
        let obj = json::object(&[
            ("name", json::string("tw")),
            ("workers", "2".to_string()),
            ("plan", json::array(["tile-wise", "csr"].map(json::string))),
        ]);
        assert_eq!(obj, r#"{"name":"tw","workers":2,"plan":["tile-wise","csr"]}"#);
    }
}
