//! Shared helpers for the figure-regeneration binaries and Criterion
//! benchmarks.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper and prints
//! it as CSV on stdout; `EXPERIMENTS.md` records the paper-vs-measured
//! comparison.  The Criterion benches in `benches/` measure the library
//! itself (kernels, pruning algorithms, planner) rather than the modelled
//! GPU times.

/// Prints a CSV header line.
pub fn csv_header(columns: &[&str]) {
    println!("{}", columns.join(","));
}

/// Formats a float with enough precision for the figures without drowning
/// the CSV in digits.
pub fn fmt(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Prints one CSV row of heterogeneous fields.
pub fn csv_row(fields: &[String]) {
    println!("{}", fields.join(","));
}

/// Minimal JSON emission (the workspace builds offline, so no serde): just
/// enough structure for machine-readable benchmark artifacts like
/// `BENCH_serving.json`.  Values are pre-rendered strings; the helpers only
/// handle quoting, escaping and composition.
pub mod json {
    /// A quoted, escaped JSON string literal.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// A JSON number; non-finite values (which JSON cannot represent)
    /// become `null`.
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// `[a,b,c]` from pre-rendered values.
    pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
        format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
    }

    /// `{"k":v,...}` from pre-rendered values (keys are escaped here).
    pub fn object(fields: &[(&str, String)]) -> String {
        let body: Vec<String> = fields.iter().map(|(k, v)| format!("{}:{v}", string(k))).collect();
        format!("{{{}}}", body.join(","))
    }

    /// A parsed JSON value — just enough structure for the perf-regression
    /// gate to read benchmark artifacts back.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (parsed as `f64`).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup; `None` on non-objects or missing keys.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The number inside, if any.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(v) => Some(*v),
                _ => None,
            }
        }

        /// The string inside, if any.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The array elements, if any.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Deepest container nesting [`parse`] accepts.  The parser recurses
    /// per nesting level, so without a cap a hostile artifact of a few
    /// hundred kilobytes of `[` could overflow the stack; real benchmark
    /// reports nest a handful of levels.
    pub const MAX_PARSE_DEPTH: usize = 128;

    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else).  Containers may nest at most [`MAX_PARSE_DEPTH`] deep;
    /// `\uXXXX` escapes cover the full plane, including UTF-16 surrogate
    /// pairs (an unpaired surrogate parses as U+FFFD rather than failing
    /// the whole document).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                if depth >= MAX_PARSE_DEPTH {
                    return Err(format!("nesting deeper than {MAX_PARSE_DEPTH} at byte {}", *pos));
                }
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':')?;
                    let value = parse_value(bytes, pos, depth + 1)?;
                    fields.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                    }
                }
            }
            Some(b'[') => {
                if depth >= MAX_PARSE_DEPTH {
                    return Err(format!("nesting deeper than {MAX_PARSE_DEPTH} at byte {}", *pos));
                }
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(bytes, pos, depth + 1)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') if bytes[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if bytes[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if bytes[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => {
                let start = *pos;
                while *pos < bytes.len()
                    && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *pos += 1;
                }
                let token = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
                token
                    .parse::<f64>()
                    .map(Value::Num)
                    .map_err(|_| format!("invalid number {token:?} at byte {start}"))
            }
        }
    }

    /// Four hex digits starting at `start`, as a code unit.
    fn parse_hex4(bytes: &[u8], start: usize) -> Result<u32, String> {
        let hex = bytes.get(start..start + 4).ok_or_else(|| "truncated \\u escape".to_string())?;
        if !hex.iter().all(u8::is_ascii_hexdigit) {
            return Err("bad \\u escape".to_string());
        }
        u32::from_str_radix(std::str::from_utf8(hex).expect("hex digits are ASCII"), 16)
            .map_err(|_| "bad \\u escape".to_string())
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let unit = parse_hex4(bytes, *pos + 1)?;
                            *pos += 4;
                            let c = if (0xD800..=0xDBFF).contains(&unit) {
                                // UTF-16 high surrogate: only a following
                                // low-surrogate escape completes it into a
                                // non-BMP scalar; anything else decodes the
                                // lone surrogate as U+FFFD (JSON cannot
                                // carry it, but one bad escape should not
                                // sink a whole benchmark artifact).
                                let low = (bytes.get(*pos + 1) == Some(&b'\\')
                                    && bytes.get(*pos + 2) == Some(&b'u'))
                                .then(|| parse_hex4(bytes, *pos + 3).ok())
                                .flatten()
                                .filter(|low| (0xDC00..=0xDFFF).contains(low));
                                match low {
                                    Some(low) => {
                                        *pos += 6;
                                        let code =
                                            0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(code).unwrap_or('\u{fffd}')
                                    }
                                    None => '\u{fffd}',
                                }
                            } else {
                                char::from_u32(unit).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }
}

/// JSON run records for serving and cluster benchmark reports — the
/// `runs[]` elements of `BENCH_serving.json`-style artifacts the `compare`
/// gate reads back.  Shared between the `serving` binary and the round-trip
/// tests so the emitted and gated schemas cannot drift apart.
pub mod report {
    use crate::json;
    use tw_cluster::ClusterReport;
    use tw_serve::{ClassStats, ServeReport};

    fn class_rows(classes: &[ClassStats]) -> String {
        json::array(classes.iter().map(|c| {
            json::object(&[
                ("name", json::string(&c.name)),
                ("completed", c.completed.to_string()),
                ("shed", c.shed.to_string()),
                ("good", c.good.to_string()),
                ("p50_ms", json::number(c.latency.p50_s * 1e3)),
                ("p99_ms", json::number(c.latency.p99_s * 1e3)),
            ])
        }))
    }

    fn model_rows(models: &[tw_serve::ModelStats]) -> String {
        json::array(models.iter().map(|m| {
            json::object(&[
                ("name", json::string(&m.name)),
                ("completed", m.completed.to_string()),
                ("cold", m.cold.to_string()),
                ("tile_hit_rate", json::number(m.tile_hit_rate())),
                ("bytes_paged", m.bytes_paged.to_string()),
                ("warm_p99_ms", json::number(m.warm_latency.p99_s * 1e3)),
                ("cold_p99_ms", json::number(m.cold_latency.p99_s * 1e3)),
            ])
        }))
    }

    /// One single-server run.  `scenario`, `backend` and `workers` are the
    /// key the perf-regression gate matches runs by.
    pub fn serve_run(
        scenario: &str,
        backend: &str,
        workers: usize,
        report: &ServeReport,
    ) -> String {
        let mut fields = vec![
            ("scenario", json::string(scenario)),
            ("backend", json::string(backend)),
            ("plan", json::array(report.backend_plan.iter().map(|p| json::string(p)))),
            ("workers", workers.to_string()),
            ("requests", report.completed.to_string()),
            ("shed", report.shed.to_string()),
            ("throughput_rps", json::number(report.throughput_rps())),
            ("goodput_rps", json::number(report.goodput_rps())),
            ("p50_ms", json::number(report.latency.p50_s * 1e3)),
            ("p95_ms", json::number(report.latency.p95_s * 1e3)),
            ("p99_ms", json::number(report.latency.p99_s * 1e3)),
            ("mean_batch", json::number(report.mean_batch_size())),
            ("sim_gpu_s", json::number(report.sim_gpu_s)),
            ("classes", class_rows(&report.classes)),
        ];
        if !report.models.is_empty() {
            fields.push(("bytes_paged", report.bytes_paged.to_string()));
            fields.push(("transfer_sim_s", json::number(report.transfer_sim_s)));
            fields.push(("models", model_rows(&report.models)));
        }
        json::object(&fields)
    }

    /// One cluster run, gate-compatible: the gate key is
    /// `(scenario, backend, total workers)` with `backend` supplied by the
    /// caller (`cluster-<balancer>`, or `mmN-cluster-<balancer>` for
    /// multi-model runs so paging fleets never share a baseline entry with
    /// single-model ones), and the record adds balance skew, scale events
    /// and one row per replica.
    pub fn cluster_run(scenario: &str, backend: &str, report: &ClusterReport) -> String {
        let replicas = json::array(report.replicas.iter().map(|r| {
            json::object(&[
                ("name", json::string(&r.name)),
                ("device", json::string(&r.device)),
                ("workers", r.workers.to_string()),
                ("plan", json::array(r.plan.iter().map(|p| json::string(p)))),
                ("routed", r.routed.to_string()),
                ("completed", r.report.completed.to_string()),
                ("shed", r.report.shed.to_string()),
                ("p99_ms", json::number(r.report.latency.p99_s * 1e3)),
            ])
        }));
        let total_workers: usize = report.replicas.iter().map(|r| r.workers).sum();
        let mut fields = vec![
            ("scenario", json::string(scenario)),
            ("backend", json::string(backend)),
            ("balancer", json::string(&report.balancer)),
            ("workers", total_workers.to_string()),
            ("requests", report.completed.to_string()),
            ("shed", report.shed.to_string()),
            ("throughput_rps", json::number(report.throughput_rps())),
            ("goodput_rps", json::number(report.goodput_rps())),
            ("p50_ms", json::number(report.latency.p50_s * 1e3)),
            ("p95_ms", json::number(report.latency.p95_s * 1e3)),
            ("p99_ms", json::number(report.latency.p99_s * 1e3)),
            ("mean_batch", json::number(report.mean_batch_size())),
            ("sim_gpu_s", json::number(report.sim_gpu_s())),
            ("balance_skew", json::number(report.balance_skew())),
            ("scale_events", json::array(report.scale_events.iter().map(|e| json::string(e)))),
            ("classes", class_rows(&report.classes)),
            ("replicas", replicas),
        ];
        if !report.models.is_empty() {
            fields.push(("bytes_paged", report.bytes_paged().to_string()));
            fields.push(("models", model_rows(&report.models)));
        }
        json::object(&fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(0.123456), "0.1235");
        assert_eq!(fmt(1234.5678), "1234.57");
        assert_eq!(fmt(-0.5), "-0.5000");
    }

    #[test]
    fn json_composition_and_escaping() {
        assert_eq!(json::string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json::number(1.5), "1.5");
        assert_eq!(json::number(f64::NAN), "null");
        let obj = json::object(&[
            ("name", json::string("tw")),
            ("workers", "2".to_string()),
            ("plan", json::array(["tile-wise", "csr"].map(json::string))),
        ]);
        assert_eq!(obj, r#"{"name":"tw","workers":2,"plan":["tile-wise","csr"]}"#);
    }

    #[test]
    fn json_parse_round_trips_emitted_documents() {
        let doc = json::object(&[
            ("benchmark", json::string("serving")),
            ("throughput_rps", json::number(1234.5)),
            ("nan", json::number(f64::NAN)),
            ("ok", "true".to_string()),
            (
                "runs",
                json::array(vec![
                    json::object(&[("workers", "2".to_string())]),
                    json::object(&[("workers", "4".to_string())]),
                ]),
            ),
        ]);
        let parsed = json::parse(&doc).expect("round trip");
        assert_eq!(parsed.get("benchmark").unwrap().as_str(), Some("serving"));
        assert_eq!(parsed.get("throughput_rps").unwrap().as_f64(), Some(1234.5));
        assert_eq!(parsed.get("nan"), Some(&json::Value::Null));
        assert_eq!(parsed.get("ok"), Some(&json::Value::Bool(true)));
        let runs = parsed.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].get("workers").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn json_parse_handles_escapes_whitespace_and_errors() {
        let v = json::parse(" {\n  \"a\\n\\\"b\" : [1, -2.5e1, null] }\n").unwrap();
        let arr = v.get("a\n\"b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(json::parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
        assert!(json::parse("{\"a\":1,}").is_err());
        assert!(json::parse("[1, 2] trailing").is_err());
        assert!(json::parse("").is_err());
        assert!(json::parse("{\"unterminated").is_err());
    }

    #[test]
    fn json_parse_decodes_surrogate_pairs_and_survives_lone_surrogates() {
        // A non-BMP scalar escaped the UTF-16 way round-trips to one char.
        assert_eq!(json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
        // Lone or mispaired surrogates decode as U+FFFD instead of sinking
        // the document.
        assert_eq!(json::parse("\"\\ud83dx\"").unwrap().as_str(), Some("\u{fffd}x"));
        assert_eq!(json::parse("\"a\\ud83d\"").unwrap().as_str(), Some("a\u{fffd}"));
        assert_eq!(
            json::parse("\"\\ud83d\\u0041\"").unwrap().as_str(),
            Some("\u{fffd}A"),
            "a high surrogate followed by a BMP escape keeps both"
        );
        // A lone *low* surrogate is equally unrepresentable.
        assert_eq!(json::parse("\"\\ude00\"").unwrap().as_str(), Some("\u{fffd}"));
        // Truncated and non-hex escapes are still hard errors.
        assert!(json::parse("\"\\u00\"").is_err());
        assert!(json::parse("\"\\uzzzz\"").is_err());
        // Raw (unescaped) non-BMP output from json::string round-trips too.
        let doc = json::string("emoji 🚀 and text");
        assert_eq!(json::parse(&doc).unwrap().as_str(), Some("emoji 🚀 and text"));
    }

    #[test]
    fn json_parse_caps_container_nesting() {
        let nested = |depth: usize| format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
        // Comfortably deep documents parse...
        assert!(json::parse(&nested(json::MAX_PARSE_DEPTH)).is_ok());
        // ...one past the cap is a clean error...
        let err = json::parse(&nested(json::MAX_PARSE_DEPTH + 1)).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        // ...and a hostile megabyte of '[' cannot blow the stack (this is
        // the case the cap exists for — unterminated, pure recursion bait).
        assert!(json::parse(&"[".repeat(1_000_000)).is_err());
        let mixed = "{\"a\":".repeat(500_000) + "1" + &"}".repeat(500_000);
        assert!(json::parse(&mixed).is_err());
    }

    #[test]
    fn serve_run_record_round_trips_through_parse() {
        use std::time::Duration;
        use tw_serve::{ClassPolicy, RunObservation, ServeReport, ShedReason, ShedRecord};
        let classes = vec![
            ClassPolicy::with_deadline("interactive", Duration::from_millis(50)),
            ClassPolicy::best_effort("batch"),
        ];
        let observations = vec![
            RunObservation {
                class: 0,
                model: 0,
                cold: false,
                latency_s: 0.010,
                deadline_met: Some(true),
            },
            RunObservation {
                class: 1,
                model: 0,
                cold: false,
                latency_s: 0.200,
                deadline_met: None,
            },
            RunObservation {
                class: 1,
                model: 0,
                cold: false,
                latency_s: 0.300,
                deadline_met: None,
            },
        ];
        let shed = vec![ShedRecord { id: 9, class: 0, reason: ShedReason::Deadline }];
        let report = ServeReport::from_observations(
            &observations,
            &shed,
            &classes,
            Duration::from_secs(2),
            Vec::new(),
        )
        .with_backend_plan(vec!["tile-wise".into(), "csr".into()]);

        let doc = report::serve_run("bursty", "auto", 2, &report);
        let parsed = json::parse(&doc).expect("emitted record parses");
        assert_eq!(parsed.get("scenario").unwrap().as_str(), Some("bursty"));
        assert_eq!(parsed.get("backend").unwrap().as_str(), Some("auto"));
        assert_eq!(parsed.get("workers").unwrap().as_f64(), Some(2.0));
        assert_eq!(parsed.get("requests").unwrap().as_f64(), Some(3.0));
        assert_eq!(parsed.get("shed").unwrap().as_f64(), Some(1.0));
        assert_eq!(parsed.get("throughput_rps").unwrap().as_f64(), Some(report.throughput_rps()));
        assert_eq!(
            parsed.get("p99_ms").unwrap().as_f64(),
            Some(report.latency.p99_s * 1e3),
            "the gate's p99 survives the round trip exactly"
        );
        let plan = parsed.get("plan").unwrap().as_arr().unwrap();
        assert_eq!(plan[1].as_str(), Some("csr"));
        let class_rows = parsed.get("classes").unwrap().as_arr().unwrap();
        assert_eq!(class_rows.len(), 2);
        assert_eq!(class_rows[0].get("name").unwrap().as_str(), Some("interactive"));
        assert_eq!(class_rows[0].get("good").unwrap().as_f64(), Some(1.0));
        assert_eq!(class_rows[1].get("completed").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn cluster_run_record_round_trips_through_parse() {
        use std::time::Duration;
        use tw_cluster::{ClusterReport, ReplicaReport};
        use tw_serve::{LatencySummary, ServeReport};
        let replica = |name: &str, workers: usize, completed: usize| ReplicaReport {
            name: name.into(),
            device: "a100".into(),
            workers,
            plan: vec!["bsr".into(), "bsr".into()],
            routed: completed,
            report: ServeReport::from_latencies(
                vec![0.01; completed],
                Duration::from_secs(1),
                Vec::new(),
            ),
        };
        let report = ClusterReport {
            balancer: "jsq".into(),
            issued: 30,
            completed: 30,
            shed: 0,
            wall: Duration::from_secs(1),
            latency: LatencySummary::from_samples(vec![0.01; 30]),
            classes: Vec::new(),
            models: Vec::new(),
            replicas: vec![replica("r0", 4, 20), replica("r1", 1, 10)],
            scale_events: vec!["+auto-1 at submission 12 (fleet depth 40, 3 live)".into()],
        };

        let doc = report::cluster_run("bursty", "cluster-jsq", &report);
        let parsed = json::parse(&doc).expect("emitted record parses");
        assert_eq!(parsed.get("backend").unwrap().as_str(), Some("cluster-jsq"));
        assert_eq!(parsed.get("balancer").unwrap().as_str(), Some("jsq"));
        assert_eq!(parsed.get("workers").unwrap().as_f64(), Some(5.0), "fleet total");
        assert_eq!(parsed.get("requests").unwrap().as_f64(), Some(30.0));
        assert_eq!(parsed.get("balance_skew").unwrap().as_f64(), Some(report.balance_skew()));
        let replicas = parsed.get("replicas").unwrap().as_arr().unwrap();
        assert_eq!(replicas.len(), 2);
        assert_eq!(replicas[0].get("name").unwrap().as_str(), Some("r0"));
        assert_eq!(replicas[0].get("device").unwrap().as_str(), Some("a100"));
        assert_eq!(replicas[1].get("routed").unwrap().as_f64(), Some(10.0));
        let events = parsed.get("scale_events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].as_str().unwrap().starts_with("+auto-1"));
        // The gate key fields exist with the same names as serve records,
        // so `compare` consumes both artifact kinds unchanged.
        for key in ["scenario", "backend", "workers", "throughput_rps", "p99_ms"] {
            assert!(parsed.get(key).is_some(), "gate field {key} missing");
        }
    }
}
