//! Shared helpers for the figure-regeneration binaries and Criterion
//! benchmarks.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper and prints
//! it as CSV on stdout; `EXPERIMENTS.md` records the paper-vs-measured
//! comparison.  The Criterion benches in `benches/` measure the library
//! itself (kernels, pruning algorithms, planner) rather than the modelled
//! GPU times.

/// Prints a CSV header line.
pub fn csv_header(columns: &[&str]) {
    println!("{}", columns.join(","));
}

/// Formats a float with enough precision for the figures without drowning
/// the CSV in digits.
pub fn fmt(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Prints one CSV row of heterogeneous fields.
pub fn csv_row(fields: &[String]) {
    println!("{}", fields.join(","));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(0.123456), "0.1235");
        assert_eq!(fmt(1234.5678), "1234.57");
        assert_eq!(fmt(-0.5), "-0.5000");
    }
}
