//! Fig. 9: the TW design space on BERT — accuracy (9a) and normalised
//! tensor-core latency (9b) versus sparsity for EW, TW (G = 8..128) and BW
//! (8/32/64).

use tilewise::figures;
use tw_bench::{csv_header, csv_row, fmt};

fn main() {
    let sparsities = [0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.9];
    csv_header(&["pattern", "sparsity", "metric", "norm_latency", "gemm_speedup"]);
    for p in figures::fig09_design_space(&sparsities) {
        csv_row(&[
            p.pattern.clone(),
            fmt(p.sparsity),
            fmt(p.metric),
            fmt(p.normalized_latency),
            fmt(p.gemm_speedup),
        ]);
    }
}
