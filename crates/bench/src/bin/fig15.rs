//! Fig. 15: end-to-end latency breakdown (GEMM / transpose / others) of the
//! 75%-sparsity TW BERT and NMT models under the transpose and fusion
//! optimisation ablation.

use tilewise::figures;
use tw_bench::{csv_header, csv_row, fmt};

fn main() {
    csv_header(&["model", "config", "gemm_ms", "transpose_ms", "others_ms", "total_ms"]);
    for row in figures::fig15_breakdown() {
        let total = row.gemm_ms + row.transpose_ms + row.others_ms;
        csv_row(&[
            row.model.clone(),
            row.config.to_string(),
            fmt(row.gemm_ms),
            fmt(row.transpose_ms),
            fmt(row.others_ms),
            fmt(total),
        ]);
    }
}
