//! The headline result: average GEMM speedup of each pattern over the dense
//! baseline at iso-accuracy sparsities, on tensor cores and CUDA cores
//! (paper: TW 1.95x / 2.86x while EW, VW and BW all slow down).

use tilewise::figures;
use tw_bench::{csv_header, csv_row, fmt};

fn main() {
    csv_header(&["pattern", "tensor_core_speedup", "cuda_core_speedup"]);
    for row in figures::headline_speedups() {
        csv_row(&[row.pattern.clone(), fmt(row.tensor_speedup), fmt(row.cuda_speedup)]);
    }
}
