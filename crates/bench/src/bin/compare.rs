//! The perf-regression gate: compare a fresh `BENCH_serving.json` against a
//! committed baseline and fail (exit 1) when throughput drops — or p99
//! latency rises — by more than the threshold.
//!
//! Runs are matched by `(scenario, backend, workers)`.  A baseline run
//! missing from the current artifact is itself a failure (a silently
//! dropped benchmark is how regressions hide), while *extra* current runs
//! are reported and ignored, so the baseline can trail newly added
//! configurations gracefully.
//!
//! `--current` may repeat: the gate merges every given artifact's runs, so
//! one baseline can cover benchmark configurations that take several
//! invocations to produce (e.g. the single-server closed loop *and* a
//! cluster scenario).
//!
//! ```text
//! cargo run --release -p tw-bench --bin compare -- \
//!     --baseline BENCH_serving.baseline.json \
//!     --current  BENCH_serving.json \
//!     [--current BENCH_cluster.json] [--threshold 0.25]
//! ```

use std::fmt::Display;
use tw_bench::json::{self, Value};

const USAGE: &str = "usage: compare --baseline PATH --current PATH [--current PATH ..] \
[--threshold FRACTION (default 0.25)]";

fn fail(msg: impl Display) -> ! {
    eprintln!("compare: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// The comparable facts of one benchmark run.
#[derive(Clone, Debug, PartialEq)]
struct Run {
    scenario: String,
    backend: String,
    workers: u64,
    throughput_rps: f64,
    p99_ms: f64,
}

impl Run {
    fn key(&self) -> String {
        format!("{}/{}/{}w", self.scenario, self.backend, self.workers)
    }
}

fn load_runs(path: &str) -> Vec<Run> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read {path:?}: {e}")));
    let doc = json::parse(&text).unwrap_or_else(|e| fail(format!("{path}: invalid JSON: {e}")));
    let runs = doc
        .get("runs")
        .and_then(Value::as_arr)
        .unwrap_or_else(|| fail(format!("{path}: missing \"runs\" array")));
    runs.iter()
        .enumerate()
        .map(|(i, run)| {
            let field = |name: &str| {
                run.get(name).unwrap_or_else(|| fail(format!("{path}: run {i} missing {name:?}")))
            };
            let num = |name: &str| {
                field(name)
                    .as_f64()
                    .unwrap_or_else(|| fail(format!("{path}: run {i} field {name:?} not a number")))
            };
            Run {
                // Pre-scenario artifacts lack the field; treat them as the
                // closed loop they measured.
                scenario: run
                    .get("scenario")
                    .and_then(Value::as_str)
                    .unwrap_or("closed")
                    .to_string(),
                backend: field("backend")
                    .as_str()
                    .unwrap_or_else(|| fail(format!("{path}: run {i} backend not a string")))
                    .to_string(),
                workers: num("workers") as u64,
                throughput_rps: num("throughput_rps"),
                p99_ms: num("p99_ms"),
            }
        })
        .collect()
}

fn main() {
    let mut baseline_path: Option<String> = None;
    let mut current_paths: Vec<String> = Vec::new();
    let mut threshold = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| fail(format!("missing value for {name}")));
        match flag.as_str() {
            "--baseline" => baseline_path = Some(value("--baseline")),
            "--current" => current_paths.push(value("--current")),
            "--threshold" => {
                threshold = value("--threshold")
                    .parse()
                    .unwrap_or_else(|_| fail("--threshold expects a number"));
            }
            other => fail(format!("unknown flag {other:?}")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| fail("--baseline is required"));
    if current_paths.is_empty() {
        fail("--current is required (repeat it to merge several artifacts)");
    }
    if !threshold.is_finite() || !(0.0..1.0).contains(&threshold) {
        fail("--threshold must be a fraction in [0, 1)");
    }

    let baseline = load_runs(&baseline_path);
    let current: Vec<Run> = current_paths.iter().flat_map(|path| load_runs(path)).collect();
    if baseline.is_empty() {
        fail(format!("{baseline_path}: no runs to compare against"));
    }

    let mut failures = 0usize;
    for base in &baseline {
        let key = base.key();
        let Some(cur) = current.iter().find(|c| c.key() == key) else {
            eprintln!("FAIL {key}: run present in baseline but missing from current artifact");
            failures += 1;
            continue;
        };
        // Throughput: lower is worse.
        let tp_floor = base.throughput_rps * (1.0 - threshold);
        let tp_change = cur.throughput_rps / base.throughput_rps - 1.0;
        if cur.throughput_rps < tp_floor {
            eprintln!(
                "FAIL {key}: throughput {:.1} req/s vs baseline {:.1} ({:+.1}%, floor {:.1})",
                cur.throughput_rps,
                base.throughput_rps,
                tp_change * 100.0,
                tp_floor,
            );
            failures += 1;
        } else {
            eprintln!(
                "ok   {key}: throughput {:.1} req/s vs baseline {:.1} ({:+.1}%)",
                cur.throughput_rps,
                base.throughput_rps,
                tp_change * 100.0,
            );
        }
        // p99 latency: higher is worse.
        let p99_ceiling = base.p99_ms * (1.0 + threshold);
        let p99_change = cur.p99_ms / base.p99_ms - 1.0;
        if cur.p99_ms > p99_ceiling {
            eprintln!(
                "FAIL {key}: p99 {:.2}ms vs baseline {:.2}ms ({:+.1}%, ceiling {:.2}ms)",
                cur.p99_ms,
                base.p99_ms,
                p99_change * 100.0,
                p99_ceiling,
            );
            failures += 1;
        } else {
            eprintln!(
                "ok   {key}: p99 {:.2}ms vs baseline {:.2}ms ({:+.1}%)",
                cur.p99_ms,
                base.p99_ms,
                p99_change * 100.0,
            );
        }
    }
    for cur in &current {
        if !baseline.iter().any(|b| b.key() == cur.key()) {
            eprintln!(
                "WARN {}: no baseline entry for this (scenario, backend, workers) key — run NOT \
                 gated; add it to the baseline file to start gating it",
                cur.key()
            );
        }
    }

    if failures > 0 {
        eprintln!(
            "compare: {failures} regression(s) beyond the {:.0}% threshold",
            threshold * 100.0
        );
        std::process::exit(1);
    }
    eprintln!(
        "compare: all {} baseline run(s) within the {:.0}% threshold",
        baseline.len(),
        threshold * 100.0
    );
}
