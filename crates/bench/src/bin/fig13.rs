//! Fig. 13: sparsity heatmaps of BERT layer-0's query weight matrix under
//! EW, VW, BW and TW at 75% sparsity (16x16 grid of local sparsities).

use tilewise::figures;
use tw_bench::{csv_header, csv_row, fmt};

fn main() {
    csv_header(&["pattern", "grid_row", "grid_col", "sparsity"]);
    for (pattern, grid) in figures::fig13_heatmaps(16) {
        for (r, row) in grid.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                csv_row(&[pattern.clone(), r.to_string(), c.to_string(), fmt(*v)]);
            }
        }
    }
}
