//! Fig. 12: accuracy versus sparsity of EW / TW / TEW-5% / VW / BW on the
//! four evaluation tasks (MNLI, SQuAD is approximated by the same BERT
//! backbone, ImageNet, IWSLT BLEU).

use tilewise::figures;
use tw_bench::{csv_header, csv_row, fmt};

fn main() {
    let sparsities = [0.3, 0.5, 0.6, 0.7, 0.75, 0.8, 0.9];
    csv_header(&["model", "task", "pattern", "sparsity", "metric"]);
    for (model, task, points) in figures::fig12_accuracy_all_models(&sparsities) {
        for p in points {
            csv_row(&[
                model.clone(),
                task.clone(),
                p.pattern.clone(),
                fmt(p.sparsity),
                fmt(p.metric),
            ]);
        }
    }
}
