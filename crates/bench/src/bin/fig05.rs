//! Fig. 5: per-weight-matrix sparsity of BERT under global EW pruning at
//! 75% overall sparsity (72 matrices, uneven allocation).

use tilewise::figures;
use tw_bench::{csv_header, csv_row, fmt};

fn main() {
    csv_header(&["weight_matrix_index", "sparsity"]);
    for (i, s) in figures::fig05_per_layer_sparsity().iter().enumerate() {
        csv_row(&[i.to_string(), fmt(*s)]);
    }
}
