//! Fig. 10: the TEW hybrid pattern at 75% sparsity — accuracy and latency
//! (tensor and CUDA cores, normalised to the dense model on CUDA cores) for
//! delta in {1%, 2.5%, 5%, 10%, 15%}.

use tilewise::figures;
use tw_bench::{csv_header, csv_row, fmt};

fn main() {
    csv_header(&["config", "metric", "tensor_latency_norm", "cuda_latency_norm"]);
    for row in figures::fig10_tew_delta() {
        csv_row(&[
            row.config.clone(),
            fmt(row.metric),
            fmt(row.tensor_latency_norm),
            fmt(row.cuda_latency_norm),
        ]);
    }
}
