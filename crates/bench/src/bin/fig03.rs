//! Fig. 3: sparsity and execution time of dense vs EW/VW/BW sparse models
//! (VGG and BERT).  The sparse baselines must all be slower than their dense
//! counterparts.

use tilewise::figures;
use tw_bench::{csv_header, csv_row, fmt};

fn main() {
    csv_header(&["model", "config", "sparsity", "gemm_time_ms"]);
    for row in figures::fig03_baseline_patterns() {
        csv_row(&[row.model.to_string(), row.config.clone(), fmt(row.sparsity), fmt(row.time_ms)]);
    }
}
