//! The serving benchmark: drive `tw-serve` with a synthetic closed loop and
//! report throughput and latency percentiles per worker-pool size.
//!
//! Per worker count (default 1, 2, 4) the benchmark builds a pruned
//! tile-wise model, generates seeded request payloads, pushes them through
//! the queue → dynamic batcher → worker pool pipeline and prints one CSV
//! row.  Workers execute the real batched sparse CPU kernels and then dwell
//! for the batch's simulated V100 time (scaled so one full batch costs
//! `--dwell-ms` of wall clock), so throughput scales with pool-level
//! overlap exactly as an accelerator-backed serving tier does — even on a
//! single-core host.
//!
//! ```text
//! cargo run --release -p tw-bench --bin serving -- \
//!     --requests 2000 --batch 8 --wait-ms 2 --workers 1,2,4 --dwell-ms 4
//! ```

use std::sync::Arc;
use tilewise::{Backend, InferenceSession};
use tw_bench::{csv_header, csv_row, fmt};
use tw_models::RequestGenerator;
use tw_serve::{serve_closed_loop, GpuDwell, ServeConfig};

struct Options {
    requests: usize,
    max_batch: usize,
    wait_ms: f64,
    workers: Vec<usize>,
    dims: Vec<usize>,
    sparsity: f64,
    granularity: usize,
    backend: Backend,
    dwell_ms: f64,
    seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            requests: 2000,
            max_batch: 8,
            wait_ms: 2.0,
            workers: vec![1, 2, 4],
            dims: vec![192, 192, 96],
            sparsity: 0.75,
            granularity: 32,
            backend: Backend::TileWise,
            dwell_ms: 4.0,
            seed: 42,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match flag.as_str() {
            "--requests" => opts.requests = value("--requests").parse().expect("usize"),
            "--batch" => opts.max_batch = value("--batch").parse().expect("usize"),
            "--wait-ms" => opts.wait_ms = value("--wait-ms").parse().expect("f64"),
            "--workers" => {
                opts.workers = value("--workers")
                    .split(',')
                    .map(|w| w.trim().parse().expect("worker count"))
                    .collect();
            }
            "--dims" => {
                opts.dims =
                    value("--dims").split(',').map(|d| d.trim().parse().expect("dim")).collect();
            }
            "--sparsity" => opts.sparsity = value("--sparsity").parse().expect("f64"),
            "--granularity" => opts.granularity = value("--granularity").parse().expect("usize"),
            "--backend" => {
                opts.backend = match value("--backend").as_str() {
                    "tw" | "tilewise" => Backend::TileWise,
                    "csr" => Backend::Csr,
                    "dense" => Backend::Dense,
                    other => panic!("unknown backend {other:?} (use tw|csr|dense)"),
                };
            }
            "--dwell-ms" => opts.dwell_ms = value("--dwell-ms").parse().expect("f64"),
            "--seed" => opts.seed = value("--seed").parse().expect("u64"),
            other => panic!("unknown flag {other:?}"),
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    assert!(opts.requests > 0, "need at least one request");
    assert!(!opts.workers.is_empty(), "need at least one worker count");

    let session = Arc::new(InferenceSession::synthetic_chain(
        &opts.dims,
        opts.sparsity,
        opts.granularity,
        opts.seed,
        opts.backend,
    ));
    // Scale simulated V100 time so one full batch dwells `dwell_ms` of wall
    // clock; 0 disables the dwell entirely (pure CPU benchmark).
    let gpu_dwell = if opts.dwell_ms > 0.0 {
        let full_batch_s = session.simulated_batch_seconds(opts.max_batch);
        Some(GpuDwell { time_scale: opts.dwell_ms * 1e-3 / full_batch_s })
    } else {
        None
    };

    eprintln!(
        "# serving {} requests | model {:?} @ {:.0}% sparsity ({} backend) | batch<={} wait {}ms | dwell {}ms/batch",
        opts.requests,
        opts.dims,
        session.sparsity() * 100.0,
        session.backend().name(),
        opts.max_batch,
        opts.wait_ms,
        opts.dwell_ms,
    );
    eprintln!(
        "# modelled batching win: one fused batch of {} is {:.2}x faster on-device than {} singles over 4 streams",
        opts.max_batch,
        session.batching_speedup(opts.max_batch, 4),
        opts.max_batch,
    );

    csv_header(&[
        "workers",
        "requests",
        "throughput_rps",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "mean_batch",
        "sim_gpu_s",
    ]);

    let mut generator = RequestGenerator::new(session.input_dim(), 1.0, opts.seed);
    let mut throughputs: Vec<(usize, f64)> = Vec::new();
    for &workers in &opts.workers {
        let config = ServeConfig {
            max_batch_size: opts.max_batch,
            max_batch_wait: std::time::Duration::from_secs_f64(opts.wait_ms * 1e-3),
            workers,
            queue_capacity: (opts.max_batch * workers * 4).max(64),
            gpu_dwell,
        };
        let payloads = generator.payloads(opts.requests);
        let (report, _) = serve_closed_loop(Arc::clone(&session), config, payloads);
        assert_eq!(report.completed, opts.requests, "lost requests at {workers} workers");
        csv_row(&[
            workers.to_string(),
            report.completed.to_string(),
            fmt(report.throughput_rps()),
            fmt(report.latency.p50_s * 1e3),
            fmt(report.latency.p95_s * 1e3),
            fmt(report.latency.p99_s * 1e3),
            fmt(report.mean_batch_size()),
            fmt(report.sim_gpu_s),
        ]);
        throughputs.push((workers, report.throughput_rps()));
    }

    // Scaling verdict over the sorted worker counts actually measured.
    let mut sorted = throughputs.clone();
    sorted.sort_by_key(|&(w, _)| w);
    let monotonic = sorted.windows(2).all(|pair| pair[1].1 > pair[0].1);
    let span = sorted.last().map(|&(w, t)| (w, t)).zip(sorted.first().map(|&(w, t)| (w, t)));
    if let Some(((w_hi, t_hi), (w_lo, t_lo))) = span {
        eprintln!(
            "# scaling: {:.1} req/s @ {} worker(s) -> {:.1} req/s @ {} worker(s) ({:.2}x), monotonic: {}",
            t_lo,
            w_lo,
            t_hi,
            w_hi,
            t_hi / t_lo,
            if monotonic { "yes" } else { "NO" },
        );
    }
}
