//! The serving benchmark: drive `tw-serve` under a chosen traffic scenario
//! and report throughput, goodput and latency percentiles per worker-pool
//! size and kernel backend — overall and per request class.
//!
//! Scenarios (`--scenario`):
//!
//! * `closed` (default) — the legacy closed loop: submit every request
//!   back-to-back under blocking backpressure; measures peak throughput.
//!   This is the scenario the CI perf-regression gate pins, because its
//!   numbers are dwell-dominated and stable across hosts.
//! * `steady` — open-loop Poisson arrivals at `--rate`, 30% interactive
//!   (SLO `--slo-ms`) / 70% batch.
//! * `bursty` — open-loop ON/OFF bursts (3.7x `--rate` inside bursts; the
//!   phase weights preserve the nominal mean rate), same interactive/batch
//!   mix.
//! * `heavy-tail` — open-loop Pareto (alpha 1.5) inter-arrivals: request
//!   trains separated by rare huge gaps.
//! * `mixed-priority` — the SLO showcase: steady arrivals with the
//!   interactive/batch mix *and* admission control shedding requests whose
//!   deadline is already hopeless (plus any `--shed-depth`/
//!   `--wait-budget-ms` bounds given).
//!
//! For every selected backend (`--backend` takes a comma list of
//! `dense|tw|csr|bsr|auto`; `--sweep-backends` selects all five) and worker
//! count the benchmark builds a pruned model, binds kernels, replays the
//! scenario and prints one CSV row per run plus one per class.  Workers
//! execute real batched sparse CPU kernels, then dwell for the batch's
//! simulated V100 time (scaled so a full dense batch costs `--dwell-ms`).
//!
//! With `--json PATH` the same numbers are written as a machine-readable
//! artifact — the input of the `compare` binary's CI regression gate:
//!
//! ```text
//! cargo run --release -p tw-bench --bin serving -- \
//!     --scenario bursty --rate 600 --requests 2000 --backend auto \
//!     --workers 1,2,4 --json BENCH_serving.json
//! ```

use std::fmt::Display;
use std::sync::Arc;
use std::time::Duration;
use tilewise::{AutoPlanner, Backend, InferenceSession, KernelRegistry, TileWiseMatrix};
use tw_bench::{csv_header, csv_row, fmt, json, report};
use tw_cluster::{AutoscalerConfig, BalancerKind, Cluster, ClusterConfig, ReplicaSpec};
use tw_gpu_sim::GpuDevice;
use tw_memory::{ModelRegistry, PolicyKind};
use tw_models::{RequestGenerator, TrafficSpec};
use tw_serve::{
    serve_closed_loop, serve_closed_loop_models, serve_open_loop, serve_open_loop_models,
    AdmissionConfig, GpuDwell, MemoryConfig, ServeConfig,
};

const USAGE: &str = "usage: serving [--requests N] [--batch N] [--wait-ms MS] \
[--workers A,B,..] [--dims D0,D1,..] [--sparsity F] [--granularity N] \
[--backend dense|tw|csr|bsr|auto[,..]] [--sweep-backends] [--dwell-ms MS] \
[--scenario closed|steady|bursty|heavy-tail|mixed-priority] [--rate RPS] \
[--slo-ms MS] [--shed-depth N] [--wait-budget-ms MS] [--shed-hopeless] \
[--replicas N] [--balancer rr|jsq|p2c|least-wait|residency[,..]] [--heterogeneous] \
[--device v100|a100|midrange[,..]] [--autoscale] \
[--models N] [--vram-mb MB] [--mem-policy lru|cost-aware] \
[--seed N] [--json PATH]

With --replicas >= 2 the benchmark serves the (open-loop) scenario through a
tw-cluster fleet instead of a single server, once per --balancer policy.
Homogeneous fleets take the first --workers/--backend/--device entry for
every replica; --heterogeneous cycles all three lists across replicas.

With --models >= 2 the benchmark hosts N independently-pruned models behind
one server (or fleet), assigning requests round-robin across them; --vram-mb
caps device memory so weight tiles page over PCIe (tw-memory), making
cold-start vs warm latency visible per model.  Gate records key such runs as
backend \"mmN-<backend>\".";

/// Reports a usage error on stderr and exits non-zero — the benchmark is a
/// CLI, so malformed flags should produce a readable message, not a panic
/// backtrace.
fn fail(msg: impl Display) -> ! {
    eprintln!("serving: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Scenario {
    Closed,
    Steady,
    Bursty,
    HeavyTail,
    MixedPriority,
}

impl Scenario {
    fn as_str(self) -> &'static str {
        match self {
            Scenario::Closed => "closed",
            Scenario::Steady => "steady",
            Scenario::Bursty => "bursty",
            Scenario::HeavyTail => "heavy-tail",
            Scenario::MixedPriority => "mixed-priority",
        }
    }

    fn parse(value: &str) -> Self {
        match value {
            "closed" => Scenario::Closed,
            "steady" => Scenario::Steady,
            "bursty" => Scenario::Bursty,
            "heavy-tail" => Scenario::HeavyTail,
            "mixed-priority" => Scenario::MixedPriority,
            other => fail(format!(
                "unknown scenario {other:?} (expected closed|steady|bursty|heavy-tail|mixed-priority)"
            )),
        }
    }
}

struct Options {
    requests: usize,
    max_batch: usize,
    wait_ms: f64,
    workers: Vec<usize>,
    dims: Vec<usize>,
    sparsity: f64,
    granularity: usize,
    backends: Vec<Backend>,
    dwell_ms: f64,
    scenario: Scenario,
    rate: f64,
    slo_ms: f64,
    shed_depth: Option<usize>,
    wait_budget_ms: Option<f64>,
    shed_hopeless: bool,
    replicas: usize,
    balancers: Vec<BalancerKind>,
    heterogeneous: bool,
    devices: Vec<GpuDevice>,
    autoscale: bool,
    models: usize,
    vram_mb: Option<f64>,
    mem_policy: Option<PolicyKind>,
    seed: u64,
    json_path: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            requests: 2000,
            max_batch: 8,
            wait_ms: 2.0,
            workers: vec![1, 2, 4],
            dims: vec![192, 192, 96],
            sparsity: 0.75,
            granularity: 32,
            backends: vec![Backend::TileWise],
            dwell_ms: 4.0,
            scenario: Scenario::Closed,
            rate: 400.0,
            slo_ms: 50.0,
            shed_depth: None,
            wait_budget_ms: None,
            shed_hopeless: false,
            replicas: 1,
            balancers: vec![BalancerKind::JoinShortestQueue],
            heterogeneous: false,
            devices: vec![GpuDevice::v100()],
            autoscale: false,
            models: 1,
            vram_mb: None,
            mem_policy: None,
            seed: 42,
            json_path: None,
        }
    }
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str, expects: &str) -> T {
    value.parse().unwrap_or_else(|_| fail(format!("{flag} expects {expects}, got {value:?}")))
}

fn parse_list<T: std::str::FromStr>(flag: &str, value: &str, expects: &str) -> Vec<T> {
    let items: Vec<T> = value
        .split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| parse(flag, part.trim(), expects))
        .collect();
    if items.is_empty() {
        fail(format!("{flag} expects a non-empty comma-separated list"));
    }
    items
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| fail(format!("missing value for {name}")));
        match flag.as_str() {
            "--requests" => opts.requests = parse("--requests", &value("--requests"), "an integer"),
            "--batch" => opts.max_batch = parse("--batch", &value("--batch"), "an integer"),
            "--wait-ms" => opts.wait_ms = parse("--wait-ms", &value("--wait-ms"), "a number"),
            "--workers" => {
                opts.workers = parse_list("--workers", &value("--workers"), "an integer");
            }
            "--dims" => opts.dims = parse_list("--dims", &value("--dims"), "an integer"),
            "--sparsity" => opts.sparsity = parse("--sparsity", &value("--sparsity"), "a number"),
            "--granularity" => {
                opts.granularity = parse("--granularity", &value("--granularity"), "an integer");
            }
            "--backend" => {
                opts.backends = value("--backend")
                    .split(',')
                    .filter(|part| !part.trim().is_empty())
                    .map(|part| part.parse::<Backend>().unwrap_or_else(|e| fail(e)))
                    .collect();
                if opts.backends.is_empty() {
                    fail("--backend expects a non-empty comma-separated list");
                }
            }
            "--sweep-backends" => opts.backends = Backend::ALL.to_vec(),
            "--dwell-ms" => opts.dwell_ms = parse("--dwell-ms", &value("--dwell-ms"), "a number"),
            "--scenario" => opts.scenario = Scenario::parse(&value("--scenario")),
            "--rate" => opts.rate = parse("--rate", &value("--rate"), "a number"),
            "--slo-ms" => opts.slo_ms = parse("--slo-ms", &value("--slo-ms"), "a number"),
            "--shed-depth" => {
                opts.shed_depth = Some(parse("--shed-depth", &value("--shed-depth"), "an integer"));
            }
            "--wait-budget-ms" => {
                opts.wait_budget_ms =
                    Some(parse("--wait-budget-ms", &value("--wait-budget-ms"), "a number"));
            }
            "--shed-hopeless" => opts.shed_hopeless = true,
            "--replicas" => opts.replicas = parse("--replicas", &value("--replicas"), "an integer"),
            "--balancer" => {
                opts.balancers = value("--balancer")
                    .split(',')
                    .filter(|part| !part.trim().is_empty())
                    .map(|part| part.parse::<BalancerKind>().unwrap_or_else(|e| fail(e)))
                    .collect();
                if opts.balancers.is_empty() {
                    fail("--balancer expects a non-empty comma-separated list");
                }
            }
            "--heterogeneous" => opts.heterogeneous = true,
            "--device" => {
                opts.devices = value("--device")
                    .split(',')
                    .filter(|part| !part.trim().is_empty())
                    .map(|part| part.parse::<GpuDevice>().unwrap_or_else(|e| fail(e)))
                    .collect();
                if opts.devices.is_empty() {
                    fail("--device expects a non-empty comma-separated list");
                }
            }
            "--autoscale" => opts.autoscale = true,
            "--models" => opts.models = parse("--models", &value("--models"), "an integer"),
            "--vram-mb" => {
                opts.vram_mb = Some(parse("--vram-mb", &value("--vram-mb"), "a number"));
            }
            "--mem-policy" => {
                opts.mem_policy = Some(value("--mem-policy").parse().unwrap_or_else(|e| fail(e)));
            }
            "--seed" => opts.seed = parse("--seed", &value("--seed"), "an integer"),
            "--json" => opts.json_path = Some(value("--json")),
            other => fail(format!("unknown flag {other:?}")),
        }
    }
    if opts.requests == 0 {
        fail("--requests must be at least 1");
    }
    if opts.max_batch == 0 {
        fail("--batch must be at least 1");
    }
    if opts.workers.contains(&0) {
        fail("--workers entries must be at least 1");
    }
    if !opts.wait_ms.is_finite() || opts.wait_ms < 0.0 {
        fail("--wait-ms must be a non-negative number");
    }
    if !opts.dwell_ms.is_finite() || opts.dwell_ms < 0.0 {
        fail("--dwell-ms must be a non-negative number");
    }
    if !opts.rate.is_finite() || opts.rate <= 0.0 {
        fail("--rate must be a positive number");
    }
    if !opts.slo_ms.is_finite() || opts.slo_ms <= 0.0 {
        fail("--slo-ms must be a positive number");
    }
    if let Some(budget) = opts.wait_budget_ms {
        if !budget.is_finite() || budget < 0.0 {
            fail("--wait-budget-ms must be a non-negative number");
        }
    }
    if !(0.0..=1.0).contains(&opts.sparsity) {
        fail("--sparsity must be in [0, 1]");
    }
    if opts.granularity == 0 {
        fail("--granularity must be at least 1");
    }
    if opts.dims.len() < 2 {
        fail("--dims needs at least an input and an output dimension");
    }
    if opts.dims.contains(&0) {
        fail("--dims entries must be at least 1");
    }
    if opts.replicas == 0 {
        fail("--replicas must be at least 1");
    }
    if opts.replicas > 1 && opts.scenario == Scenario::Closed {
        fail("--replicas needs an open-loop scenario (steady|bursty|heavy-tail|mixed-priority)");
    }
    if (opts.heterogeneous || opts.autoscale) && opts.replicas < 2 {
        fail("--heterogeneous/--autoscale only apply with --replicas >= 2");
    }
    if opts.models == 0 {
        fail("--models must be at least 1");
    }
    if let Some(mb) = opts.vram_mb {
        if !mb.is_finite() || mb <= 0.0 {
            fail("--vram-mb must be a positive number");
        }
    }
    if opts.mem_policy.is_some() && opts.vram_mb.is_none() {
        fail("--mem-policy only applies with --vram-mb (no paging without a VRAM cap)");
    }
    opts
}

/// The traffic spec an open-loop scenario replays (`None` = closed loop).
fn traffic_spec(opts: &Options, input_dim: usize) -> Option<TrafficSpec> {
    let slo = Duration::from_secs_f64(opts.slo_ms * 1e-3);
    match opts.scenario {
        Scenario::Closed => None,
        Scenario::Steady => {
            Some(TrafficSpec::steady(opts.rate, slo, opts.requests, input_dim, opts.seed))
        }
        Scenario::Bursty => {
            Some(TrafficSpec::bursty(opts.rate, slo, opts.requests, input_dim, opts.seed))
        }
        Scenario::HeavyTail => {
            Some(TrafficSpec::heavy_tail(opts.rate, slo, opts.requests, input_dim, opts.seed))
        }
        Scenario::MixedPriority => {
            Some(TrafficSpec::mixed_priority(opts.rate, slo, opts.requests, input_dim, opts.seed))
        }
    }
}

fn admission_config(opts: &Options) -> AdmissionConfig {
    AdmissionConfig {
        max_queue_depth: opts.shed_depth,
        max_predicted_wait: opts.wait_budget_ms.map(|ms| Duration::from_secs_f64(ms * 1e-3)),
        // The mixed-priority scenario demonstrates SLO-aware shedding even
        // without explicit flags.
        shed_hopeless: opts.shed_hopeless || opts.scenario == Scenario::MixedPriority,
    }
}

/// VRAM residency management: active exactly when `--vram-mb` caps device
/// memory.
fn memory_config(opts: &Options) -> Option<MemoryConfig> {
    opts.vram_mb.map(|mb| MemoryConfig {
        vram_bytes: Some((mb * (1u64 << 20) as f64) as u64),
        policy: opts.mem_policy.unwrap_or(PolicyKind::Lru),
        ..MemoryConfig::default()
    })
}

/// The gate key's backend string: multi-model runs are keyed apart
/// (`mm2-auto`) so they get their own baseline entries.
fn backend_label(opts: &Options, backend: Backend) -> String {
    if opts.models > 1 {
        format!("mm{}-{}", opts.models, backend)
    } else {
        backend.to_string()
    }
}

/// Which model each request targets, cycled by submission index: *blocks*
/// of `4 x max_batch` per model rather than per-request alternation, so
/// model-pure batches still fill and each block's later batches can run
/// warm — per-request alternation would degenerate every batch to a
/// singleton and hide the cold/warm split the run exists to measure.
fn model_assignment(opts: &Options) -> Vec<usize> {
    let block = opts.max_batch * 4;
    (0..opts.models).flat_map(|m| vec![m; block]).collect()
}

/// The replica fleet a cluster run serves: homogeneous fleets take the
/// first `--workers`/`--backend`/`--device` entry everywhere, heterogeneous
/// ones cycle all three lists so the fleet mixes worker counts, kernel
/// plans and device generations.
fn replica_specs(opts: &Options, time_scale: f64) -> Vec<ReplicaSpec> {
    (0..opts.replicas)
        .map(|i| {
            let pick = |j: usize, len: usize| if opts.heterogeneous { j % len } else { 0 };
            ReplicaSpec {
                name: format!("r{i}"),
                workers: opts.workers[pick(i, opts.workers.len())],
                backend: opts.backends[pick(i, opts.backends.len())],
                device: opts.devices[pick(i, opts.devices.len())].clone(),
                time_scale,
            }
        })
        .collect()
}

/// Serves the scenario through a `tw-cluster` fleet, once per balancer
/// policy, printing one CSV row per run and returning the JSON run records.
fn run_cluster(
    opts: &Options,
    model_tiles: &[(String, Vec<TileWiseMatrix>)],
    time_scale: f64,
) -> Vec<String> {
    let spec = traffic_spec(opts, model_tiles[0].1[0].k())
        .unwrap_or_else(|| fail("--replicas needs an open-loop scenario"));
    let schedule = spec.schedule();
    let specs = replica_specs(opts, time_scale);
    // Requests cycle across the hosted models in batch-sized blocks.
    let assignment = model_assignment(opts);
    eprintln!(
        "# cluster: {} replica(s) [{}], {} model(s)",
        specs.len(),
        specs
            .iter()
            .map(|s| format!("{}:{}x{} on {}", s.name, s.workers, s.backend, s.device))
            .collect::<Vec<_>>()
            .join(", "),
        opts.models,
    );

    let mut records = Vec::new();
    for &balancer in &opts.balancers {
        // The gate key: multi-model cluster runs are keyed apart, exactly
        // like single-server ones (a paging fleet must never share a
        // baseline entry with a single-model fleet).
        let label = if opts.models > 1 {
            format!("mm{}-cluster-{balancer}", opts.models)
        } else {
            format!("cluster-{balancer}")
        };
        let mut config = ClusterConfig {
            max_batch_size: opts.max_batch,
            max_batch_wait: Duration::from_secs_f64(opts.wait_ms * 1e-3),
            // Open-loop submission must never block: hold the whole run (or
            // rely on the shed depth once admission is active).
            queue_capacity: opts.requests.max(opts.max_batch * 4),
            admission: admission_config(opts),
            balancer,
            balancer_seed: opts.seed,
            memory: memory_config(opts),
            ..ClusterConfig::default()
        }
        .with_traffic_classes(&spec.classes);
        if opts.autoscale {
            config.autoscaler = Some(AutoscalerConfig {
                min_replicas: opts.replicas,
                max_replicas: opts.replicas * 2,
                scale_up_depth: opts.max_batch * 4,
                scale_down_depth: opts.max_batch / 2,
                sustain: 2,
                poll_every: 25,
                template: specs[0].clone(),
            });
        }
        let mut cluster = Cluster::start_models(model_tiles.to_vec(), specs.clone(), config);
        cluster.replay_assigned(&schedule, &assignment);
        let report = cluster.shutdown();
        assert_eq!(
            report.completed + report.shed,
            opts.requests,
            "cluster lost requests under {balancer}"
        );

        csv_row(&[
            opts.scenario.as_str().to_string(),
            label.clone(),
            report.replicas.iter().map(|r| r.plan.join("+")).collect::<Vec<_>>().join("|"),
            report.replicas.iter().map(|r| r.workers).sum::<usize>().to_string(),
            report.completed.to_string(),
            report.shed.to_string(),
            fmt(report.throughput_rps()),
            fmt(report.goodput_rps()),
            fmt(report.latency.p50_s * 1e3),
            fmt(report.latency.p95_s * 1e3),
            fmt(report.latency.p99_s * 1e3),
            fmt(report.mean_batch_size()),
            fmt(report.sim_gpu_s()),
        ]);
        eprintln!("# {}", report.summary());
        for line in report.replica_summary() {
            eprintln!("#   {line}");
        }
        for line in report.class_summary() {
            eprintln!("#   {line}");
        }
        for line in report.model_summary() {
            eprintln!("#   {line}");
        }
        for event in &report.scale_events {
            eprintln!("#   scale: {event}");
        }
        records.push(report::cluster_run(opts.scenario.as_str(), &label, &report));
    }
    records
}

fn main() {
    let opts = parse_args();

    eprintln!(
        "# serving {} requests | scenario {} | {} model(s) {:?} @ {:.0}% target sparsity | backends [{}] | batch<={} wait {}ms | dwell {}ms/batch{}",
        opts.requests,
        opts.scenario.as_str(),
        opts.models,
        opts.dims,
        opts.sparsity * 100.0,
        opts.backends.iter().map(Backend::as_str).collect::<Vec<_>>().join(","),
        opts.max_batch,
        opts.wait_ms,
        opts.dwell_ms,
        match opts.vram_mb {
            Some(mb) => format!(
                " | VRAM {mb} MiB ({} eviction)",
                opts.mem_policy.unwrap_or(PolicyKind::Lru)
            ),
            None => String::new(),
        },
    );

    csv_header(&[
        "scenario",
        "backend",
        "plan",
        "workers",
        "requests",
        "shed",
        "throughput_rps",
        "goodput_rps",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "mean_batch",
        "sim_gpu_s",
    ]);

    // One pruned tile set per hosted model, shared by every backend run
    // (the tiles are the deterministic source of truth; only the kernel
    // binding differs), and one auto-planner priced at the batch size
    // actually benchmarked.  Model seeds are spread out so the hosted
    // models are genuinely different weights of the same architecture.
    let model_tiles: Vec<(String, Vec<TileWiseMatrix>)> = (0..opts.models)
        .map(|i| {
            let seed = opts.seed + 1000 * i as u64;
            let tiles = InferenceSession::synthetic_tiles(
                &opts.dims,
                opts.sparsity,
                opts.granularity,
                seed,
            );
            (format!("m{i}"), tiles)
        })
        .collect();
    let tiles = model_tiles[0].1.clone();
    let num_layers = tiles.len();
    let registry = KernelRegistry::standard();
    let auto = AutoPlanner::v100(opts.max_batch);

    // Scale simulated V100 time so one full *dense* batch dwells `dwell_ms`
    // of wall clock; 0 disables the dwell entirely (pure CPU benchmark).
    // The scale is shared across backends so their modelled device-time
    // differences — the quantity a backend sweep compares — survive into
    // the measured throughput and latency.
    let gpu_dwell = if opts.dwell_ms > 0.0 {
        let reference = InferenceSession::with_plan_in(
            tiles.clone(),
            &vec![Backend::Dense; num_layers],
            &registry,
            &auto,
        );
        let dense_batch_s = reference.simulated_batch_seconds(opts.max_batch);
        Some(GpuDwell { time_scale: opts.dwell_ms * 1e-3 / dense_batch_s })
    } else {
        None
    };

    let records: Vec<String> = if opts.replicas > 1 {
        run_cluster(&opts, &model_tiles, gpu_dwell.map_or(0.0, |d| d.time_scale))
    } else {
        run_single_server(&opts, &model_tiles, &registry, &auto, gpu_dwell)
    };

    if let Some(path) = &opts.json_path {
        let doc = json::object(&[
            ("benchmark", json::string("serving")),
            ("scenario", json::string(opts.scenario.as_str())),
            ("requests", opts.requests.to_string()),
            ("rate_rps", json::number(opts.rate)),
            ("slo_ms", json::number(opts.slo_ms)),
            ("dims", json::array(opts.dims.iter().map(|d| d.to_string()))),
            ("target_sparsity", json::number(opts.sparsity)),
            ("granularity", opts.granularity.to_string()),
            ("max_batch", opts.max_batch.to_string()),
            ("wait_ms", json::number(opts.wait_ms)),
            ("dwell_ms", json::number(opts.dwell_ms)),
            ("seed", opts.seed.to_string()),
            ("runs", json::array(records.iter().cloned())),
        ]);
        std::fs::write(path, doc + "\n")
            .unwrap_or_else(|e| fail(format!("cannot write {path:?}: {e}")));
        eprintln!("# wrote {} run record(s) to {path}", records.len());
    }
}

/// The single-server path: one run per (backend, worker count), as before
/// the cluster layer existed — now hosting `--models` registered models
/// behind each server, with optional VRAM paging.  Returns the JSON run
/// records.
fn run_single_server(
    opts: &Options,
    model_tiles: &[(String, Vec<TileWiseMatrix>)],
    registry: &KernelRegistry,
    auto: &AutoPlanner,
    gpu_dwell: Option<GpuDwell>,
) -> Vec<String> {
    let num_layers = model_tiles[0].1.len();
    let memory = memory_config(opts);
    let mut records: Vec<String> = Vec::new();
    for &backend in &opts.backends {
        let sessions: Vec<Arc<InferenceSession>> = model_tiles
            .iter()
            .map(|(_, tiles)| {
                Arc::new(InferenceSession::with_plan_in(
                    tiles.to_vec(),
                    &vec![backend; num_layers],
                    registry,
                    auto,
                ))
            })
            .collect();
        let session = Arc::clone(&sessions[0]);
        eprintln!(
            "# backend {}: plan [{}] | {:.1}% achieved sparsity | {} resident weight bytes x {} model(s) | batching win {:.2}x over 4 streams",
            backend,
            session.plan_summary(),
            session.sparsity() * 100.0,
            session.resident_bytes(),
            sessions.len(),
            session.batching_speedup(opts.max_batch, 4),
        );
        // Hosted models behind one server, ids in `model_tiles` order.
        let build_registry = || {
            let mut model_registry = ModelRegistry::new();
            for ((name, _), session) in model_tiles.iter().zip(&sessions) {
                model_registry.register(name.clone(), 1, Arc::clone(session));
            }
            model_registry
        };

        let spec = traffic_spec(opts, session.input_dim());
        // One schedule per backend: every worker count replays the exact
        // same arrival sequence.
        let schedule = spec.as_ref().map(|s| s.schedule());
        let mut generator = RequestGenerator::new(session.input_dim(), 1.0, opts.seed);
        let mut throughputs: Vec<(usize, f64)> = Vec::new();
        let label = backend_label(opts, backend);
        for &workers in &opts.workers {
            let mut config = ServeConfig {
                max_batch_size: opts.max_batch,
                max_batch_wait: Duration::from_secs_f64(opts.wait_ms * 1e-3),
                workers,
                queue_capacity: (opts.max_batch * workers * 4).max(64),
                gpu_dwell,
                memory,
                ..ServeConfig::default()
            };
            let report = match &spec {
                None => {
                    let payloads = generator.payloads(opts.requests);
                    let report = if opts.models == 1 && memory.is_none() {
                        serve_closed_loop(Arc::clone(&session), config, payloads).0
                    } else {
                        serve_closed_loop_models(
                            build_registry(),
                            config,
                            payloads,
                            &model_assignment(opts),
                        )
                        .0
                    };
                    assert_eq!(
                        report.completed, opts.requests,
                        "lost requests at {workers} workers ({backend})"
                    );
                    report
                }
                Some(spec) => {
                    config = config
                        .with_traffic_classes(&spec.classes)
                        .with_admission(admission_config(opts));
                    if let Some(depth) = opts.shed_depth {
                        config.queue_capacity = config.queue_capacity.max(depth);
                    }
                    let schedule = schedule.as_deref().expect("schedule exists with a spec");
                    let report = if opts.models == 1 && memory.is_none() {
                        serve_open_loop(Arc::clone(&session), config, schedule).0
                    } else {
                        serve_open_loop_models(
                            build_registry(),
                            config,
                            schedule,
                            &model_assignment(opts),
                        )
                        .0
                    };
                    assert_eq!(
                        report.completed + report.shed,
                        opts.requests,
                        "lost requests at {workers} workers ({backend})"
                    );
                    report
                }
            };
            csv_row(&[
                opts.scenario.as_str().to_string(),
                label.clone(),
                // '+'-joined so the plan stays one CSV field.
                session.layer_backends().join("+"),
                workers.to_string(),
                report.completed.to_string(),
                report.shed.to_string(),
                fmt(report.throughput_rps()),
                fmt(report.goodput_rps()),
                fmt(report.latency.p50_s * 1e3),
                fmt(report.latency.p95_s * 1e3),
                fmt(report.latency.p99_s * 1e3),
                fmt(report.mean_batch_size()),
                fmt(report.sim_gpu_s),
            ]);
            for line in report.class_summary() {
                eprintln!("#   [{} workers] {line}", workers);
            }
            for line in report.model_summary() {
                eprintln!("#   [{} workers] {line}", workers);
            }
            throughputs.push((workers, report.throughput_rps()));
            records.push(report::serve_run(opts.scenario.as_str(), &label, workers, &report));
        }

        // Scaling verdict over the sorted worker counts actually measured
        // (meaningful for the closed loop; open-loop throughput tracks the
        // offered rate once the pool keeps up).
        let mut sorted = throughputs.clone();
        sorted.sort_by_key(|&(w, _)| w);
        let monotonic = sorted.windows(2).all(|pair| pair[1].1 > pair[0].1);
        let span = sorted.last().copied().zip(sorted.first().copied());
        if let Some(((w_hi, t_hi), (w_lo, t_lo))) = span {
            eprintln!(
                "# scaling ({}): {:.1} req/s @ {} worker(s) -> {:.1} req/s @ {} worker(s) ({:.2}x), monotonic: {}",
                backend,
                t_lo,
                w_lo,
                t_hi,
                w_hi,
                t_hi / t_lo,
                if monotonic { "yes" } else { "NO" },
            );
        }
    }
    records
}
