//! The serving benchmark: drive `tw-serve` with a synthetic closed loop and
//! report throughput and latency percentiles per worker-pool size and
//! kernel backend.
//!
//! For every selected backend (default tile-wise; `--backend` accepts a
//! comma list of `dense|tw|csr|bsr|auto`, and `--sweep-backends` selects all
//! five) and worker count (default 1, 2, 4) the benchmark builds a pruned
//! model, binds each layer to its kernel — `auto` lets the per-layer cost
//! model pick — generates seeded request payloads, pushes them through the
//! queue → dynamic batcher → worker pool pipeline and prints one CSV row.
//! Workers execute the real batched sparse CPU kernels and then dwell for
//! the batch's simulated V100 time (one shared scale, chosen so a full
//! *dense* batch costs `--dwell-ms` of wall clock — cheaper backends dwell
//! proportionally less, so modelled device-time differences survive into
//! the measurements), so throughput scales with pool-level overlap exactly
//! as an accelerator-backed serving tier does — even on a single-core host.
//!
//! With `--json PATH` the same numbers are also written as a
//! machine-readable artifact (one record per backend x worker-count run),
//! giving the repo a perf trajectory to track across commits:
//!
//! ```text
//! cargo run --release -p tw-bench --bin serving -- \
//!     --requests 2000 --batch 8 --wait-ms 2 --workers 1,2,4 \
//!     --backend tw,auto --json BENCH_serving.json
//! ```

use std::fmt::Display;
use std::sync::Arc;
use tilewise::{AutoPlanner, Backend, InferenceSession, KernelRegistry};
use tw_bench::{csv_header, csv_row, fmt, json};
use tw_models::RequestGenerator;
use tw_serve::{serve_closed_loop, GpuDwell, ServeConfig, ServeReport};

const USAGE: &str = "usage: serving [--requests N] [--batch N] [--wait-ms MS] \
[--workers A,B,..] [--dims D0,D1,..] [--sparsity F] [--granularity N] \
[--backend dense|tw|csr|bsr|auto[,..]] [--sweep-backends] [--dwell-ms MS] \
[--seed N] [--json PATH]";

/// Reports a usage error on stderr and exits non-zero — the benchmark is a
/// CLI, so malformed flags should produce a readable message, not a panic
/// backtrace.
fn fail(msg: impl Display) -> ! {
    eprintln!("serving: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Options {
    requests: usize,
    max_batch: usize,
    wait_ms: f64,
    workers: Vec<usize>,
    dims: Vec<usize>,
    sparsity: f64,
    granularity: usize,
    backends: Vec<Backend>,
    dwell_ms: f64,
    seed: u64,
    json_path: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            requests: 2000,
            max_batch: 8,
            wait_ms: 2.0,
            workers: vec![1, 2, 4],
            dims: vec![192, 192, 96],
            sparsity: 0.75,
            granularity: 32,
            backends: vec![Backend::TileWise],
            dwell_ms: 4.0,
            seed: 42,
            json_path: None,
        }
    }
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str, expects: &str) -> T {
    value.parse().unwrap_or_else(|_| fail(format!("{flag} expects {expects}, got {value:?}")))
}

fn parse_list<T: std::str::FromStr>(flag: &str, value: &str, expects: &str) -> Vec<T> {
    let items: Vec<T> = value
        .split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| parse(flag, part.trim(), expects))
        .collect();
    if items.is_empty() {
        fail(format!("{flag} expects a non-empty comma-separated list"));
    }
    items
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| fail(format!("missing value for {name}")));
        match flag.as_str() {
            "--requests" => opts.requests = parse("--requests", &value("--requests"), "an integer"),
            "--batch" => opts.max_batch = parse("--batch", &value("--batch"), "an integer"),
            "--wait-ms" => opts.wait_ms = parse("--wait-ms", &value("--wait-ms"), "a number"),
            "--workers" => {
                opts.workers = parse_list("--workers", &value("--workers"), "an integer");
            }
            "--dims" => opts.dims = parse_list("--dims", &value("--dims"), "an integer"),
            "--sparsity" => opts.sparsity = parse("--sparsity", &value("--sparsity"), "a number"),
            "--granularity" => {
                opts.granularity = parse("--granularity", &value("--granularity"), "an integer");
            }
            "--backend" => {
                opts.backends = value("--backend")
                    .split(',')
                    .filter(|part| !part.trim().is_empty())
                    .map(|part| part.parse::<Backend>().unwrap_or_else(|e| fail(e)))
                    .collect();
                if opts.backends.is_empty() {
                    fail("--backend expects a non-empty comma-separated list");
                }
            }
            "--sweep-backends" => opts.backends = Backend::ALL.to_vec(),
            "--dwell-ms" => opts.dwell_ms = parse("--dwell-ms", &value("--dwell-ms"), "a number"),
            "--seed" => opts.seed = parse("--seed", &value("--seed"), "an integer"),
            "--json" => opts.json_path = Some(value("--json")),
            other => fail(format!("unknown flag {other:?}")),
        }
    }
    if opts.requests == 0 {
        fail("--requests must be at least 1");
    }
    if opts.max_batch == 0 {
        fail("--batch must be at least 1");
    }
    if opts.workers.contains(&0) {
        fail("--workers entries must be at least 1");
    }
    if !opts.wait_ms.is_finite() || opts.wait_ms < 0.0 {
        fail("--wait-ms must be a non-negative number");
    }
    if !opts.dwell_ms.is_finite() || opts.dwell_ms < 0.0 {
        fail("--dwell-ms must be a non-negative number");
    }
    if !(0.0..=1.0).contains(&opts.sparsity) {
        fail("--sparsity must be in [0, 1]");
    }
    if opts.granularity == 0 {
        fail("--granularity must be at least 1");
    }
    if opts.dims.len() < 2 {
        fail("--dims needs at least an input and an output dimension");
    }
    if opts.dims.contains(&0) {
        fail("--dims entries must be at least 1");
    }
    opts
}

/// One benchmark run's record, kept for the JSON artifact.
struct RunRecord {
    backend: Backend,
    plan: Vec<String>,
    workers: usize,
    report: ServeReport,
}

impl RunRecord {
    fn to_json(&self) -> String {
        json::object(&[
            ("backend", json::string(self.backend.as_str())),
            ("plan", json::array(self.plan.iter().map(|p| json::string(p)))),
            ("workers", self.workers.to_string()),
            ("requests", self.report.completed.to_string()),
            ("throughput_rps", json::number(self.report.throughput_rps())),
            ("p50_ms", json::number(self.report.latency.p50_s * 1e3)),
            ("p95_ms", json::number(self.report.latency.p95_s * 1e3)),
            ("p99_ms", json::number(self.report.latency.p99_s * 1e3)),
            ("mean_batch", json::number(self.report.mean_batch_size())),
            ("sim_gpu_s", json::number(self.report.sim_gpu_s)),
        ])
    }
}

fn main() {
    let opts = parse_args();

    eprintln!(
        "# serving {} requests | model {:?} @ {:.0}% target sparsity | backends [{}] | batch<={} wait {}ms | dwell {}ms/batch",
        opts.requests,
        opts.dims,
        opts.sparsity * 100.0,
        opts.backends.iter().map(Backend::as_str).collect::<Vec<_>>().join(","),
        opts.max_batch,
        opts.wait_ms,
        opts.dwell_ms,
    );

    csv_header(&[
        "backend",
        "plan",
        "workers",
        "requests",
        "throughput_rps",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "mean_batch",
        "sim_gpu_s",
    ]);

    // One pruned model shared by every backend run (the tiles are the
    // deterministic source of truth; only the kernel binding differs), and
    // one auto-planner priced at the batch size actually benchmarked.
    let tiles =
        InferenceSession::synthetic_tiles(&opts.dims, opts.sparsity, opts.granularity, opts.seed);
    let num_layers = tiles.len();
    let registry = KernelRegistry::standard();
    let auto = AutoPlanner::v100(opts.max_batch);

    // Scale simulated V100 time so one full *dense* batch dwells `dwell_ms`
    // of wall clock; 0 disables the dwell entirely (pure CPU benchmark).
    // The scale is shared across backends so their modelled device-time
    // differences — the quantity a backend sweep compares — survive into
    // the measured throughput and latency.
    let gpu_dwell = if opts.dwell_ms > 0.0 {
        let reference = InferenceSession::with_plan_in(
            tiles.clone(),
            &vec![Backend::Dense; num_layers],
            &registry,
            &auto,
        );
        let dense_batch_s = reference.simulated_batch_seconds(opts.max_batch);
        Some(GpuDwell { time_scale: opts.dwell_ms * 1e-3 / dense_batch_s })
    } else {
        None
    };

    let mut records: Vec<RunRecord> = Vec::new();
    for &backend in &opts.backends {
        let session = Arc::new(InferenceSession::with_plan_in(
            tiles.clone(),
            &vec![backend; num_layers],
            &registry,
            &auto,
        ));
        eprintln!(
            "# backend {}: plan [{}] | {:.1}% achieved sparsity | {} resident weight bytes | batching win {:.2}x over 4 streams",
            backend,
            session.plan_summary(),
            session.sparsity() * 100.0,
            session.resident_bytes(),
            session.batching_speedup(opts.max_batch, 4),
        );

        let mut generator = RequestGenerator::new(session.input_dim(), 1.0, opts.seed);
        let mut throughputs: Vec<(usize, f64)> = Vec::new();
        for &workers in &opts.workers {
            let config = ServeConfig {
                max_batch_size: opts.max_batch,
                max_batch_wait: std::time::Duration::from_secs_f64(opts.wait_ms * 1e-3),
                workers,
                queue_capacity: (opts.max_batch * workers * 4).max(64),
                gpu_dwell,
            };
            let payloads = generator.payloads(opts.requests);
            let (report, _) = serve_closed_loop(Arc::clone(&session), config, payloads);
            assert_eq!(
                report.completed, opts.requests,
                "lost requests at {workers} workers ({backend})"
            );
            csv_row(&[
                backend.to_string(),
                // '+'-joined so the plan stays one CSV field.
                session.layer_backends().join("+"),
                workers.to_string(),
                report.completed.to_string(),
                fmt(report.throughput_rps()),
                fmt(report.latency.p50_s * 1e3),
                fmt(report.latency.p95_s * 1e3),
                fmt(report.latency.p99_s * 1e3),
                fmt(report.mean_batch_size()),
                fmt(report.sim_gpu_s),
            ]);
            throughputs.push((workers, report.throughput_rps()));
            records.push(RunRecord { backend, plan: report.backend_plan.clone(), workers, report });
        }

        // Scaling verdict over the sorted worker counts actually measured.
        let mut sorted = throughputs.clone();
        sorted.sort_by_key(|&(w, _)| w);
        let monotonic = sorted.windows(2).all(|pair| pair[1].1 > pair[0].1);
        let span = sorted.last().copied().zip(sorted.first().copied());
        if let Some(((w_hi, t_hi), (w_lo, t_lo))) = span {
            eprintln!(
                "# scaling ({}): {:.1} req/s @ {} worker(s) -> {:.1} req/s @ {} worker(s) ({:.2}x), monotonic: {}",
                backend,
                t_lo,
                w_lo,
                t_hi,
                w_hi,
                t_hi / t_lo,
                if monotonic { "yes" } else { "NO" },
            );
        }
    }

    if let Some(path) = &opts.json_path {
        let doc = json::object(&[
            ("benchmark", json::string("serving")),
            ("requests", opts.requests.to_string()),
            ("dims", json::array(opts.dims.iter().map(|d| d.to_string()))),
            ("target_sparsity", json::number(opts.sparsity)),
            ("granularity", opts.granularity.to_string()),
            ("max_batch", opts.max_batch.to_string()),
            ("wait_ms", json::number(opts.wait_ms)),
            ("dwell_ms", json::number(opts.dwell_ms)),
            ("seed", opts.seed.to_string()),
            ("runs", json::array(records.iter().map(RunRecord::to_json))),
        ]);
        std::fs::write(path, doc + "\n")
            .unwrap_or_else(|e| fail(format!("cannot write {path:?}: {e}")));
        eprintln!("# wrote {} run record(s) to {path}", records.len());
    }
}
