//! The serving benchmark: drive `tw-serve` under a chosen traffic scenario
//! and report throughput, goodput and latency percentiles per worker-pool
//! size and kernel backend — overall and per request class.
//!
//! Scenarios (`--scenario`):
//!
//! * `closed` (default) — the legacy closed loop: submit every request
//!   back-to-back under blocking backpressure; measures peak throughput.
//!   This is the scenario the CI perf-regression gate pins, because its
//!   numbers are dwell-dominated and stable across hosts.
//! * `steady` — open-loop Poisson arrivals at `--rate`, 30% interactive
//!   (SLO `--slo-ms`) / 70% batch.
//! * `bursty` — open-loop ON/OFF bursts (3.7x `--rate` inside bursts; the
//!   phase weights preserve the nominal mean rate), same interactive/batch
//!   mix.
//! * `heavy-tail` — open-loop Pareto (alpha 1.5) inter-arrivals: request
//!   trains separated by rare huge gaps.
//! * `mixed-priority` — the SLO showcase: steady arrivals with the
//!   interactive/batch mix *and* admission control shedding requests whose
//!   deadline is already hopeless (plus any `--shed-depth`/
//!   `--wait-budget-ms` bounds given).
//!
//! For every selected backend (`--backend` takes a comma list of
//! `dense|tw|csr|bsr|auto`; `--sweep-backends` selects all five) and worker
//! count the benchmark builds a pruned model, binds kernels, replays the
//! scenario and prints one CSV row per run plus one per class.  Workers
//! execute real batched sparse CPU kernels, then dwell for the batch's
//! simulated V100 time (scaled so a full dense batch costs `--dwell-ms`).
//!
//! With `--json PATH` the same numbers are written as a machine-readable
//! artifact — the input of the `compare` binary's CI regression gate:
//!
//! ```text
//! cargo run --release -p tw-bench --bin serving -- \
//!     --scenario bursty --rate 600 --requests 2000 --backend auto \
//!     --workers 1,2,4 --json BENCH_serving.json
//! ```

use std::fmt::Display;
use std::sync::Arc;
use std::time::Duration;
use tilewise::{AutoPlanner, Backend, InferenceSession, KernelRegistry};
use tw_bench::{csv_header, csv_row, fmt, json};
use tw_models::{RequestGenerator, TrafficSpec};
use tw_serve::{
    serve_closed_loop, serve_open_loop, AdmissionConfig, GpuDwell, ServeConfig, ServeReport,
};

const USAGE: &str = "usage: serving [--requests N] [--batch N] [--wait-ms MS] \
[--workers A,B,..] [--dims D0,D1,..] [--sparsity F] [--granularity N] \
[--backend dense|tw|csr|bsr|auto[,..]] [--sweep-backends] [--dwell-ms MS] \
[--scenario closed|steady|bursty|heavy-tail|mixed-priority] [--rate RPS] \
[--slo-ms MS] [--shed-depth N] [--wait-budget-ms MS] [--shed-hopeless] \
[--seed N] [--json PATH]";

/// Reports a usage error on stderr and exits non-zero — the benchmark is a
/// CLI, so malformed flags should produce a readable message, not a panic
/// backtrace.
fn fail(msg: impl Display) -> ! {
    eprintln!("serving: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Scenario {
    Closed,
    Steady,
    Bursty,
    HeavyTail,
    MixedPriority,
}

impl Scenario {
    fn as_str(self) -> &'static str {
        match self {
            Scenario::Closed => "closed",
            Scenario::Steady => "steady",
            Scenario::Bursty => "bursty",
            Scenario::HeavyTail => "heavy-tail",
            Scenario::MixedPriority => "mixed-priority",
        }
    }

    fn parse(value: &str) -> Self {
        match value {
            "closed" => Scenario::Closed,
            "steady" => Scenario::Steady,
            "bursty" => Scenario::Bursty,
            "heavy-tail" => Scenario::HeavyTail,
            "mixed-priority" => Scenario::MixedPriority,
            other => fail(format!(
                "unknown scenario {other:?} (expected closed|steady|bursty|heavy-tail|mixed-priority)"
            )),
        }
    }
}

struct Options {
    requests: usize,
    max_batch: usize,
    wait_ms: f64,
    workers: Vec<usize>,
    dims: Vec<usize>,
    sparsity: f64,
    granularity: usize,
    backends: Vec<Backend>,
    dwell_ms: f64,
    scenario: Scenario,
    rate: f64,
    slo_ms: f64,
    shed_depth: Option<usize>,
    wait_budget_ms: Option<f64>,
    shed_hopeless: bool,
    seed: u64,
    json_path: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            requests: 2000,
            max_batch: 8,
            wait_ms: 2.0,
            workers: vec![1, 2, 4],
            dims: vec![192, 192, 96],
            sparsity: 0.75,
            granularity: 32,
            backends: vec![Backend::TileWise],
            dwell_ms: 4.0,
            scenario: Scenario::Closed,
            rate: 400.0,
            slo_ms: 50.0,
            shed_depth: None,
            wait_budget_ms: None,
            shed_hopeless: false,
            seed: 42,
            json_path: None,
        }
    }
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str, expects: &str) -> T {
    value.parse().unwrap_or_else(|_| fail(format!("{flag} expects {expects}, got {value:?}")))
}

fn parse_list<T: std::str::FromStr>(flag: &str, value: &str, expects: &str) -> Vec<T> {
    let items: Vec<T> = value
        .split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| parse(flag, part.trim(), expects))
        .collect();
    if items.is_empty() {
        fail(format!("{flag} expects a non-empty comma-separated list"));
    }
    items
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| fail(format!("missing value for {name}")));
        match flag.as_str() {
            "--requests" => opts.requests = parse("--requests", &value("--requests"), "an integer"),
            "--batch" => opts.max_batch = parse("--batch", &value("--batch"), "an integer"),
            "--wait-ms" => opts.wait_ms = parse("--wait-ms", &value("--wait-ms"), "a number"),
            "--workers" => {
                opts.workers = parse_list("--workers", &value("--workers"), "an integer");
            }
            "--dims" => opts.dims = parse_list("--dims", &value("--dims"), "an integer"),
            "--sparsity" => opts.sparsity = parse("--sparsity", &value("--sparsity"), "a number"),
            "--granularity" => {
                opts.granularity = parse("--granularity", &value("--granularity"), "an integer");
            }
            "--backend" => {
                opts.backends = value("--backend")
                    .split(',')
                    .filter(|part| !part.trim().is_empty())
                    .map(|part| part.parse::<Backend>().unwrap_or_else(|e| fail(e)))
                    .collect();
                if opts.backends.is_empty() {
                    fail("--backend expects a non-empty comma-separated list");
                }
            }
            "--sweep-backends" => opts.backends = Backend::ALL.to_vec(),
            "--dwell-ms" => opts.dwell_ms = parse("--dwell-ms", &value("--dwell-ms"), "a number"),
            "--scenario" => opts.scenario = Scenario::parse(&value("--scenario")),
            "--rate" => opts.rate = parse("--rate", &value("--rate"), "a number"),
            "--slo-ms" => opts.slo_ms = parse("--slo-ms", &value("--slo-ms"), "a number"),
            "--shed-depth" => {
                opts.shed_depth = Some(parse("--shed-depth", &value("--shed-depth"), "an integer"));
            }
            "--wait-budget-ms" => {
                opts.wait_budget_ms =
                    Some(parse("--wait-budget-ms", &value("--wait-budget-ms"), "a number"));
            }
            "--shed-hopeless" => opts.shed_hopeless = true,
            "--seed" => opts.seed = parse("--seed", &value("--seed"), "an integer"),
            "--json" => opts.json_path = Some(value("--json")),
            other => fail(format!("unknown flag {other:?}")),
        }
    }
    if opts.requests == 0 {
        fail("--requests must be at least 1");
    }
    if opts.max_batch == 0 {
        fail("--batch must be at least 1");
    }
    if opts.workers.contains(&0) {
        fail("--workers entries must be at least 1");
    }
    if !opts.wait_ms.is_finite() || opts.wait_ms < 0.0 {
        fail("--wait-ms must be a non-negative number");
    }
    if !opts.dwell_ms.is_finite() || opts.dwell_ms < 0.0 {
        fail("--dwell-ms must be a non-negative number");
    }
    if !opts.rate.is_finite() || opts.rate <= 0.0 {
        fail("--rate must be a positive number");
    }
    if !opts.slo_ms.is_finite() || opts.slo_ms <= 0.0 {
        fail("--slo-ms must be a positive number");
    }
    if let Some(budget) = opts.wait_budget_ms {
        if !budget.is_finite() || budget < 0.0 {
            fail("--wait-budget-ms must be a non-negative number");
        }
    }
    if !(0.0..=1.0).contains(&opts.sparsity) {
        fail("--sparsity must be in [0, 1]");
    }
    if opts.granularity == 0 {
        fail("--granularity must be at least 1");
    }
    if opts.dims.len() < 2 {
        fail("--dims needs at least an input and an output dimension");
    }
    if opts.dims.contains(&0) {
        fail("--dims entries must be at least 1");
    }
    opts
}

/// The traffic spec an open-loop scenario replays (`None` = closed loop).
fn traffic_spec(opts: &Options, input_dim: usize) -> Option<TrafficSpec> {
    let slo = Duration::from_secs_f64(opts.slo_ms * 1e-3);
    match opts.scenario {
        Scenario::Closed => None,
        Scenario::Steady => {
            Some(TrafficSpec::steady(opts.rate, slo, opts.requests, input_dim, opts.seed))
        }
        Scenario::Bursty => {
            Some(TrafficSpec::bursty(opts.rate, slo, opts.requests, input_dim, opts.seed))
        }
        Scenario::HeavyTail => {
            Some(TrafficSpec::heavy_tail(opts.rate, slo, opts.requests, input_dim, opts.seed))
        }
        Scenario::MixedPriority => {
            Some(TrafficSpec::mixed_priority(opts.rate, slo, opts.requests, input_dim, opts.seed))
        }
    }
}

fn admission_config(opts: &Options) -> AdmissionConfig {
    AdmissionConfig {
        max_queue_depth: opts.shed_depth,
        max_predicted_wait: opts.wait_budget_ms.map(|ms| Duration::from_secs_f64(ms * 1e-3)),
        // The mixed-priority scenario demonstrates SLO-aware shedding even
        // without explicit flags.
        shed_hopeless: opts.shed_hopeless || opts.scenario == Scenario::MixedPriority,
    }
}

/// One benchmark run's record, kept for the JSON artifact.
struct RunRecord {
    scenario: &'static str,
    backend: Backend,
    plan: Vec<String>,
    workers: usize,
    report: ServeReport,
}

impl RunRecord {
    fn to_json(&self) -> String {
        let classes = self.report.classes.iter().map(|c| {
            json::object(&[
                ("name", json::string(&c.name)),
                ("completed", c.completed.to_string()),
                ("shed", c.shed.to_string()),
                ("good", c.good.to_string()),
                ("p50_ms", json::number(c.latency.p50_s * 1e3)),
                ("p99_ms", json::number(c.latency.p99_s * 1e3)),
            ])
        });
        json::object(&[
            ("scenario", json::string(self.scenario)),
            ("backend", json::string(self.backend.as_str())),
            ("plan", json::array(self.plan.iter().map(|p| json::string(p)))),
            ("workers", self.workers.to_string()),
            ("requests", self.report.completed.to_string()),
            ("shed", self.report.shed.to_string()),
            ("throughput_rps", json::number(self.report.throughput_rps())),
            ("goodput_rps", json::number(self.report.goodput_rps())),
            ("p50_ms", json::number(self.report.latency.p50_s * 1e3)),
            ("p95_ms", json::number(self.report.latency.p95_s * 1e3)),
            ("p99_ms", json::number(self.report.latency.p99_s * 1e3)),
            ("mean_batch", json::number(self.report.mean_batch_size())),
            ("sim_gpu_s", json::number(self.report.sim_gpu_s)),
            ("classes", json::array(classes)),
        ])
    }
}

fn main() {
    let opts = parse_args();

    eprintln!(
        "# serving {} requests | scenario {} | model {:?} @ {:.0}% target sparsity | backends [{}] | batch<={} wait {}ms | dwell {}ms/batch",
        opts.requests,
        opts.scenario.as_str(),
        opts.dims,
        opts.sparsity * 100.0,
        opts.backends.iter().map(Backend::as_str).collect::<Vec<_>>().join(","),
        opts.max_batch,
        opts.wait_ms,
        opts.dwell_ms,
    );

    csv_header(&[
        "scenario",
        "backend",
        "plan",
        "workers",
        "requests",
        "shed",
        "throughput_rps",
        "goodput_rps",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "mean_batch",
        "sim_gpu_s",
    ]);

    // One pruned model shared by every backend run (the tiles are the
    // deterministic source of truth; only the kernel binding differs), and
    // one auto-planner priced at the batch size actually benchmarked.
    let tiles =
        InferenceSession::synthetic_tiles(&opts.dims, opts.sparsity, opts.granularity, opts.seed);
    let num_layers = tiles.len();
    let registry = KernelRegistry::standard();
    let auto = AutoPlanner::v100(opts.max_batch);

    // Scale simulated V100 time so one full *dense* batch dwells `dwell_ms`
    // of wall clock; 0 disables the dwell entirely (pure CPU benchmark).
    // The scale is shared across backends so their modelled device-time
    // differences — the quantity a backend sweep compares — survive into
    // the measured throughput and latency.
    let gpu_dwell = if opts.dwell_ms > 0.0 {
        let reference = InferenceSession::with_plan_in(
            tiles.clone(),
            &vec![Backend::Dense; num_layers],
            &registry,
            &auto,
        );
        let dense_batch_s = reference.simulated_batch_seconds(opts.max_batch);
        Some(GpuDwell { time_scale: opts.dwell_ms * 1e-3 / dense_batch_s })
    } else {
        None
    };

    let mut records: Vec<RunRecord> = Vec::new();
    for &backend in &opts.backends {
        let session = Arc::new(InferenceSession::with_plan_in(
            tiles.clone(),
            &vec![backend; num_layers],
            &registry,
            &auto,
        ));
        eprintln!(
            "# backend {}: plan [{}] | {:.1}% achieved sparsity | {} resident weight bytes | batching win {:.2}x over 4 streams",
            backend,
            session.plan_summary(),
            session.sparsity() * 100.0,
            session.resident_bytes(),
            session.batching_speedup(opts.max_batch, 4),
        );

        let spec = traffic_spec(&opts, session.input_dim());
        // One schedule per backend: every worker count replays the exact
        // same arrival sequence.
        let schedule = spec.as_ref().map(|s| s.schedule());
        let mut generator = RequestGenerator::new(session.input_dim(), 1.0, opts.seed);
        let mut throughputs: Vec<(usize, f64)> = Vec::new();
        for &workers in &opts.workers {
            let mut config = ServeConfig {
                max_batch_size: opts.max_batch,
                max_batch_wait: Duration::from_secs_f64(opts.wait_ms * 1e-3),
                workers,
                queue_capacity: (opts.max_batch * workers * 4).max(64),
                gpu_dwell,
                ..ServeConfig::default()
            };
            let report = match &spec {
                None => {
                    let payloads = generator.payloads(opts.requests);
                    let (report, _) = serve_closed_loop(Arc::clone(&session), config, payloads);
                    assert_eq!(
                        report.completed, opts.requests,
                        "lost requests at {workers} workers ({backend})"
                    );
                    report
                }
                Some(spec) => {
                    config = config
                        .with_traffic_classes(&spec.classes)
                        .with_admission(admission_config(&opts));
                    if let Some(depth) = opts.shed_depth {
                        config.queue_capacity = config.queue_capacity.max(depth);
                    }
                    let schedule = schedule.as_deref().expect("schedule exists with a spec");
                    let (report, _) = serve_open_loop(Arc::clone(&session), config, schedule);
                    assert_eq!(
                        report.completed + report.shed,
                        opts.requests,
                        "lost requests at {workers} workers ({backend})"
                    );
                    report
                }
            };
            csv_row(&[
                opts.scenario.as_str().to_string(),
                backend.to_string(),
                // '+'-joined so the plan stays one CSV field.
                session.layer_backends().join("+"),
                workers.to_string(),
                report.completed.to_string(),
                report.shed.to_string(),
                fmt(report.throughput_rps()),
                fmt(report.goodput_rps()),
                fmt(report.latency.p50_s * 1e3),
                fmt(report.latency.p95_s * 1e3),
                fmt(report.latency.p99_s * 1e3),
                fmt(report.mean_batch_size()),
                fmt(report.sim_gpu_s),
            ]);
            for line in report.class_summary() {
                eprintln!("#   [{} workers] {line}", workers);
            }
            throughputs.push((workers, report.throughput_rps()));
            records.push(RunRecord {
                scenario: opts.scenario.as_str(),
                backend,
                plan: report.backend_plan.clone(),
                workers,
                report,
            });
        }

        // Scaling verdict over the sorted worker counts actually measured
        // (meaningful for the closed loop; open-loop throughput tracks the
        // offered rate once the pool keeps up).
        let mut sorted = throughputs.clone();
        sorted.sort_by_key(|&(w, _)| w);
        let monotonic = sorted.windows(2).all(|pair| pair[1].1 > pair[0].1);
        let span = sorted.last().copied().zip(sorted.first().copied());
        if let Some(((w_hi, t_hi), (w_lo, t_lo))) = span {
            eprintln!(
                "# scaling ({}): {:.1} req/s @ {} worker(s) -> {:.1} req/s @ {} worker(s) ({:.2}x), monotonic: {}",
                backend,
                t_lo,
                w_lo,
                t_hi,
                w_hi,
                t_hi / t_lo,
                if monotonic { "yes" } else { "NO" },
            );
        }
    }

    if let Some(path) = &opts.json_path {
        let doc = json::object(&[
            ("benchmark", json::string("serving")),
            ("scenario", json::string(opts.scenario.as_str())),
            ("requests", opts.requests.to_string()),
            ("rate_rps", json::number(opts.rate)),
            ("slo_ms", json::number(opts.slo_ms)),
            ("dims", json::array(opts.dims.iter().map(|d| d.to_string()))),
            ("target_sparsity", json::number(opts.sparsity)),
            ("granularity", opts.granularity.to_string()),
            ("max_batch", opts.max_batch.to_string()),
            ("wait_ms", json::number(opts.wait_ms)),
            ("dwell_ms", json::number(opts.dwell_ms)),
            ("seed", opts.seed.to_string()),
            ("runs", json::array(records.iter().map(RunRecord::to_json))),
        ]);
        std::fs::write(path, doc + "\n")
            .unwrap_or_else(|e| fail(format!("cannot write {path:?}: {e}")));
        eprintln!("# wrote {} run record(s) to {path}", records.len());
    }
}
