//! Fig. 6: cumulative probability distribution of zero elements within BW
//! blocks (8x8, 32x32) and TW row vectors (G = 64) on a 75% EW-pruned BERT.

use tilewise::figures;
use tw_bench::{csv_header, csv_row, fmt};

fn main() {
    csv_header(&["unit", "zero_ratio", "cumulative_probability"]);
    for series in figures::fig06_zero_cdf() {
        for (x, p) in &series.points {
            csv_row(&[series.label.to_string(), fmt(*x), fmt(*p)]);
        }
    }
}
