//! Fig. 14: the latency-accuracy trade-off (Pareto frontier) of TW vs BW on
//! tensor cores and TW vs EW/VW on CUDA cores, for BERT, VGG and NMT.

use tilewise::figures;
use tw_bench::{csv_header, csv_row, fmt};

fn main() {
    let sparsities = [0.5, 0.6, 0.7, 0.75, 0.8];
    csv_header(&["model", "core", "pattern", "sparsity", "metric", "gemm_speedup"]);
    for row in figures::fig14_pareto(&sparsities) {
        csv_row(&[
            row.model.clone(),
            row.core.to_string(),
            row.pattern.clone(),
            fmt(row.sparsity),
            fmt(row.metric),
            fmt(row.speedup),
        ]);
    }
}
