//! Fig. 11: scalability of the TW-128 speedup up to 99% sparsity, with the
//! normalised load/store transaction counts and FLOPS efficiency.

use tilewise::figures;
use tw_bench::{csv_header, csv_row, fmt};

fn main() {
    let sparsities =
        [0.0, 0.10, 0.20, 0.25, 0.30, 0.40, 0.50, 0.60, 0.70, 0.75, 0.80, 0.90, 0.95, 0.99];
    csv_header(&["sparsity", "speedup", "load_txn_norm", "store_txn_norm", "flops_efficiency"]);
    for row in figures::fig11_scalability(&sparsities) {
        csv_row(&[
            fmt(row.sparsity),
            fmt(row.speedup),
            fmt(row.load_transactions_norm),
            fmt(row.store_transactions_norm),
            fmt(row.flops_efficiency),
        ]);
    }
}
