//! Criterion benchmarks of the pruning algorithms themselves (EW / VW / BW /
//! TW / TEW and the multi-stage scheduler) on a synthetic BERT layer set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tw_models::{SyntheticModel, SyntheticModelConfig, Workload};
use tw_pruning::{
    bw, ew, tew, tw, vw, AprioriConfig, ImportanceMethod, ImportanceScores, MultiStageConfig,
    MultiStagePruner, PruningPattern, SparsityTarget, TileWiseConfig,
};

fn bert_scores() -> Vec<ImportanceScores> {
    let mut cfg = SyntheticModelConfig::default_with_seed(99);
    cfg.dim_divisor = 16;
    let model = SyntheticModel::generate(Workload::bert_base(8, 128), cfg);
    model.layers().importance(ImportanceMethod::Taylor)
}

fn bench_single_shot_patterns(c: &mut Criterion) {
    let scores = bert_scores();
    let target = SparsityTarget::new(0.75);
    let mut group = c.benchmark_group("prune_patterns_bert72");
    group.sample_size(10);
    group.bench_function("ew_global", |b| b.iter(|| black_box(ew::prune_global(&scores, target))));
    group.bench_function("vw16", |b| b.iter(|| black_box(vw::prune_all(&scores, 16, target))));
    group.bench_function("bw32_global", |b| {
        b.iter(|| black_box(bw::prune_global(&scores, 32, target)))
    });
    group.bench_function("tw_g16_global", |b| {
        b.iter(|| {
            black_box(tw::prune_global(
                &scores,
                &TileWiseConfig::with_granularity(16),
                target,
                None,
            ))
        })
    });
    group.bench_function("tew_g16_d5_global", |b| {
        b.iter(|| {
            black_box(tew::prune_global(
                &scores,
                &TileWiseConfig::with_granularity(16),
                target,
                0.05,
                None,
            ))
        })
    });
    group.finish();
}

fn bench_multi_stage(c: &mut Criterion) {
    let mut cfg = SyntheticModelConfig::default_with_seed(100);
    cfg.dim_divisor = 16;
    let model = SyntheticModel::generate(Workload::bert_base(8, 128), cfg);
    let mut group = c.benchmark_group("multi_stage_pruning");
    group.sample_size(10);
    for &stages in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::new("tw_g16", stages), &stages, |b, &stages| {
            b.iter(|| {
                let mut layers = model.fresh_layers();
                let pruner = MultiStagePruner::new(MultiStageConfig {
                    target: SparsityTarget::new(0.75),
                    stages,
                    pattern: PruningPattern::TileWise { granularity: 16 },
                    importance: ImportanceMethod::Taylor,
                    apriori: Some(AprioriConfig::default()),
                });
                black_box(pruner.run(&mut layers, |_, _, _| {}))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_shot_patterns, bench_multi_stage);
criterion_main!(benches);
