//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! transpose layout, batching, stream concurrency, kernel fusion and apriori
//! tuning.  These report the *modelled* GPU latency (printed once per
//! configuration) and time the host-side planning cost under Criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tilewise::{
    ExecutionConfig, ExecutionPlanner, ModelEvaluation, PatternChoice, TransposeStrategy,
};
use tw_gpu_sim::CoreKind;
use tw_models::ModelKind;

fn print_optimization_ablation() {
    let harness = ModelEvaluation::with_divisor(ModelKind::BertBase, 7, 16);
    let pattern = PatternChoice::TileWise { granularity: 128 };
    let base = ExecutionConfig::optimized(CoreKind::TensorCore);
    let configs = [
        ("optimized (transpose+fusion+batch+streams)", base),
        ("no transpose", ExecutionConfig { transpose: TransposeStrategy::None, ..base }),
        ("no fusion", ExecutionConfig { fuse_non_gemm: false, ..base }),
        ("no batching", ExecutionConfig { tw_batching: false, ..base }),
        ("no streams", ExecutionConfig { tw_streams: false, ..base }),
        ("naive", ExecutionConfig::naive(CoreKind::TensorCore)),
    ];
    println!("\n# TW-128 @ 75% sparsity, BERT, modelled GPU latency per optimisation ablation");
    println!("# config, gemm_ms, end_to_end_ms, gemm_speedup_vs_dense");
    for (label, cfg) in configs {
        let r = harness.evaluate(pattern, 0.75, &cfg);
        println!(
            "# {label}, {:.4}, {:.4}, {:.3}",
            r.gemm_time_s * 1e3,
            r.total_time_s * 1e3,
            r.gemm_speedup()
        );
    }
}

fn bench_ablation_planning_cost(c: &mut Criterion) {
    print_optimization_ablation();
    let harness = ModelEvaluation::with_divisor(ModelKind::BertBase, 7, 16);
    let pattern = PatternChoice::TileWise { granularity: 128 };
    let mut group = c.benchmark_group("ablation_planning_cost");
    group.sample_size(10);
    group.bench_function("optimized", |b| {
        let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
        b.iter(|| black_box(harness.evaluate(pattern, 0.75, &cfg)))
    });
    group.bench_function("naive", |b| {
        let cfg = ExecutionConfig::naive(CoreKind::TensorCore);
        b.iter(|| black_box(harness.evaluate(pattern, 0.75, &cfg)))
    });
    group.finish();
}

fn bench_gemm_vs_transpose_split(c: &mut Criterion) {
    // Times the planner's breakdown helpers on a fixed run.
    let harness = ModelEvaluation::with_divisor(ModelKind::BertBase, 7, 16);
    let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
    let run = harness.dense_run(&cfg);
    let mut group = c.benchmark_group("breakdown_helpers");
    group.bench_function("gemm_time", |b| b.iter(|| black_box(ExecutionPlanner::gemm_time(&run))));
    group
        .bench_function("other_time", |b| b.iter(|| black_box(ExecutionPlanner::other_time(&run))));
    group.finish();
}

criterion_group!(benches, bench_ablation_planning_cost, bench_gemm_vs_transpose_split);
criterion_main!(benches);
