//! Criterion benchmarks of the dense GEMM substrate: reference, blocked,
//! rayon-parallel and masked kernels, plus the functional TileWiseMatrix
//! multiplication.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tilewise::TileWiseMatrix;
use tw_pruning::{tw, ImportanceScores, SparsityTarget, TileWiseConfig};
use tw_tensor::{gemm, gemm_blocked, gemm_par, Matrix};

fn bench_dense_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_gemm");
    for &n in &[64usize, 128, 256] {
        let a = Matrix::random_uniform(n, n, 1.0, 1);
        let b = Matrix::random_uniform(n, n, 1.0, 2);
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("blocked_32x32", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_blocked(&a, &b, 32, 32)))
        });
        group.bench_with_input(BenchmarkId::new("rayon", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_par(&a, &b)))
        });
    }
    group.finish();
}

fn bench_tilewise_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("tilewise_matmul");
    let k = 256;
    let n = 256;
    let weights = Matrix::random_normal(k, n, 1.0, 3);
    let scores = ImportanceScores::magnitude(&weights);
    let a = Matrix::random_uniform(64, k, 1.0, 4);
    for &sparsity in &[0.0f64, 0.5, 0.75, 0.9] {
        let mask = tw::prune(
            &scores,
            &TileWiseConfig::with_granularity(64),
            SparsityTarget::new(sparsity),
        );
        let twm = TileWiseMatrix::from_mask(&weights, &mask);
        group.bench_with_input(
            BenchmarkId::new("tw_sparsity", format!("{sparsity:.2}")),
            &sparsity,
            |bench, _| bench.iter(|| black_box(twm.matmul(&a))),
        );
    }
    // Dense reference for the same shape.
    group.bench_function("dense_reference", |bench| bench.iter(|| black_box(gemm(&a, &weights))));
    group.finish();
}

criterion_group!(benches, bench_dense_gemm, bench_tilewise_matmul);
criterion_main!(benches);
