//! Criterion benchmarks that time the end-to-end figure evaluation path
//! (prune -> accuracy proxy -> execution planning) for single points, so
//! regressions in the reproduction pipeline itself are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tilewise::{ExecutionConfig, ModelEvaluation, PatternChoice};
use tw_gpu_sim::CoreKind;
use tw_models::ModelKind;

fn bench_evaluate_points(c: &mut Criterion) {
    let harness = ModelEvaluation::with_divisor(ModelKind::BertBase, 7, 16);
    let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
    let mut group = c.benchmark_group("evaluate_bert_point");
    group.sample_size(10);
    let patterns = [
        ("dense", PatternChoice::Dense),
        ("ew", PatternChoice::ElementWise),
        ("tw128", PatternChoice::TileWise { granularity: 128 }),
        ("bw32", PatternChoice::BlockWise { block_size: 32 }),
        ("tew128-5", PatternChoice::TileElementWise { granularity: 128, delta: 0.05 }),
    ];
    for (label, pattern) in patterns {
        group.bench_with_input(BenchmarkId::new("pattern", label), &pattern, |b, &p| {
            b.iter(|| black_box(harness.evaluate(p, 0.75, &cfg)))
        });
    }
    group.finish();
}

fn bench_planner_only(c: &mut Criterion) {
    let harness = ModelEvaluation::with_divisor(ModelKind::BertBase, 7, 16);
    let mut group = c.benchmark_group("planner");
    group.bench_function("dense_bert_plan", |b| {
        b.iter(|| black_box(harness.dense_run(&ExecutionConfig::optimized(CoreKind::TensorCore))))
    });
    group.finish();
}

criterion_group!(benches, bench_evaluate_points, bench_planner_only);
criterion_main!(benches);
