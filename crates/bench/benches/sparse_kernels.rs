//! Criterion benchmarks of the sparse-format substrate (CSR/CSC/BSR
//! construction and SpMM kernels) at several sparsity levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tw_sparse::{spmm, BsrMatrix, CscMatrix, CsrMatrix};
use tw_tensor::Matrix;

fn sparse_matrix(rows: usize, cols: usize, sparsity: f64, seed: u64) -> Matrix {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen_bool(1.0 - sparsity) {
            rng.gen_range(-1.0..1.0f32)
        } else {
            0.0
        }
    })
}

fn bench_format_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("format_construction");
    let dense = sparse_matrix(256, 256, 0.75, 1);
    group.bench_function("csr_from_dense", |b| b.iter(|| black_box(CsrMatrix::from_dense(&dense))));
    group.bench_function("csc_from_dense", |b| b.iter(|| black_box(CscMatrix::from_dense(&dense))));
    group.bench_function("bsr32_from_dense", |b| {
        b.iter(|| black_box(BsrMatrix::from_dense(&dense, 32)))
    });
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    let a = Matrix::random_uniform(64, 256, 1.0, 2);
    for &sparsity in &[0.5f64, 0.75, 0.95] {
        let dense = sparse_matrix(256, 256, sparsity, 3);
        let csr = CsrMatrix::from_dense(&dense);
        let csc = CscMatrix::from_dense(&dense);
        let bsr = BsrMatrix::from_dense(&dense, 32);
        let label = format!("{sparsity:.2}");
        group.bench_with_input(BenchmarkId::new("dense_csr", &label), &sparsity, |b, _| {
            b.iter(|| black_box(spmm::dense_csr_matmul(&a, &csr)))
        });
        group.bench_with_input(BenchmarkId::new("dense_csr_par", &label), &sparsity, |b, _| {
            b.iter(|| black_box(spmm::dense_csr_matmul_par(&a, &csr)))
        });
        group.bench_with_input(BenchmarkId::new("dense_csc", &label), &sparsity, |b, _| {
            b.iter(|| black_box(spmm::dense_csc_matmul(&a, &csc)))
        });
        group.bench_with_input(BenchmarkId::new("dense_bsr32", &label), &sparsity, |b, _| {
            b.iter(|| black_box(spmm::dense_bsr_matmul(&a, &bsr)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_format_construction, bench_spmm);
criterion_main!(benches);
