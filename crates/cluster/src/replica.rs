//! One serving replica: a `tw_serve::Server` plus the spec that shaped it.

use crate::balancer::ReplicaProbe;
use crate::ClusterConfig;
use std::sync::Arc;
use tilewise::{Backend, InferenceSession, TileWiseMatrix};
use tw_gpu_sim::GpuDevice;
use tw_memory::ModelRegistry;
use tw_serve::{
    Admission, ClassId, GpuDwell, InferenceResponse, ModelId, ServeConfig, ServeReport, Server,
    ServerClosed,
};

/// How to build one replica.  Replicas are first-class heterogeneous: each
/// carries its own backend selection, worker count, simulated device
/// profile and dwell scale, so one cluster can mix an A100-class replica
/// with a narrow midrange one — exactly the fleet shape that separates
/// load-blind from cost-aware balancing.
#[derive(Clone, Debug)]
pub struct ReplicaSpec {
    /// Replica name, carried into reports (`r0`, `auto-1`, ...).
    pub name: String,
    /// Worker threads of this replica's pool.
    pub workers: usize,
    /// Kernel backend selection applied to every layer (`Backend::Auto`
    /// still plans per layer).
    pub backend: Backend,
    /// Simulated device the replica's batches are priced on.
    pub device: GpuDevice,
    /// Wall-clock seconds per simulated device second (`0` = no dwell; see
    /// [`tw_serve::GpuDwell`]).  The scale is shared across a fleet so
    /// device-profile differences survive into measured latency.
    pub time_scale: f64,
}

impl ReplicaSpec {
    /// A V100 replica — the fleet's default building block.
    pub fn v100(
        name: impl Into<String>,
        workers: usize,
        backend: Backend,
        time_scale: f64,
    ) -> Self {
        Self { name: name.into(), workers, backend, device: GpuDevice::v100(), time_scale }
    }

    /// Builder-style device override.
    pub fn on(mut self, device: GpuDevice) -> Self {
        self.device = device;
        self
    }

    /// Panics on a nonsensical spec; called by [`Replica::start`].
    pub fn validate(&self) {
        assert!(self.workers > 0, "replica {:?} needs at least one worker", self.name);
        assert!(
            self.time_scale.is_finite() && self.time_scale >= 0.0,
            "replica {:?} dwell time scale must be finite and non-negative",
            self.name
        );
    }
}

/// A live replica: its own [`InferenceSession`] (kernel plan priced on its
/// own device) behind its own [`Server`], plus routing bookkeeping.
pub struct Replica {
    spec: ReplicaSpec,
    server: Server,
    /// Submissions the balancer routed here (admitted + shed) — the
    /// denominator of per-replica id conservation.
    routed: usize,
}

impl Replica {
    /// Builds the replica's sessions — one per hosted model, all priced on
    /// the replica's own device — and starts its server with the
    /// cluster-wide queue/batch/class/admission/memory settings and the
    /// replica's own worker count and dwell.  Model ids follow the order of
    /// `models`, identically on every replica.
    ///
    /// # Panics
    /// Panics on an invalid spec or cluster config, or an empty model list.
    pub fn start(
        models: &[(String, Vec<TileWiseMatrix>)],
        spec: ReplicaSpec,
        config: &ClusterConfig,
    ) -> Self {
        spec.validate();
        assert!(!models.is_empty(), "a replica needs at least one model");
        let page_bytes = config.memory.map_or(ModelRegistry::DEFAULT_PAGE_BYTES, |m| m.page_bytes);
        let mut registry = ModelRegistry::with_page_bytes(page_bytes);
        for (name, tiles) in models {
            let plan = vec![spec.backend; tiles.len()];
            let session =
                InferenceSession::with_plan(tiles.to_vec(), &plan).with_device(spec.device.clone());
            registry.register(name.clone(), 1, Arc::new(session));
        }
        let serve_config = ServeConfig {
            max_batch_size: config.max_batch_size,
            max_batch_wait: config.max_batch_wait,
            workers: spec.workers,
            queue_capacity: config.queue_capacity,
            gpu_dwell: (spec.time_scale > 0.0).then_some(GpuDwell { time_scale: spec.time_scale }),
            classes: config.classes.clone(),
            admission: config.admission,
            memory: config.memory,
        };
        Self { spec, server: Server::start_registry(registry, serve_config), routed: 0 }
    }

    /// The spec the replica was built from.
    pub fn spec(&self) -> &ReplicaSpec {
        &self.spec
    }

    /// The replica's resolved per-layer kernel plan.
    pub fn plan(&self) -> Vec<&'static str> {
        self.server.session().layer_backends()
    }

    /// Submissions routed here so far (admitted + shed).
    pub fn routed(&self) -> usize {
        self.routed
    }

    /// Total queued requests right now.
    pub fn queue_depth(&self) -> usize {
        self.server.queue_depth()
    }

    /// Requests shed by this replica so far.
    pub fn shed_so_far(&self) -> usize {
        self.server.shed_so_far()
    }

    /// The routing snapshot for a `class` arrival targeting `model`,
    /// tagged `index` in the cluster's live list.  One queue-lock
    /// acquisition per replica (`Server::routing_probe`) — this runs for
    /// every live replica on every submission, contending with the
    /// replica's own workers.  `with_warmth` additionally looks up the
    /// model's VRAM residency (a tile-cache lock + tile scan); the cluster
    /// passes `true` only when the balancer actually reads warmth
    /// ([`crate::LoadBalancer::needs_warmth`]), and every other probe
    /// carries `1.0`.
    pub fn probe(
        &self,
        index: usize,
        class: ClassId,
        model: ModelId,
        with_warmth: bool,
    ) -> ReplicaProbe {
        let (queue_depth, depth_ahead, predicted_wait) = self.server.routing_probe(class);
        ReplicaProbe {
            replica: index,
            queue_depth,
            depth_ahead,
            predicted_wait_s: predicted_wait.as_secs_f64(),
            workers: self.spec.workers,
            model,
            warm_fraction: if with_warmth { self.server.model_warm_fraction(model) } else { 1.0 },
        }
    }

    /// Routes one submission for `model` to this replica.
    pub fn submit_model(
        &mut self,
        model: ModelId,
        class: ClassId,
        payload: Vec<f32>,
    ) -> Result<Admission, ServerClosed> {
        let admission = self.server.submit_model(model, class, payload)?;
        self.routed += 1;
        Ok(admission)
    }

    /// Drains the replica — `tw_serve::Server::shutdown`'s documented
    /// close → join → collect sequence — and returns everything the final
    /// cluster report needs.  The replica's own id conservation (every
    /// routed submission completed or shed exactly once) is asserted here.
    pub fn shutdown(self) -> RetiredReplica {
        let routed = self.routed;
        let (report, responses) = self.server.shutdown();
        assert_eq!(
            report.completed + report.shed,
            routed,
            "replica {:?} lost ids: {} completed + {} shed != {} routed",
            self.spec.name,
            report.completed,
            report.shed,
            routed,
        );
        RetiredReplica { spec: self.spec, routed, report, responses }
    }
}

/// A drained replica's complete outcome, merged into the
/// [`crate::ClusterReport`] at cluster shutdown.
pub struct RetiredReplica {
    /// The spec the replica ran under.
    pub spec: ReplicaSpec,
    /// Submissions routed to it over its lifetime.
    pub routed: usize,
    /// Its final serving report.
    pub report: ServeReport,
    /// Every response it produced (the cluster never drains mid-run, so
    /// this is the replica's complete output).
    pub responses: Vec<InferenceResponse>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilewise::Backend;

    fn models() -> Vec<(String, Vec<TileWiseMatrix>)> {
        vec![("default".to_string(), InferenceSession::synthetic_tiles(&[24, 32, 12], 0.5, 8, 17))]
    }

    #[test]
    fn replica_serves_and_conserves_its_ids() {
        let config = ClusterConfig::default();
        let spec = ReplicaSpec::v100("r0", 2, Backend::TileWise, 0.0);
        let mut replica = Replica::start(&models(), spec, &config);
        assert_eq!(replica.plan(), vec!["tile-wise", "tile-wise"]);
        for _ in 0..25 {
            replica.submit_model(0, 0, vec![0.2; 24]).unwrap();
        }
        assert_eq!(replica.routed(), 25);
        // Without memory management every model reads fully warm.
        assert_eq!(replica.probe(0, 0, 0, true).warm_fraction, 1.0);
        let retired = replica.shutdown();
        assert_eq!(retired.report.completed, 25);
        assert_eq!(retired.responses.len(), 25);
        assert_eq!(retired.routed, 25);
    }

    #[test]
    fn heterogeneous_specs_price_on_their_own_device() {
        let config = ClusterConfig::default();
        let tiles = models();
        let v100 =
            Replica::start(&tiles, ReplicaSpec::v100("v", 1, Backend::TileWise, 0.0), &config);
        let a100 = Replica::start(
            &tiles,
            ReplicaSpec::v100("a", 1, Backend::TileWise, 0.0).on(GpuDevice::a100_like()),
            &config,
        );
        let b = config.max_batch_size;
        assert!(
            a100.server.session().simulated_batch_seconds(b)
                < v100.server.session().simulated_batch_seconds(b),
            "the A100 replica must price the same batch cheaper"
        );
        v100.shutdown();
        a100.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_worker_spec_rejected() {
        let spec = ReplicaSpec::v100("bad", 0, Backend::Dense, 0.0);
        let _ = Replica::start(&models(), spec, &ClusterConfig::default());
    }
}
