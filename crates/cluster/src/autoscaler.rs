//! Reactive autoscaling: add replicas under sustained pressure, drain them
//! when the fleet runs idle.
//!
//! The policy is deliberately boring — threshold + hysteresis, the shape
//! production autoscalers actually ship with:
//!
//! * **Pressure** is mean queue depth per live replica at or above
//!   [`AutoscalerConfig::scale_up_depth`], *or* any fresh sheds since the
//!   last poll (shed load is lost goodput; more capacity is the only cure
//!   the router can offer).
//! * **Idle** is mean depth at or below [`AutoscalerConfig::scale_down_depth`]
//!   with no fresh sheds.
//! * Either signal must hold for [`AutoscalerConfig::sustain`] *consecutive*
//!   polls before the scaler acts, and acting resets both streaks — the
//!   hysteresis that keeps one bursty poll from flapping the fleet.
//!
//! The scaler only *decides*; the [`crate::Cluster`] applies decisions,
//! bounded by `min_replicas`/`max_replicas`, and owns the deterministic
//! drain of scaled-down replicas.

use crate::replica::ReplicaSpec;

/// Autoscaler policy knobs.
#[derive(Clone, Debug)]
pub struct AutoscalerConfig {
    /// Never drain below this many replicas.
    pub min_replicas: usize,
    /// Never grow beyond this many replicas.
    pub max_replicas: usize,
    /// Mean queue depth per live replica that counts as pressure.
    pub scale_up_depth: usize,
    /// Mean queue depth per live replica under which a replica is surplus.
    pub scale_down_depth: usize,
    /// Consecutive pressured (or idle) polls required before acting.
    pub sustain: usize,
    /// Arrivals between autoscaler polls during open-loop replay.
    pub poll_every: usize,
    /// Spec for replicas added on scale-up.
    pub template: ReplicaSpec,
}

impl AutoscalerConfig {
    /// Panics on nonsensical settings; called by [`Autoscaler::new`].
    pub fn validate(&self) {
        assert!(self.min_replicas > 0, "autoscaler floor must keep at least one replica");
        assert!(
            self.max_replicas >= self.min_replicas,
            "autoscaler ceiling must be at least the floor"
        );
        assert!(
            self.scale_down_depth < self.scale_up_depth,
            "scale-down depth must sit below scale-up depth (hysteresis band)"
        );
        assert!(self.sustain > 0, "sustain must be at least one poll");
        assert!(self.poll_every > 0, "poll interval must be at least one arrival");
        self.template.validate();
    }
}

/// A scaling decision the cluster applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleAction {
    /// Start one replica from the template.
    Up,
    /// Drain one replica (the cluster picks which).
    Down,
}

/// The reactive scaling policy: feed it one observation per poll, apply
/// whatever it returns.
#[derive(Clone, Debug)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    up_streak: usize,
    down_streak: usize,
    last_shed: usize,
    spawned: usize,
}

impl Autoscaler {
    /// A scaler with fresh streaks.
    ///
    /// # Panics
    /// Panics if `config` is invalid (see [`AutoscalerConfig::validate`]).
    pub fn new(config: AutoscalerConfig) -> Self {
        config.validate();
        Self { config, up_streak: 0, down_streak: 0, last_shed: 0, spawned: 0 }
    }

    /// The configured poll cadence (arrivals between observations).
    pub fn poll_every(&self) -> usize {
        self.config.poll_every
    }

    /// The spec scale-up replicas are built from.
    pub fn template(&self) -> &ReplicaSpec {
        &self.config.template
    }

    /// A unique name for the next scale-up replica (`auto-1`, `auto-2`, ...).
    pub fn next_name(&mut self) -> String {
        self.spawned += 1;
        format!("auto-{}", self.spawned)
    }

    /// One pressure observation: the live replica count, the total queued
    /// requests across the fleet, and the cumulative shed count.  Returns
    /// the action to apply, if any; bounds (`min`/`max`) are enforced here
    /// so a saturated streak does not keep firing at the rail.
    pub fn observe(
        &mut self,
        live_replicas: usize,
        total_depth: usize,
        total_shed: usize,
    ) -> Option<ScaleAction> {
        assert!(live_replicas > 0, "cannot observe an empty fleet");
        let mean_depth = total_depth as f64 / live_replicas as f64;
        let fresh_sheds = total_shed.saturating_sub(self.last_shed);
        self.last_shed = total_shed;

        let pressured = mean_depth >= self.config.scale_up_depth as f64 || fresh_sheds > 0;
        let idle = mean_depth <= self.config.scale_down_depth as f64 && fresh_sheds == 0;
        if pressured {
            self.up_streak += 1;
            self.down_streak = 0;
        } else if idle {
            self.down_streak += 1;
            self.up_streak = 0;
        } else {
            // The hysteresis band: neither streak advances, neither resets
            // to fight a borderline fleet.
            return None;
        }

        if self.up_streak >= self.config.sustain && live_replicas < self.config.max_replicas {
            self.up_streak = 0;
            self.down_streak = 0;
            return Some(ScaleAction::Up);
        }
        if self.down_streak >= self.config.sustain && live_replicas > self.config.min_replicas {
            self.up_streak = 0;
            self.down_streak = 0;
            return Some(ScaleAction::Down);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilewise::Backend;

    fn config(sustain: usize) -> AutoscalerConfig {
        AutoscalerConfig {
            min_replicas: 1,
            max_replicas: 3,
            scale_up_depth: 16,
            scale_down_depth: 2,
            sustain,
            poll_every: 10,
            template: ReplicaSpec::v100("t", 1, Backend::TileWise, 0.0),
        }
    }

    #[test]
    fn sustained_pressure_scales_up_once_then_rearms() {
        let mut scaler = Autoscaler::new(config(3));
        // Two pressured polls: not yet.
        assert_eq!(scaler.observe(1, 40, 0), None);
        assert_eq!(scaler.observe(1, 40, 0), None);
        // Third consecutive one fires.
        assert_eq!(scaler.observe(1, 40, 0), Some(ScaleAction::Up));
        // The streak reset: pressure must sustain again before the next add.
        assert_eq!(scaler.observe(2, 80, 0), None);
        assert_eq!(scaler.observe(2, 80, 0), None);
        assert_eq!(scaler.observe(2, 80, 0), Some(ScaleAction::Up));
        // At the ceiling nothing fires no matter how long pressure holds.
        for _ in 0..10 {
            assert_eq!(scaler.observe(3, 400, 0), None);
        }
    }

    #[test]
    fn fresh_sheds_count_as_pressure_even_with_shallow_queues() {
        let mut scaler = Autoscaler::new(config(1));
        // Depth is idle-range, but sheds grew since the last poll.
        assert_eq!(scaler.observe(1, 0, 5), Some(ScaleAction::Up));
        // No *new* sheds now: the same cumulative count reads as idle.
        assert_eq!(scaler.observe(2, 0, 5), Some(ScaleAction::Down));
    }

    #[test]
    fn idle_fleet_drains_down_to_the_floor_only() {
        let mut scaler = Autoscaler::new(config(2));
        assert_eq!(scaler.observe(3, 0, 0), None);
        assert_eq!(scaler.observe(3, 0, 0), Some(ScaleAction::Down));
        assert_eq!(scaler.observe(2, 0, 0), None);
        assert_eq!(scaler.observe(2, 0, 0), Some(ScaleAction::Down));
        // At the floor the idle streak never drains the last replica.
        for _ in 0..10 {
            assert_eq!(scaler.observe(1, 0, 0), None);
        }
    }

    #[test]
    fn mid_band_depth_freezes_both_streaks() {
        let mut scaler = Autoscaler::new(config(2));
        assert_eq!(scaler.observe(1, 40, 0), None, "pressure poll 1");
        // Depth 8 sits between down (2) and up (16): the band neither
        // advances nor resets the pressure streak.
        assert_eq!(scaler.observe(1, 8, 0), None);
        assert_eq!(scaler.observe(1, 40, 0), Some(ScaleAction::Up), "pressure poll 2 fires");
    }

    #[test]
    fn scale_up_names_are_unique() {
        let mut scaler = Autoscaler::new(config(1));
        assert_eq!(scaler.next_name(), "auto-1");
        assert_eq!(scaler.next_name(), "auto-2");
        assert_eq!(scaler.template().name, "t");
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn inverted_thresholds_rejected() {
        let mut cfg = config(1);
        cfg.scale_down_depth = 20;
        let _ = Autoscaler::new(cfg);
    }
}
