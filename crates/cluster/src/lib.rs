//! `tw-cluster` — multi-replica serving over `tw-serve`: a router with
//! pluggable load balancing and a reactive autoscaler.
//!
//! One [`tw_serve::Server`] is a single node.  Production scale means N
//! replicas behind a router, each with its own queue, batcher, worker pool
//! and — because fleets are never uniform for long — its own kernel plan,
//! worker count and simulated device generation:
//!
//! ```text
//!                       +-- Replica r0 (a100, 4 workers) -- queue → batcher → pool
//! submissions → router -+-- Replica r1 (v100, 2 workers) -- queue → batcher → pool
//!  (LoadBalancer)       +-- Replica r2 (v100, 1 worker)  -- queue → batcher → pool
//!                            ↑ add / drain (Autoscaler)        → ClusterReport
//! ```
//!
//! * [`Replica`] — one server plus its [`ReplicaSpec`] (backend plan,
//!   workers, [`tw_gpu_sim::GpuDevice`] profile, dwell scale).
//! * [`LoadBalancer`] — the routing policy trait; built-ins are
//!   [`RoundRobin`], [`JoinShortestQueue`], [`PowerOfTwoChoices`] and the
//!   cost-model-aware [`LeastPredictedWait`], which prices each replica's
//!   backlog with that replica's own `InferenceSession::dwell_model`.
//! * [`Autoscaler`] — threshold + hysteresis scaling on sustained
//!   queue-depth or shed pressure; the cluster applies its decisions.
//! * [`Cluster`] — routes classed submissions, replays
//!   [`tw_models::Arrival`] schedules open-loop, and aggregates every
//!   replica's outcome into a [`ClusterReport`].
//!
//! # Id conservation
//!
//! The single-server guarantee — every submission completes or sheds
//! exactly once — extends to the fleet: each replica asserts
//! `completed + shed == routed` when drained, and
//! [`Cluster::shutdown`] asserts the fleet-wide sum equals the number of
//! submissions the cluster issued, across every balancer policy and any
//! autoscaling history.
//!
//! # Deterministic drain
//!
//! Scale-down and shutdown both retire replicas through the same sequence:
//!
//! 1. The replica is removed from the live list — the balancer can no
//!    longer route to it and no new ids can reach it.
//! 2. Its server runs `tw_serve::Server::shutdown`'s documented
//!    close → join → collect ordering, draining everything already queued.
//! 3. The retired outcome (spec, routed count, report, responses) is held
//!    until [`Cluster::shutdown`] merges every replica — scaled-down ones
//!    included — into the final report.
//!
//! Scale-down drains run on a background thread so an open-loop replay's
//! arrival clock never stalls behind a retiring replica; `shutdown` joins
//! those threads before reporting, so the ordering guarantee is unchanged.

pub mod autoscaler;
pub mod balancer;
pub mod replica;
pub mod report;

pub use autoscaler::{Autoscaler, AutoscalerConfig, ScaleAction};
pub use balancer::{
    BalancerKind, BalancerParseError, JoinShortestQueue, LeastPredictedWait, LoadBalancer,
    PowerOfTwoChoices, ReplicaProbe, ResidencyAware, RoundRobin,
};
pub use replica::{Replica, ReplicaSpec, RetiredReplica};
pub use report::{ClusterReport, ReplicaReport};

use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tilewise::TileWiseMatrix;
use tw_models::Arrival;
use tw_serve::{
    Admission, AdmissionConfig, ClassId, ClassPolicy, MemoryConfig, ModelId, ServerClosed,
};

/// Cluster-wide serving settings shared by every replica (per-replica
/// differences live on [`ReplicaSpec`]).
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Largest number of requests fused into one batch, per replica.
    pub max_batch_size: usize,
    /// Longest a batch head waits for followers, per replica.
    pub max_batch_wait: Duration,
    /// Bound on queued requests per replica.
    pub queue_capacity: usize,
    /// Request classes in priority order (index = class id).
    pub classes: Vec<ClassPolicy>,
    /// Per-replica admission policy (applied at each replica's door, after
    /// routing).
    pub admission: AdmissionConfig,
    /// Routing policy.
    pub balancer: BalancerKind,
    /// Seed for stochastic balancers (p2c).
    pub balancer_seed: u64,
    /// Reactive scaling; `None` runs a fixed fleet.
    pub autoscaler: Option<AutoscalerConfig>,
    /// Per-replica VRAM residency management; `None` serves everything
    /// eternally resident (the legacy behavior).  With it set, every
    /// replica pages weight tiles against its own device's VRAM — the
    /// regime where [`BalancerKind::ResidencyAware`] affinity routing earns
    /// its keep.
    pub memory: Option<MemoryConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            max_batch_size: 8,
            max_batch_wait: Duration::from_millis(2),
            queue_capacity: 1024,
            classes: vec![ClassPolicy::best_effort("default")],
            admission: AdmissionConfig::default(),
            balancer: BalancerKind::JoinShortestQueue,
            balancer_seed: 0,
            autoscaler: None,
            memory: None,
        }
    }
}

impl ClusterConfig {
    /// Panics on nonsensical settings; called by [`Cluster::start`].
    pub fn validate(&self) {
        assert!(self.max_batch_size > 0, "max batch size must be positive");
        assert!(
            self.queue_capacity >= self.max_batch_size,
            "queue capacity must hold at least one full batch"
        );
        assert!(!self.classes.is_empty(), "need at least one request class");
        if let Some(scaler) = &self.autoscaler {
            scaler.validate();
        }
    }

    /// Builder-style override of the class list (priority order).
    pub fn with_classes(mut self, classes: Vec<ClassPolicy>) -> Self {
        self.classes = classes;
        self
    }

    /// Builder-style class list mirroring a traffic mix.
    pub fn with_traffic_classes(self, classes: &[tw_models::TrafficClass]) -> Self {
        self.with_classes(ClassPolicy::from_traffic(classes))
    }

    /// Builder-style override of the routing policy.
    pub fn with_balancer(mut self, balancer: BalancerKind) -> Self {
        self.balancer = balancer;
        self
    }

    /// Builder-style override of the autoscaler.
    pub fn with_autoscaler(mut self, autoscaler: AutoscalerConfig) -> Self {
        self.autoscaler = Some(autoscaler);
        self
    }

    /// Builder-style activation of per-replica VRAM residency management.
    pub fn with_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = Some(memory);
        self
    }
}

/// A running fleet: submit requests (the balancer routes them), or replay a
/// traffic schedule, then shut down for the aggregated report.
pub struct Cluster {
    /// The hosted models — `(name, pruned tiles)` in [`ModelId`] order,
    /// shared by every replica (each binds its own kernels per model).
    models: Vec<(String, Vec<TileWiseMatrix>)>,
    config: ClusterConfig,
    live: Vec<Replica>,
    draining: Vec<JoinHandle<RetiredReplica>>,
    balancer: Box<dyn LoadBalancer>,
    autoscaler: Option<Autoscaler>,
    issued: usize,
    since_poll: usize,
    /// Sheds by replicas already retired (their counts are final once they
    /// leave the routing table); keeps the autoscaler's cumulative shed
    /// signal monotonic across drains.
    retired_shed: usize,
    scale_events: Vec<String>,
    started: Instant,
}

impl Cluster {
    /// Starts one replica per spec serving the single model `tiles` (each
    /// replica binds its own kernels and prices them on its own device).
    ///
    /// # Panics
    /// Panics on an empty spec list, an invalid config, or an invalid spec.
    pub fn start(
        tiles: Vec<TileWiseMatrix>,
        specs: Vec<ReplicaSpec>,
        config: ClusterConfig,
    ) -> Self {
        Self::start_models(vec![("default".to_string(), tiles)], specs, config)
    }

    /// Starts a multi-model fleet: every replica hosts every model in
    /// `models` (ids follow list order on all replicas), and requests are
    /// routed per model via [`Cluster::submit_model`].  Combine with
    /// [`ClusterConfig::memory`] and [`BalancerKind::ResidencyAware`] for
    /// warm-affinity routing under constrained VRAM.
    ///
    /// # Panics
    /// Panics on an empty model or spec list, an invalid config, or an
    /// invalid spec.
    pub fn start_models(
        models: Vec<(String, Vec<TileWiseMatrix>)>,
        specs: Vec<ReplicaSpec>,
        config: ClusterConfig,
    ) -> Self {
        config.validate();
        assert!(!models.is_empty(), "a cluster needs at least one model");
        assert!(!specs.is_empty(), "a cluster needs at least one replica");
        let live: Vec<Replica> =
            specs.into_iter().map(|spec| Replica::start(&models, spec, &config)).collect();
        let balancer = config.balancer.build(config.balancer_seed);
        let autoscaler = config.autoscaler.clone().map(Autoscaler::new);
        Self {
            models,
            config,
            live,
            draining: Vec::new(),
            balancer,
            autoscaler,
            issued: 0,
            since_poll: 0,
            retired_shed: 0,
            scale_events: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Number of live replicas right now.
    pub fn live_replicas(&self) -> usize {
        self.live.len()
    }

    /// Submissions issued so far (admitted or shed, across all replicas).
    pub fn issued(&self) -> usize {
        self.issued
    }

    /// Total queued requests across the live fleet.
    pub fn queue_depth(&self) -> usize {
        self.live.iter().map(Replica::queue_depth).sum()
    }

    /// Autoscaler decisions so far, in decision order.
    pub fn scale_events(&self) -> &[String] {
        &self.scale_events
    }

    /// Routes one classed submission for the default model (0).  See
    /// [`Cluster::submit_model`].
    pub fn submit_to(
        &mut self,
        class: ClassId,
        payload: Vec<f32>,
    ) -> Result<(usize, Admission), ServerClosed> {
        self.submit_model(0, class, payload)
    }

    /// Routes one classed submission for `model` through the balancer.
    /// Every probe carries the replica's warmth for *this* model, so
    /// residency-aware policies can route for affinity.  Returns the chosen
    /// replica's index in the live list and the replica's admission
    /// outcome.  `Err` only once shutdown has begun (never during a run).
    ///
    /// # Panics
    /// Panics if `class` or `model` is out of range, the payload does not
    /// match the model input dim, or the balancer returns an out-of-range
    /// pick.
    pub fn submit_model(
        &mut self,
        model: ModelId,
        class: ClassId,
        payload: Vec<f32>,
    ) -> Result<(usize, Admission), ServerClosed> {
        assert!(model < self.models.len(), "model {model} out of range");
        let with_warmth = self.balancer.needs_warmth();
        let probes: Vec<ReplicaProbe> = self
            .live
            .iter()
            .enumerate()
            .map(|(i, r)| r.probe(i, class, model, with_warmth))
            .collect();
        let pick = self.balancer.pick(&probes);
        assert!(
            pick < self.live.len(),
            "balancer {} picked replica {pick} of {}",
            self.balancer.name(),
            self.live.len()
        );
        let admission = self.live[pick].submit_model(model, class, payload)?;
        self.issued += 1;
        self.since_poll += 1;
        self.maybe_autoscale();
        Ok((pick, admission))
    }

    /// Replays a `tw-models` traffic schedule open-loop: each [`Arrival`]
    /// is routed at its offset from the start of the replay, on the
    /// schedule's own clock.  Admission-refused requests land in the final
    /// report's shed accounting.  (As with `tw_serve::serve_open_loop`,
    /// activate admission control or size queues for the offered load when
    /// the arrival clock must be honored under overload.)
    ///
    /// # Panics
    /// Panics on arrivals whose class or payload does not fit the config.
    pub fn replay(&mut self, schedule: &[Arrival]) {
        self.replay_assigned(schedule, &[0]);
    }

    /// [`Cluster::replay`], with each arrival routed to a model from
    /// `assignment` (cycled by arrival index) — the multi-model traffic
    /// replay.  `&[0]` reproduces the single-model behavior;
    /// `&[0, 1]` alternates two models per arrival; `&[0, 0, 0, 1]` skews
    /// traffic 3:1.
    ///
    /// # Panics
    /// Panics on an empty `assignment`, or arrivals whose class, model or
    /// payload does not fit the config.
    pub fn replay_assigned(&mut self, schedule: &[Arrival], assignment: &[ModelId]) {
        assert!(!assignment.is_empty(), "model assignment cannot be empty");
        let started = Instant::now();
        for (index, arrival) in schedule.iter().enumerate() {
            let target = started + arrival.at;
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
            self.submit_model(
                assignment[index % assignment.len()],
                arrival.class,
                arrival.payload.clone(),
            )
            .expect("open-loop submit before shutdown");
        }
    }

    /// On the poll cadence, feed the autoscaler one pressure observation
    /// and apply its decision.
    fn maybe_autoscale(&mut self) {
        let Some(scaler) = self.autoscaler.as_mut() else {
            return;
        };
        if self.since_poll < scaler.poll_every() {
            return;
        }
        self.since_poll = 0;
        let depth: usize = self.live.iter().map(Replica::queue_depth).sum();
        // The shed-pressure signal must stay monotonic across drains:
        // retired replicas leave the live list, so their (final) shed
        // counts are carried in `retired_shed` — otherwise a scale-down
        // would make the cumulative count *drop* and mask fresh sheds on
        // the survivors as an idle poll.
        let shed: usize =
            self.retired_shed + self.live.iter().map(Replica::shed_so_far).sum::<usize>();
        match scaler.observe(self.live.len(), depth, shed) {
            Some(ScaleAction::Up) => {
                let mut spec = scaler.template().clone();
                spec.name = scaler.next_name();
                let name = spec.name.clone();
                self.live.push(Replica::start(&self.models, spec, &self.config));
                self.scale_events.push(format!(
                    "+{name} at submission {} (fleet depth {depth}, {} live)",
                    self.issued,
                    self.live.len(),
                ));
            }
            Some(ScaleAction::Down) => {
                // Retire the shallowest live replica: least in-flight work
                // to drain, least disruption to the balancer's picture.
                let victim = self
                    .live
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, r)| (r.queue_depth(), *i))
                    .map(|(i, _)| i)
                    .expect("observe() requires a non-empty fleet");
                let replica = self.live.remove(victim);
                // Final at removal: a replica off the routing table can
                // never shed again (sheds happen at submission).
                self.retired_shed += replica.shed_so_far();
                self.scale_events.push(format!(
                    "-{} at submission {} (fleet depth {depth}, {} live)",
                    replica.spec().name,
                    self.issued,
                    self.live.len(),
                ));
                // Step 1 of the documented drain happened above (no longer
                // routable); steps 2–3 run off-thread so the arrival clock
                // keeps ticking.  Joined in `shutdown`.
                self.draining.push(std::thread::spawn(move || replica.shutdown()));
            }
            None => {}
        }
    }

    /// Drains the whole fleet and aggregates the run.  Replicas retired by
    /// scale-down are joined first (their drains were already running),
    /// then live replicas drain in start order; the report covers every
    /// replica that ever served.  Fleet-wide id conservation — completed +
    /// shed across all replicas equals submissions issued — is asserted
    /// here.
    pub fn shutdown(mut self) -> ClusterReport {
        let mut retired: Vec<RetiredReplica> =
            self.draining.drain(..).map(|h| h.join().expect("drain thread panicked")).collect();
        retired.extend(self.live.drain(..).map(Replica::shutdown));
        let report = ClusterReport::aggregate(
            self.balancer.name().to_string(),
            &self.config.classes,
            retired,
            self.scale_events,
            self.started.elapsed(),
        );
        assert_eq!(
            report.completed + report.shed,
            self.issued,
            "cluster lost ids: {} completed + {} shed != {} issued",
            report.completed,
            report.shed,
            self.issued,
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilewise::{Backend, InferenceSession};
    use tw_models::TrafficSpec;

    fn tiles() -> Vec<TileWiseMatrix> {
        InferenceSession::synthetic_tiles(&[24, 32, 12], 0.5, 8, 17)
    }

    fn specs(n: usize, workers: usize, time_scale: f64) -> Vec<ReplicaSpec> {
        (0..n)
            .map(|i| ReplicaSpec::v100(format!("r{i}"), workers, Backend::TileWise, time_scale))
            .collect()
    }

    #[test]
    fn fixed_fleet_round_robin_conserves_ids_and_balances_exactly() {
        let config =
            ClusterConfig { balancer: BalancerKind::RoundRobin, ..ClusterConfig::default() };
        let mut cluster = Cluster::start(tiles(), specs(3, 1, 0.0), config);
        for _ in 0..30 {
            cluster.submit_to(0, vec![0.1; 24]).unwrap();
        }
        assert_eq!(cluster.issued(), 30);
        assert_eq!(cluster.live_replicas(), 3);
        let report = cluster.shutdown();
        assert_eq!(report.completed, 30);
        assert_eq!(report.shed, 0);
        assert_eq!(report.issued, 30);
        assert_eq!(report.balancer, "round-robin");
        assert_eq!(report.replicas.len(), 3);
        for replica in &report.replicas {
            assert_eq!(replica.routed, 10, "round-robin splits 30 exactly");
            assert_eq!(replica.report.completed, 10);
        }
        assert!((report.balance_skew() - 1.0).abs() < 1e-12);
        assert_eq!(report.latency.count, 30);
        assert!(report.throughput_rps() > 0.0);
    }

    #[test]
    fn jsq_avoids_the_wedged_replica() {
        // Replica 0 crawls (huge dwell), replicas 1–2 are instant.  JSQ
        // must stop feeding the deep queue after the first few routes.
        let mut spec_list = specs(3, 1, 0.0);
        spec_list[0].time_scale = 1e5;
        let config =
            ClusterConfig { balancer: BalancerKind::JoinShortestQueue, ..ClusterConfig::default() };
        let mut cluster = Cluster::start(tiles(), spec_list, config);
        for _ in 0..60 {
            cluster.submit_to(0, vec![0.1; 24]).unwrap();
        }
        let report = cluster.shutdown();
        assert_eq!(report.completed, 60);
        let slow = &report.replicas[0];
        let fast: usize = report.replicas[1..].iter().map(|r| r.routed).sum();
        assert!(
            slow.routed < fast,
            "jsq kept feeding the wedged replica: {} vs {} to the fast pair",
            slow.routed,
            fast,
        );
    }

    #[test]
    fn autoscaler_grows_under_pressure_and_drained_replicas_stay_in_the_report() {
        let template = ReplicaSpec::v100("template", 2, Backend::TileWise, 0.0);
        let config = ClusterConfig {
            balancer: BalancerKind::JoinShortestQueue,
            autoscaler: Some(AutoscalerConfig {
                min_replicas: 1,
                max_replicas: 3,
                scale_up_depth: 4,
                scale_down_depth: 0,
                sustain: 1,
                poll_every: 5,
                template,
            }),
            ..ClusterConfig::default()
        };
        // One crawling replica: its queue passes the threshold almost
        // immediately, so the scaler must add capacity; the added replicas
        // then absorb the rest of the load.
        let mut spec_list = specs(1, 1, 0.0);
        spec_list[0].time_scale = 5e4;
        let mut cluster = Cluster::start(tiles(), spec_list, config);
        for _ in 0..80 {
            cluster.submit_to(0, vec![0.1; 24]).unwrap();
        }
        assert!(cluster.live_replicas() > 1, "pressure must add replicas");
        let events = cluster.scale_events().to_vec();
        assert!(events.iter().any(|e| e.starts_with("+auto-")), "events: {events:?}");
        let report = cluster.shutdown();
        assert_eq!(report.completed + report.shed, 80);
        assert_eq!(report.shed, 0, "no admission control configured");
        assert!(report.replicas.len() > 1);
        assert_eq!(report.replicas.iter().map(|r| r.routed).sum::<usize>(), 80);
        assert_eq!(report.scale_events, events);
    }

    #[test]
    fn scale_down_drains_deterministically_without_losing_ids() {
        let template = ReplicaSpec::v100("template", 1, Backend::TileWise, 0.0);
        let config = ClusterConfig {
            balancer: BalancerKind::RoundRobin,
            autoscaler: Some(AutoscalerConfig {
                min_replicas: 1,
                max_replicas: 4,
                scale_up_depth: 1000,
                scale_down_depth: 2,
                sustain: 1,
                poll_every: 4,
                template,
            }),
            ..ClusterConfig::default()
        };
        // Three idle instant replicas: the scaler drains down to the floor
        // while traffic keeps flowing; every id still lands exactly once.
        // Trickle submissions (yielding while queues are non-empty so the
        // polls actually observe an *idle* fleet even on a loaded host)
        // until the floor is reached, bounded so a wedge still fails fast.
        let mut cluster = Cluster::start(tiles(), specs(3, 1, 0.0), config);
        let mut submitted = 0;
        while cluster.live_replicas() > 1 && submitted < 2000 {
            cluster.submit_to(0, vec![0.1; 24]).unwrap();
            submitted += 1;
            while cluster.queue_depth() > 0 {
                std::thread::yield_now();
            }
        }
        assert_eq!(cluster.live_replicas(), 1, "idle fleet must drain to the floor");
        let report = cluster.shutdown();
        assert_eq!(report.completed, submitted);
        assert_eq!(report.replicas.len(), 3, "drained replicas stay in the report");
        assert_eq!(report.replicas.iter().map(|r| r.routed).sum::<usize>(), submitted);
        assert_eq!(
            report.scale_events.iter().filter(|e| e.starts_with('-')).count(),
            2,
            "two drains to reach the floor: {:?}",
            report.scale_events,
        );
    }

    #[test]
    fn open_loop_replay_with_admission_sheds_but_conserves() {
        let spec = TrafficSpec::bursty(3000.0, Duration::from_millis(25), 120, 24, 9);
        let config = ClusterConfig {
            queue_capacity: 64,
            admission: AdmissionConfig { max_queue_depth: Some(6), ..Default::default() },
            balancer: BalancerKind::PowerOfTwoChoices,
            balancer_seed: 11,
            ..ClusterConfig::default()
        }
        .with_traffic_classes(&spec.classes);
        let mut cluster = Cluster::start(tiles(), specs(2, 1, 2e3), config);
        cluster.replay(&spec.schedule());
        let report = cluster.shutdown();
        assert_eq!(report.completed + report.shed, 120);
        assert!(report.shed > 0, "a depth bound of 6 under a 3000 rps burst must shed");
        assert_eq!(report.classes.len(), 2);
        let by_class: usize = report.classes.iter().map(|c| c.completed + c.shed).sum();
        assert_eq!(by_class, 120, "per-class rows cover the run");
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_fleet_rejected() {
        let _ = Cluster::start(tiles(), Vec::new(), ClusterConfig::default());
    }
}
