//! Aggregated outcome of one cluster run: global and per-class percentiles
//! over every replica's completions, shed accounting, goodput and balance
//! skew, plus each replica's own `ServeReport`.

use crate::replica::RetiredReplica;
use std::time::Duration;
use tw_serve::{ClassPolicy, ClassStats, LatencySummary, ModelStats, ServeReport};

/// One replica's slice of the cluster report.
#[derive(Clone, Debug)]
pub struct ReplicaReport {
    /// Replica name from its spec.
    pub name: String,
    /// Device slug the replica priced batches on (`v100`, `a100`, ...).
    pub device: String,
    /// Worker threads the replica ran.
    pub workers: usize,
    /// Resolved per-layer kernel plan.
    pub plan: Vec<String>,
    /// Submissions the balancer routed here (admitted + shed).
    pub routed: usize,
    /// The replica's own serving report.
    pub report: ServeReport,
}

/// The outcome of one multi-replica serving run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Routing policy that produced this run.
    pub balancer: String,
    /// Submissions the cluster issued an id for (sum of replica `routed`).
    pub issued: usize,
    /// Requests completed across all replicas.
    pub completed: usize,
    /// Requests shed across all replicas.
    pub shed: usize,
    /// Wall-clock span from cluster start to shutdown.
    pub wall: Duration,
    /// Global latency order statistics over every replica's completions.
    pub latency: LatencySummary,
    /// Per-class breakdowns aggregated across replicas, in priority order.
    pub classes: Vec<ClassStats>,
    /// Per-model cold-start breakdowns aggregated across replicas, in model
    /// id order: fleet-wide tile hit rates, bytes paged and true cold/warm
    /// latency order statistics.  Empty when no replica paged (single
    /// model, no memory management).
    pub models: Vec<ModelStats>,
    /// Per-replica reports, in start order (drained replicas included).
    pub replicas: Vec<ReplicaReport>,
    /// Autoscaler decisions, in decision order (empty without autoscaling).
    pub scale_events: Vec<String>,
}

impl ClusterReport {
    /// Aggregates retired replicas into the cluster-wide view.  Per-class
    /// rows are rebuilt from the union of all replicas' responses so the
    /// cluster percentiles are true order statistics, not averages of
    /// per-replica percentiles.
    pub fn aggregate(
        balancer: String,
        classes: &[ClassPolicy],
        retired: Vec<RetiredReplica>,
        scale_events: Vec<String>,
        wall: Duration,
    ) -> Self {
        let all_latencies: Vec<f64> = retired
            .iter()
            .flat_map(|r| r.responses.iter().map(|resp| resp.latency.as_secs_f64()))
            .collect();
        let class_stats: Vec<ClassStats> = classes
            .iter()
            .enumerate()
            .map(|(id, policy)| {
                let samples: Vec<f64> = retired
                    .iter()
                    .flat_map(|r| r.responses.iter())
                    .filter(|resp| resp.class == id)
                    .map(|resp| resp.latency.as_secs_f64())
                    .collect();
                let good = retired
                    .iter()
                    .flat_map(|r| r.responses.iter())
                    .filter(|resp| resp.class == id && resp.deadline_met != Some(false))
                    .count();
                ClassStats {
                    class: id,
                    name: policy.name.clone(),
                    completed: samples.len(),
                    shed: retired
                        .iter()
                        .map(|r| r.report.classes.get(id).map_or(0, |c| c.shed))
                        .sum(),
                    good,
                    latency: LatencySummary::from_samples(samples),
                }
            })
            .collect();
        // Per-model rows: true fleet-wide cold/warm order statistics from
        // the union of responses, tile counters summed over the replicas'
        // own per-model rows.
        let num_models = retired.iter().map(|r| r.report.models.len()).max().unwrap_or(0);
        let model_stats: Vec<ModelStats> = (0..num_models)
            .map(|id| {
                let name = retired
                    .iter()
                    .find_map(|r| r.report.models.get(id).map(|m| m.name.clone()))
                    .unwrap_or_else(|| format!("model-{id}"));
                let warm: Vec<f64> = retired
                    .iter()
                    .flat_map(|r| r.responses.iter())
                    .filter(|resp| resp.model == id && !resp.cold)
                    .map(|resp| resp.latency.as_secs_f64())
                    .collect();
                let cold: Vec<f64> = retired
                    .iter()
                    .flat_map(|r| r.responses.iter())
                    .filter(|resp| resp.model == id && resp.cold)
                    .map(|resp| resp.latency.as_secs_f64())
                    .collect();
                let row = |f: fn(&ModelStats) -> u64| -> u64 {
                    retired.iter().filter_map(|r| r.report.models.get(id)).map(f).sum()
                };
                ModelStats {
                    model: id,
                    name,
                    completed: warm.len() + cold.len(),
                    cold: cold.len(),
                    warm_latency: LatencySummary::from_samples(warm),
                    cold_latency: LatencySummary::from_samples(cold),
                    tile_hits: row(|m| m.tile_hits),
                    tile_misses: row(|m| m.tile_misses),
                    bytes_paged: row(|m| m.bytes_paged),
                    transfer_sim_s: retired
                        .iter()
                        .filter_map(|r| r.report.models.get(id))
                        .map(|m| m.transfer_sim_s)
                        .sum(),
                }
            })
            .collect();
        let replicas: Vec<ReplicaReport> = retired
            .into_iter()
            .map(|r| ReplicaReport {
                name: r.spec.name,
                device: r.spec.device.to_string(),
                workers: r.spec.workers,
                plan: r.report.backend_plan.clone(),
                routed: r.routed,
                report: r.report,
            })
            .collect();
        Self {
            balancer,
            issued: replicas.iter().map(|r| r.routed).sum(),
            completed: replicas.iter().map(|r| r.report.completed).sum(),
            shed: replicas.iter().map(|r| r.report.shed).sum(),
            wall,
            latency: LatencySummary::from_samples(all_latencies),
            classes: class_stats,
            models: model_stats,
            replicas,
            scale_events,
        }
    }

    /// Completed requests per wall-clock second, fleet-wide.
    pub fn throughput_rps(&self) -> f64 {
        per_second(self.completed, self.wall)
    }

    /// Completions within their class SLO per second (best-effort
    /// completions all count), fleet-wide.
    pub fn goodput_rps(&self) -> f64 {
        if self.classes.is_empty() {
            return self.throughput_rps();
        }
        per_second(self.classes.iter().map(|c| c.good).sum(), self.wall)
    }

    /// Fraction of issued submissions shed.
    pub fn shed_rate(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.shed as f64 / self.issued as f64
    }

    /// Total simulated device seconds across the fleet.
    pub fn sim_gpu_s(&self) -> f64 {
        self.replicas.iter().map(|r| r.report.sim_gpu_s).sum()
    }

    /// Total bytes paged host→device across the fleet.
    pub fn bytes_paged(&self) -> u64 {
        self.replicas.iter().map(|r| r.report.bytes_paged).sum()
    }

    /// Total simulated PCIe seconds across the fleet.
    pub fn transfer_sim_s(&self) -> f64 {
        self.replicas.iter().map(|r| r.report.transfer_sim_s).sum()
    }

    /// Total batches executed across the fleet.
    pub fn batches(&self) -> usize {
        self.replicas.iter().map(|r| r.report.batches).sum()
    }

    /// Mean requests fused per batch, fleet-wide.
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.batches();
        if batches == 0 {
            return 0.0;
        }
        self.completed as f64 / batches as f64
    }

    /// Routing imbalance: the busiest replica's routed count over the
    /// per-replica mean.  `1.0` is perfectly balanced (what round-robin
    /// produces on a fixed fleet); informed policies on heterogeneous
    /// fleets *should* skew toward the fast replicas.
    pub fn balance_skew(&self) -> f64 {
        if self.issued == 0 || self.replicas.is_empty() {
            return 1.0;
        }
        let mean = self.issued as f64 / self.replicas.len() as f64;
        let max = self.replicas.iter().map(|r| r.routed).max().unwrap_or(0);
        max as f64 / mean
    }

    /// One human-readable summary line for the whole run.
    pub fn summary(&self) -> String {
        let shed = if self.shed > 0 {
            format!(" | shed {} ({:.1}%)", self.shed, self.shed_rate() * 100.0)
        } else {
            String::new()
        };
        let scaled = if self.scale_events.is_empty() {
            String::new()
        } else {
            format!(" | {} scale event(s)", self.scale_events.len())
        };
        format!(
            "[{}] {} replicas, {} issued in {:.3}s | {:.1} req/s ({:.1} good) | p50 {:.2}ms p99 {:.2}ms | skew {:.2}{shed}{scaled}",
            self.balancer,
            self.replicas.len(),
            self.issued,
            self.wall.as_secs_f64(),
            self.throughput_rps(),
            self.goodput_rps(),
            self.latency.p50_s * 1e3,
            self.latency.p99_s * 1e3,
            self.balance_skew(),
        )
    }

    /// One line per replica: where traffic went and how each copy fared.
    pub fn replica_summary(&self) -> Vec<String> {
        self.replicas
            .iter()
            .map(|r| {
                format!(
                    "replica {} ({}, {} worker(s), plan [{}]): routed {}, completed {}, shed {}, p99 {:.2}ms",
                    r.name,
                    r.device,
                    r.workers,
                    r.plan.join(","),
                    r.routed,
                    r.report.completed,
                    r.report.shed,
                    r.report.latency.p99_s * 1e3,
                )
            })
            .collect()
    }

    /// One line per model, aggregated fleet-wide: the cold-start view
    /// (same [`ModelStats::summary_line`] format as single-server reports).
    pub fn model_summary(&self) -> Vec<String> {
        self.models.iter().map(ModelStats::summary_line).collect()
    }

    /// One line per class, aggregated fleet-wide.
    pub fn class_summary(&self) -> Vec<String> {
        self.classes
            .iter()
            .map(|c| {
                format!(
                    "class {} ({}): {} completed, {} shed ({:.1}%), hit rate {:.1}% | p50 {:.2}ms p99 {:.2}ms",
                    c.class,
                    c.name,
                    c.completed,
                    c.shed,
                    c.shed_rate() * 100.0,
                    c.hit_rate() * 100.0,
                    c.latency.p50_s * 1e3,
                    c.latency.p99_s * 1e3,
                )
            })
            .collect()
    }
}

fn per_second(count: usize, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    count as f64 / secs
}
