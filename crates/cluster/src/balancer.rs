//! Pluggable request routing across replicas.
//!
//! A balancer sees one [`ReplicaProbe`] per live replica — queue depth, the
//! class-aware backlog a new arrival would wait behind, the cost-model
//! predicted wait for that backlog, and the replica's worker count — and
//! picks one.  The four built-in policies cover the classic trade-offs:
//!
//! * [`RoundRobin`] — state-only, load-blind.  The baseline every informed
//!   policy must beat on heterogeneous replicas.
//! * [`JoinShortestQueue`] — full information, picks the globally shallowest
//!   queue.  Optimal for homogeneous replicas, but treats a queue of 4 on a
//!   1-worker midrange replica the same as on a 4-worker A100.
//! * [`PowerOfTwoChoices`] — samples two replicas and takes the shallower:
//!   most of JSQ's benefit at O(1) probe cost (the "power of two choices"
//!   result), and the policy large fleets actually deploy.
//! * [`LeastPredictedWait`] — prices each replica's backlog with its own
//!   cost model (`InferenceSession::dwell_model` by way of
//!   `Server::predicted_wait`): batches ahead x that replica's batch dwell /
//!   its worker count.  The only policy that sees *heterogeneity* — a deep
//!   queue on a fast wide replica can still be the cheapest seat.
//! * [`ResidencyAware`] — the memory-aware policy: prefers replicas where
//!   the request's *model* is already warm in VRAM (affinity routing), so
//!   a paging fleet stops thrashing tiles back and forth; queue depth
//!   breaks ties among equally-warm replicas.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One replica's routing snapshot, taken at submission time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplicaProbe {
    /// Index of the replica in the cluster's live list.
    pub replica: usize,
    /// Total queued requests across all class lanes.
    pub queue_depth: usize,
    /// Queued requests in lanes of the same or higher priority than the
    /// arrival being routed — what it would actually wait behind.
    pub depth_ahead: usize,
    /// Cost-model predicted wall-clock wait for `depth_ahead`, in seconds
    /// (zero when the replica dwells no simulated device time).
    pub predicted_wait_s: f64,
    /// The replica's worker count (its drain rate, in batches per round).
    pub workers: usize,
    /// The model the routed request targets (`0` on single-model fleets).
    pub model: usize,
    /// Fraction of the routed request's model bytes resident in this
    /// replica's VRAM (`1.0` when the replica does not page).
    pub warm_fraction: f64,
}

/// A routing policy over live replicas.
///
/// `pick` receives one probe per live replica (at least one) and returns an
/// index *into the probe slice*.  Balancers may keep state (round-robin
/// cursors, RNGs) but must not assume a stable replica count: the
/// autoscaler adds and drains replicas mid-run.
pub trait LoadBalancer: Send {
    /// Short policy name, carried into reports.
    fn name(&self) -> &'static str;

    /// Whether this policy reads [`ReplicaProbe::warm_fraction`].  Probing
    /// warmth costs a tile-cache lock (contended by the replica's own
    /// workers) plus a tile-list scan *per replica per submission*, so the
    /// cluster only pays it for policies that return `true` — every other
    /// probe carries `1.0`.  Default: `false`.
    fn needs_warmth(&self) -> bool {
        false
    }

    /// Chooses the replica for one submission.
    ///
    /// # Panics
    /// Implementations may panic on an empty probe slice; the cluster never
    /// passes one.
    fn pick(&mut self, probes: &[ReplicaProbe]) -> usize;
}

/// Load-blind rotation through the replica list.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl LoadBalancer for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick(&mut self, probes: &[ReplicaProbe]) -> usize {
        assert!(!probes.is_empty(), "cannot route without replicas");
        let pick = self.next % probes.len();
        self.next = self.next.wrapping_add(1);
        pick
    }
}

/// Routes to the replica with the fewest queued requests (ties: the smaller
/// class-aware backlog, then the lower index — deterministic).
#[derive(Debug, Default)]
pub struct JoinShortestQueue;

impl LoadBalancer for JoinShortestQueue {
    fn name(&self) -> &'static str {
        "jsq"
    }

    fn pick(&mut self, probes: &[ReplicaProbe]) -> usize {
        assert!(!probes.is_empty(), "cannot route without replicas");
        probes
            .iter()
            .enumerate()
            .min_by_key(|(i, p)| (p.queue_depth, p.depth_ahead, *i))
            .map(|(i, _)| i)
            .expect("non-empty probes")
    }
}

/// Samples two distinct replicas uniformly and routes to the shallower
/// queue (the classic O(1)-probe approximation of JSQ).  Seeded, so runs
/// replay deterministically.
#[derive(Debug)]
pub struct PowerOfTwoChoices {
    rng: StdRng,
}

impl PowerOfTwoChoices {
    /// A seeded sampler; equal seeds replay equal routing decisions (given
    /// equal probe sequences).
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }
}

impl LoadBalancer for PowerOfTwoChoices {
    fn name(&self) -> &'static str {
        "p2c"
    }

    fn pick(&mut self, probes: &[ReplicaProbe]) -> usize {
        assert!(!probes.is_empty(), "cannot route without replicas");
        if probes.len() == 1 {
            return 0;
        }
        let a = self.rng.gen_range(0..probes.len());
        let mut b = self.rng.gen_range(0..probes.len() - 1);
        if b >= a {
            b += 1;
        }
        // Prefer the shallower queue; break ties toward the lower index so
        // the decision is a pure function of (rng draw, probes).
        let key = |i: usize| (probes[i].queue_depth, probes[i].depth_ahead, i);
        if key(b) < key(a) {
            b
        } else {
            a
        }
    }
}

/// Routes to the replica whose *priced* backlog is cheapest: each probe's
/// predicted wait comes from that replica's own dwell model and worker
/// count, so a fast, wide replica with a deeper queue can still win.  Ties
/// (e.g. every wait still zero) fall back to the per-worker backlog, then
/// the raw depth, then the index.
#[derive(Debug, Default)]
pub struct LeastPredictedWait;

impl LoadBalancer for LeastPredictedWait {
    fn name(&self) -> &'static str {
        "least-wait"
    }

    fn pick(&mut self, probes: &[ReplicaProbe]) -> usize {
        assert!(!probes.is_empty(), "cannot route without replicas");
        let key = |p: &ReplicaProbe| {
            debug_assert!(p.workers > 0, "replica without workers");
            (p.predicted_wait_s, p.depth_ahead as f64 / p.workers as f64, p.queue_depth as f64)
        };
        probes
            .iter()
            .enumerate()
            .min_by(|(i, a), (j, b)| {
                key(a).partial_cmp(&key(b)).expect("finite probe keys").then(i.cmp(j))
            })
            .map(|(i, _)| i)
            .expect("non-empty probes")
    }
}

/// Routes to the replica where the request's model is warmest in VRAM —
/// affinity routing for paging fleets.  Replicas within
/// [`ResidencyAware::WARMTH_TOLERANCE`] of the warmest are considered
/// equally warm, and the shallowest queue among them wins (so two replicas
/// both holding the model still share load instead of one wedging).
///
/// When *no* replica is meaningfully warm (below
/// [`ResidencyAware::MIN_WARMTH`], e.g. the model's first touch, or a
/// fleet thrashed by an earlier load-blind policy), depth-based
/// tie-breaking would split the cold model across replicas and page it
/// everywhere — so instead the policy seeds affinity deterministically by
/// hashing the model over the live fleet (`model % replicas`).  Each model
/// thereafter finds its home replica warm and sticks to it.
///
/// On a fleet without memory management every probe reports `1.0` and the
/// policy degenerates to JSQ.
#[derive(Debug, Default)]
pub struct ResidencyAware;

impl ResidencyAware {
    /// Warmth slack within which replicas count as equally warm.
    pub const WARMTH_TOLERANCE: f64 = 0.05;
    /// Below this best-replica warmth the model counts as cold everywhere
    /// and affinity is seeded by `model % replicas` instead of queue depth.
    pub const MIN_WARMTH: f64 = 0.5;
}

impl LoadBalancer for ResidencyAware {
    fn name(&self) -> &'static str {
        "residency"
    }

    fn needs_warmth(&self) -> bool {
        true
    }

    fn pick(&mut self, probes: &[ReplicaProbe]) -> usize {
        assert!(!probes.is_empty(), "cannot route without replicas");
        let warmest = probes.iter().map(|p| p.warm_fraction).fold(f64::NEG_INFINITY, f64::max);
        if warmest < Self::MIN_WARMTH {
            return probes[0].model % probes.len();
        }
        probes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.warm_fraction >= warmest - Self::WARMTH_TOLERANCE)
            .min_by_key(|(i, p)| (p.queue_depth, p.depth_ahead, *i))
            .map(|(i, _)| i)
            .expect("the warmest probe always qualifies")
    }
}

/// The built-in balancer vocabulary, parseable from CLI flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalancerKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`JoinShortestQueue`].
    JoinShortestQueue,
    /// [`PowerOfTwoChoices`].
    PowerOfTwoChoices,
    /// [`LeastPredictedWait`].
    LeastPredictedWait,
    /// [`ResidencyAware`].
    ResidencyAware,
}

impl BalancerKind {
    /// Every built-in policy, in the order benchmarks sweep them.
    pub const ALL: [BalancerKind; 5] = [
        BalancerKind::RoundRobin,
        BalancerKind::JoinShortestQueue,
        BalancerKind::PowerOfTwoChoices,
        BalancerKind::LeastPredictedWait,
        BalancerKind::ResidencyAware,
    ];

    /// The canonical flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            BalancerKind::RoundRobin => "rr",
            BalancerKind::JoinShortestQueue => "jsq",
            BalancerKind::PowerOfTwoChoices => "p2c",
            BalancerKind::LeastPredictedWait => "least-wait",
            BalancerKind::ResidencyAware => "residency",
        }
    }

    /// Instantiates the policy (`seed` feeds the p2c sampler; the others
    /// ignore it).
    pub fn build(self, seed: u64) -> Box<dyn LoadBalancer> {
        match self {
            BalancerKind::RoundRobin => Box::new(RoundRobin::default()),
            BalancerKind::JoinShortestQueue => Box::new(JoinShortestQueue),
            BalancerKind::PowerOfTwoChoices => Box::new(PowerOfTwoChoices::new(seed)),
            BalancerKind::LeastPredictedWait => Box::new(LeastPredictedWait),
            BalancerKind::ResidencyAware => Box::new(ResidencyAware),
        }
    }
}

impl std::fmt::Display for BalancerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Error for parsing a [`BalancerKind`] from an unknown policy name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BalancerParseError(String);

impl std::fmt::Display for BalancerParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown balancer {:?} (expected rr|jsq|p2c|least-wait|residency)", self.0)
    }
}

impl std::error::Error for BalancerParseError {}

impl std::str::FromStr for BalancerKind {
    type Err = BalancerParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_lowercase().as_str() {
            "rr" | "round-robin" => Ok(BalancerKind::RoundRobin),
            "jsq" | "shortest-queue" => Ok(BalancerKind::JoinShortestQueue),
            "p2c" | "power-of-two" => Ok(BalancerKind::PowerOfTwoChoices),
            "least-wait" | "lpw" | "least-predicted-wait" => Ok(BalancerKind::LeastPredictedWait),
            "residency" | "affinity" | "residency-aware" => Ok(BalancerKind::ResidencyAware),
            other => Err(BalancerParseError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(
        replica: usize,
        depth: usize,
        ahead: usize,
        wait: f64,
        workers: usize,
    ) -> ReplicaProbe {
        ReplicaProbe {
            replica,
            queue_depth: depth,
            depth_ahead: ahead,
            predicted_wait_s: wait,
            workers,
            model: 0,
            warm_fraction: 1.0,
        }
    }

    #[test]
    fn round_robin_cycles_and_adapts_to_resizes() {
        let mut rr = RoundRobin::default();
        let three: Vec<ReplicaProbe> = (0..3).map(|i| probe(i, 0, 0, 0.0, 1)).collect();
        let picks: Vec<usize> = (0..6).map(|_| rr.pick(&three)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // Shrink to two replicas mid-rotation: picks stay in range.
        let two = &three[..2];
        for _ in 0..4 {
            assert!(rr.pick(two) < 2);
        }
    }

    #[test]
    fn jsq_takes_the_shallowest_queue_deterministically() {
        let mut jsq = JoinShortestQueue;
        let probes = vec![probe(0, 9, 9, 0.0, 1), probe(1, 2, 1, 0.0, 1), probe(2, 2, 2, 0.0, 1)];
        // Depth tie between 1 and 2 is broken by the smaller backlog.
        assert_eq!(jsq.pick(&probes), 1);
    }

    #[test]
    fn p2c_is_seed_deterministic_and_prefers_shallow_queues() {
        let probes: Vec<ReplicaProbe> =
            (0..8).map(|i| probe(i, if i == 3 { 0 } else { 50 }, 0, 0.0, 1)).collect();
        let picks = |seed: u64| -> Vec<usize> {
            let mut p2c = PowerOfTwoChoices::new(seed);
            (0..64).map(|_| p2c.pick(&probes)).collect()
        };
        assert_eq!(picks(7), picks(7), "equal seeds replay equal decisions");
        // Whenever replica 3 is sampled it wins; over 64 picks it must show
        // up far more often than 1/8 of the time.
        let hits = picks(7).iter().filter(|&&p| p == 3).count();
        assert!(hits > 8, "p2c picked the empty replica only {hits}/64 times");
        // Both sampled indices stay in range on a two-replica fleet.
        let mut p2c = PowerOfTwoChoices::new(1);
        let two: Vec<ReplicaProbe> = (0..2).map(|i| probe(i, 0, 0, 0.0, 1)).collect();
        for _ in 0..32 {
            assert!(p2c.pick(&two) < 2);
        }
        assert_eq!(p2c.pick(&two[..1]), 0, "single replica short-circuits");
    }

    #[test]
    fn least_wait_sees_heterogeneity_where_jsq_cannot() {
        // Replica 0: shallow queue but slow (high predicted wait).
        // Replica 1: deeper queue on fast wide hardware (low wait).
        let probes = vec![probe(0, 3, 3, 0.9, 1), probe(1, 8, 8, 0.1, 4)];
        assert_eq!(JoinShortestQueue.pick(&probes), 0, "jsq only sees depth");
        assert_eq!(LeastPredictedWait.pick(&probes), 1, "least-wait prices the backlog");
        // With every wait zero (no dwell) it falls back to per-worker load.
        let cold = vec![probe(0, 6, 6, 0.0, 1), probe(1, 8, 8, 0.0, 4)];
        assert_eq!(LeastPredictedWait.pick(&cold), 1);
    }

    #[test]
    fn residency_prefers_warm_replicas_and_splits_ties_by_depth() {
        let warm = |replica, depth, fraction| ReplicaProbe {
            replica,
            queue_depth: depth,
            depth_ahead: depth,
            predicted_wait_s: 0.0,
            workers: 1,
            model: 0,
            warm_fraction: fraction,
        };
        let mut residency = ResidencyAware;
        // The warm replica wins even with a deeper queue — paging costs
        // more than queueing here.
        let probes = vec![warm(0, 1, 0.0), warm(1, 6, 1.0)];
        assert_eq!(residency.pick(&probes), 1);
        // Two equally-warm replicas share load by queue depth.
        let probes = vec![warm(0, 5, 1.0), warm(1, 2, 0.98), warm(2, 9, 0.4)];
        assert_eq!(residency.pick(&probes), 1, "within tolerance, shallow queue wins");
        // On a non-paging fleet (all 1.0) it degenerates to JSQ.
        let probes = vec![warm(0, 4, 1.0), warm(1, 2, 1.0), warm(2, 3, 1.0)];
        assert_eq!(residency.pick(&probes), 1);
    }

    #[test]
    fn residency_seeds_cold_models_deterministically() {
        let cold = |replica, depth, model| ReplicaProbe {
            replica,
            queue_depth: depth,
            depth_ahead: depth,
            predicted_wait_s: 0.0,
            workers: 1,
            model,
            warm_fraction: 0.0,
        };
        let mut residency = ResidencyAware;
        // A cold model ignores queue depth and lands on its home replica
        // (model % fleet) — splitting it by depth would page it everywhere.
        let probes = |model| vec![cold(0, 9, model), cold(1, 0, model), cold(2, 3, model)];
        assert_eq!(residency.pick(&probes(0)), 0);
        assert_eq!(residency.pick(&probes(1)), 1);
        assert_eq!(residency.pick(&probes(5)), 2);
        // Once any replica is meaningfully warm, warmth routing takes over.
        let mut warming = probes(0);
        warming[2].warm_fraction = 0.8;
        assert_eq!(residency.pick(&warming), 2);
    }

    #[test]
    fn kinds_round_trip_and_build_their_policy() {
        for kind in BalancerKind::ALL {
            let parsed: BalancerKind = kind.as_str().parse().expect("canonical spelling parses");
            assert_eq!(parsed, kind);
            let policy = kind.build(3);
            // Each kind builds the policy its name advertises.
            match kind {
                BalancerKind::RoundRobin => assert_eq!(policy.name(), "round-robin"),
                BalancerKind::JoinShortestQueue => assert_eq!(policy.name(), "jsq"),
                BalancerKind::PowerOfTwoChoices => assert_eq!(policy.name(), "p2c"),
                BalancerKind::LeastPredictedWait => assert_eq!(policy.name(), "least-wait"),
                BalancerKind::ResidencyAware => assert_eq!(policy.name(), "residency"),
            }
        }
        assert_eq!("affinity".parse::<BalancerKind>().unwrap(), BalancerKind::ResidencyAware);
        assert!("waterfall".parse::<BalancerKind>().is_err());
    }
}
