//! Performance counters.
//!
//! Fig. 11 of the paper reports global memory load/store transactions and
//! FLOPS efficiency alongside the latency speedup.  Every kernel the cost
//! model prices returns a [`KernelProfile`] carrying the same counters, and
//! [`RunCounters`] aggregates them over a whole model execution.

use crate::device::{CoreKind, GpuDevice};

/// Raw activity counters of one kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelCounters {
    /// Floating point operations executed.
    pub flops: u64,
    /// Bytes loaded from global memory.
    pub load_bytes: u64,
    /// Bytes stored to global memory.
    pub store_bytes: u64,
    /// Global memory load transactions (including uncoalescing waste).
    pub load_transactions: u64,
    /// Global memory store transactions.
    pub store_transactions: u64,
}

impl KernelCounters {
    /// Sums two counter sets.
    pub fn add(&self, other: &KernelCounters) -> KernelCounters {
        KernelCounters {
            flops: self.flops + other.flops,
            load_bytes: self.load_bytes + other.load_bytes,
            store_bytes: self.store_bytes + other.store_bytes,
            load_transactions: self.load_transactions + other.load_transactions,
            store_transactions: self.store_transactions + other.store_transactions,
        }
    }
}

/// A priced kernel: its counters, the unit it ran on and the estimated time.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelProfile {
    /// Human-readable kernel name (e.g. `dense_gemm`, `tw_batched_gemm`).
    pub name: String,
    /// Which execution unit the kernel used.
    pub core: CoreKind,
    /// Activity counters.
    pub counters: KernelCounters,
    /// Estimated execution time in seconds (excluding other kernels).
    pub time_s: f64,
}

impl KernelProfile {
    /// Achieved FLOP/s of this kernel.
    pub fn achieved_flops(&self) -> f64 {
        if self.time_s <= 0.0 {
            return 0.0;
        }
        self.counters.flops as f64 / self.time_s
    }

    /// FLOPS efficiency relative to the peak of the unit it ran on — the
    /// quantity Fig. 11 plots.
    pub fn flops_efficiency(&self, device: &GpuDevice) -> f64 {
        let peak = device.peak_flops(self.core);
        if peak <= 0.0 {
            return 0.0;
        }
        (self.achieved_flops() / peak).min(1.0)
    }
}

/// Aggregated counters over a sequence of kernels (one model forward pass).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunCounters {
    kernels: Vec<KernelProfile>,
}

impl RunCounters {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a kernel profile.
    pub fn push(&mut self, profile: KernelProfile) {
        self.kernels.push(profile);
    }

    /// Extends with many profiles.
    pub fn extend(&mut self, profiles: impl IntoIterator<Item = KernelProfile>) {
        self.kernels.extend(profiles);
    }

    /// All recorded kernels in execution order.
    pub fn kernels(&self) -> &[KernelProfile] {
        &self.kernels
    }

    /// Number of kernel launches.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Total serialized execution time (the end-to-end latency when kernels
    /// run back-to-back on one stream).
    pub fn total_time(&self) -> f64 {
        self.kernels.iter().map(|k| k.time_s).sum()
    }

    /// Sum of all counters.
    pub fn totals(&self) -> KernelCounters {
        self.kernels.iter().fold(KernelCounters::default(), |acc, k| acc.add(&k.counters))
    }

    /// Total time spent in kernels whose name contains `substr` — used for
    /// the Fig. 15 GEMM / transpose / others breakdown.
    pub fn time_matching(&self, substr: &str) -> f64 {
        self.kernels.iter().filter(|k| k.name.contains(substr)).map(|k| k.time_s).sum()
    }

    /// Overall FLOPS efficiency: all FLOPs divided by total time and by the
    /// peak of the *tensor* cores (the paper normalises to "all tensors'
    /// peak FLOPS").
    pub fn flops_efficiency(&self, device: &GpuDevice) -> f64 {
        let t = self.total_time();
        if t <= 0.0 {
            return 0.0;
        }
        let flops: u64 = self.kernels.iter().map(|k| k.counters.flops).sum();
        (flops as f64 / t / device.peak_flops(CoreKind::TensorCore)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile(name: &str, flops: u64, time: f64) -> KernelProfile {
        KernelProfile {
            name: name.to_string(),
            core: CoreKind::TensorCore,
            counters: KernelCounters {
                flops,
                load_bytes: 1000,
                store_bytes: 500,
                load_transactions: 32,
                store_transactions: 16,
            },
            time_s: time,
        }
    }

    #[test]
    fn counters_add() {
        let a = KernelCounters {
            flops: 1,
            load_bytes: 2,
            store_bytes: 3,
            load_transactions: 4,
            store_transactions: 5,
        };
        let b = KernelCounters {
            flops: 10,
            load_bytes: 20,
            store_bytes: 30,
            load_transactions: 40,
            store_transactions: 50,
        };
        let c = a.add(&b);
        assert_eq!(c.flops, 11);
        assert_eq!(c.store_transactions, 55);
    }

    #[test]
    fn profile_efficiency() {
        let device = GpuDevice::v100();
        let p = sample_profile("dense_gemm", 125_000_000, 1e-6);
        // 125 GFLOP in 1 us = 125 TFLOP/s = 100% of tensor core peak.
        assert!((p.flops_efficiency(&device) - 1.0).abs() < 1e-9);
        let slow = sample_profile("dense_gemm", 125_000_000, 2e-6);
        assert!((slow.flops_efficiency(&device) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_time_profile_has_zero_efficiency() {
        let device = GpuDevice::v100();
        let p = sample_profile("noop", 100, 0.0);
        assert_eq!(p.achieved_flops(), 0.0);
        assert_eq!(p.flops_efficiency(&device), 0.0);
    }

    #[test]
    fn run_counters_aggregate() {
        let mut run = RunCounters::new();
        run.push(sample_profile("dense_gemm", 100, 1e-6));
        run.push(sample_profile("transpose", 0, 2e-6));
        run.push(sample_profile("layernorm_fused", 50, 3e-6));
        assert_eq!(run.kernel_count(), 3);
        assert!((run.total_time() - 6e-6).abs() < 1e-12);
        assert_eq!(run.totals().flops, 150);
        assert_eq!(run.totals().load_transactions, 96);
        assert!((run.time_matching("gemm") - 1e-6).abs() < 1e-12);
        assert!((run.time_matching("transpose") - 2e-6).abs() < 1e-12);
    }

    #[test]
    fn run_efficiency_uses_tensor_peak() {
        let device = GpuDevice::v100();
        let mut run = RunCounters::new();
        run.push(sample_profile("gemm", 125_000_000, 2e-6));
        // 125 GFLOP over 2us = 62.5 TFLOP/s = 50% of tensor peak.
        assert!((run.flops_efficiency(&device) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_run() {
        let run = RunCounters::new();
        assert_eq!(run.total_time(), 0.0);
        assert_eq!(run.flops_efficiency(&GpuDevice::v100()), 0.0);
        assert_eq!(run.totals(), KernelCounters::default());
    }
}
