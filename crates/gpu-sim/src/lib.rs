//! Analytical execution model of a V100-class GPU.
//!
//! The paper's latency results come from running dense, sparse (cuSparse),
//! block-sparse (BlockSparse) and tile-wise (CUTLASS-based) GEMM kernels on
//! an NVIDIA V100.  This crate replaces that hardware with an analytical
//! cost model that charges each kernel for the quantities that actually
//! determine its runtime on the real machine:
//!
//! * floating-point work on the right execution unit (CUDA cores at
//!   15.7 TFLOPS vs tensor cores at 125 TFLOPS),
//! * DRAM traffic, split into coalesced and uncoalesced transactions,
//! * tile/wave quantisation across the 80 SMs,
//! * kernel-launch overhead, stream concurrency and batching,
//! * the masking overhead of the tile-wise kernel (int32 masks double the
//!   load-request count, Sec. VII-B),
//! * load imbalance between tiles with different pruned ratios.
//!
//! The model is calibrated against the anchor points the paper reports
//! (crossover at ~40% sparsity, 2.26x GEMM speedup at 75%, 11.6x at 99%,
//! ~35% overhead at 0% sparsity) and unit tests pin those behaviours.
//! Absolute times are *estimates*; relative comparisons are the product.

pub mod calibration;
pub mod cost;
pub mod counters;
pub mod device;
pub mod occupancy;
pub mod stream;
pub mod transfer;

pub use calibration::Calibration;
pub use cost::{CostModel, SparseGemmKind, TwExecOptions, TwTileShape};
pub use counters::{KernelCounters, KernelProfile, RunCounters};
pub use device::{CoreKind, DeviceParseError, GpuDevice, Precision};
pub use occupancy::{tile_quantization_efficiency, wave_quantization_efficiency};
pub use stream::{StreamSchedule, StreamSim};
pub use transfer::TransferCost;
