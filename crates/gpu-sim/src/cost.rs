//! The kernel cost model.
//!
//! Each method prices one kernel type and returns a [`KernelProfile`]
//! containing both the estimated latency and the performance counters the
//! paper reports (Fig. 11).  The latency of a kernel is
//!
//! ```text
//! time = max(compute_time, memory_time) + launch_overhead
//! ```
//!
//! with compute throughput derated by library efficiency, occupancy
//! (tile/wave quantisation) and — for the tile-wise kernel — masking and
//! load-imbalance penalties.

use crate::calibration::Calibration;
use crate::counters::{KernelCounters, KernelProfile};
use crate::device::{CoreKind, GpuDevice, Precision};
use crate::occupancy::{gemm_occupancy_efficiency, imbalance_ratio};
use crate::stream::StreamSim;
use tw_tensor::GemmShape;

/// Which baseline sparse kernel family a sparse GEMM uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SparseGemmKind {
    /// cuSparse CSR SpMM on the CUDA cores (EW and VW baselines).
    CsrCuda,
    /// BlockSparse BSR GEMM on the tensor cores (BW baseline).
    BsrTensor,
}

/// The shape of one surviving weight tile of a TW-pruned matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwTileShape {
    /// Rows of the tile that survived row pruning (reduced K).
    pub kept_rows: usize,
    /// Columns of the tile that survived column pruning (reduced N, <= G).
    pub kept_cols: usize,
}

/// Execution options of the TW kernel — the optimisations of Sec. VI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwExecOptions {
    /// Execution unit.
    pub core: CoreKind,
    /// Store operands transposed so pruned-row skipping stays coalesced
    /// (Fig. 7 ②).  When false the uncoalesced-access penalty applies.
    pub transpose_layout: bool,
    /// Batch all tile GEMMs into one kernel (Fig. 7 ③).
    pub batching: bool,
    /// Spread residual work across concurrent streams (Fig. 7 ④).
    pub streams: bool,
}

impl TwExecOptions {
    /// The fully optimised tensor-core configuration used for the headline
    /// results.
    pub fn optimized_tensor() -> Self {
        Self { core: CoreKind::TensorCore, transpose_layout: true, batching: true, streams: true }
    }

    /// The fully optimised CUDA-core configuration.
    pub fn optimized_cuda() -> Self {
        Self { core: CoreKind::CudaCore, transpose_layout: true, batching: true, streams: true }
    }

    /// The naive configuration (no transpose, no batching, no streams).
    pub fn naive(core: CoreKind) -> Self {
        Self { core, transpose_layout: false, batching: false, streams: false }
    }
}

impl Default for TwExecOptions {
    fn default() -> Self {
        Self::optimized_tensor()
    }
}

/// The analytical cost model for one GPU device.
#[derive(Clone, Debug)]
pub struct CostModel {
    device: GpuDevice,
    cal: Calibration,
}

impl CostModel {
    /// Creates a cost model for the given device and calibration constants.
    pub fn new(device: GpuDevice, cal: Calibration) -> Self {
        Self { device, cal }
    }

    /// The default model: a V100 with the paper-derived calibration.
    pub fn v100() -> Self {
        Self::new(GpuDevice::v100(), Calibration::v100_defaults())
    }

    /// The device being modelled.
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// The calibration constants in use.
    pub fn calibration(&self) -> &Calibration {
        &self.cal
    }

    /// Output tile dimensions the GEMM kernels use on each unit (CUTLASS
    /// thread-block tiles).
    fn gemm_tile_dims(&self, core: CoreKind) -> (usize, usize) {
        match core {
            CoreKind::TensorCore => (128, 128),
            CoreKind::CudaCore => (64, 64),
        }
    }

    fn dense_efficiency(&self, core: CoreKind) -> f64 {
        match core {
            CoreKind::TensorCore => self.cal.dense_tensor_efficiency,
            CoreKind::CudaCore => self.cal.dense_cuda_efficiency,
        }
    }

    fn peak(&self, core: CoreKind) -> f64 {
        self.device.peak_flops(core)
    }

    fn mem_time(&self, bytes: f64) -> f64 {
        bytes / self.device.memory_bandwidth
    }

    /// Prices a dense GEMM `C(MxN) = A(MxK) * B(KxN)` (the cuBLAS/cuDNN
    /// baseline).
    pub fn dense_gemm(&self, shape: GemmShape, core: CoreKind, prec: Precision) -> KernelProfile {
        let (tile_m, tile_n) = self.gemm_tile_dims(core);
        let occ = gemm_occupancy_efficiency(shape.m, shape.n, tile_m, tile_n, self.device.num_sms);
        let eff = self.dense_efficiency(core) * occ.max(0.05);
        let flops = shape.flops();
        let compute = flops as f64 / (self.peak(core) * eff);

        let esize = prec.bytes() as u64;
        let load_bytes = ((shape.m * shape.k + shape.k * shape.n) as u64) * esize;
        let store_bytes = (shape.m * shape.n) as u64 * esize;
        let memory = self.mem_time((load_bytes + store_bytes) as f64);

        let time = compute.max(memory) + self.device.kernel_launch_overhead;
        KernelProfile {
            name: "dense_gemm".to_string(),
            core,
            counters: KernelCounters {
                flops,
                load_bytes,
                store_bytes,
                load_transactions: self.device.coalesced_transactions(load_bytes),
                store_transactions: self.device.coalesced_transactions(store_bytes),
            },
            time_s: time,
        }
    }

    /// Prices a cuSparse-style CSR SpMM on the CUDA cores: `A (dense MxK)`
    /// times a CSR weight matrix of the given element sparsity.
    pub fn csr_spmm(&self, shape: GemmShape, sparsity: f64) -> KernelProfile {
        let sparsity = sparsity.clamp(0.0, 1.0);
        let core = CoreKind::CudaCore;
        let useful_flops = (shape.flops() as f64 * (1.0 - sparsity)).round() as u64;
        let eff = self.dense_efficiency(core) * self.cal.csr_spmm_efficiency_ratio;
        let compute = useful_flops as f64 / (self.peak(core) * eff);

        let esize = Precision::Fp32.bytes() as u64;
        let nnz = ((shape.k * shape.n) as f64 * (1.0 - sparsity)) as u64;
        // A is re-streamed with poor locality; values carry a 4-byte column
        // index each; the output is scatter-accumulated.
        let load_bytes = (shape.m * shape.k) as u64 * esize + nnz * (esize + 4);
        let store_bytes = (shape.m * shape.n) as u64 * esize;
        let uncoalesced = self.cal.uncoalesced_factor;
        let memory = self.mem_time(load_bytes as f64 * uncoalesced + store_bytes as f64);

        let time = compute.max(memory) + self.device.kernel_launch_overhead;
        KernelProfile {
            name: "csr_spmm".to_string(),
            core,
            counters: KernelCounters {
                flops: useful_flops,
                load_bytes,
                store_bytes,
                load_transactions: (self.device.coalesced_transactions(load_bytes) as f64
                    * uncoalesced) as u64,
                store_transactions: self.device.coalesced_transactions(store_bytes),
            },
            time_s: time,
        }
    }

    /// Prices a BlockSparse-style BSR GEMM on the tensor cores with square
    /// blocks of `block_size` and the given *block-level* sparsity.
    pub fn bsr_gemm(
        &self,
        shape: GemmShape,
        block_size: usize,
        block_sparsity: f64,
    ) -> KernelProfile {
        assert!(block_size > 0, "block size must be positive");
        let block_sparsity = block_sparsity.clamp(0.0, 1.0);
        let core = CoreKind::TensorCore;
        let useful_flops = (shape.flops() as f64 * (1.0 - block_sparsity)).round() as u64;
        // Small blocks under-utilise the tensor-core pipelines; the paper
        // notes 32x32 is the minimum for reasonable performance.
        let block_eff = (block_size as f64 / 64.0).min(1.0).sqrt();
        let eff = self.dense_efficiency(core) * self.cal.bsr_gemm_efficiency_ratio * block_eff;
        let compute = useful_flops as f64 / (self.peak(core) * eff.max(1e-3));

        let esize = Precision::Fp16.bytes() as u64;
        let kept_weight_bytes =
            ((shape.k * shape.n) as f64 * (1.0 - block_sparsity)) as u64 * esize;
        let load_bytes = (shape.m * shape.k) as u64 * esize + kept_weight_bytes;
        let store_bytes = (shape.m * shape.n) as u64 * esize;
        let memory = self.mem_time((load_bytes + store_bytes) as f64);

        let time = compute.max(memory) + self.device.kernel_launch_overhead;
        KernelProfile {
            name: format!("bsr_gemm_{block_size}"),
            core,
            counters: KernelCounters {
                flops: useful_flops,
                load_bytes,
                store_bytes,
                load_transactions: self.device.coalesced_transactions(load_bytes),
                store_transactions: self.device.coalesced_transactions(store_bytes),
            },
            time_s: time,
        }
    }

    /// Prices the tile-wise masked/batched GEMM of Sec. VI.
    ///
    /// * `m` — rows of the activation matrix `A`.
    /// * `k`, `n` — the *original* weight dimensions (before pruning).
    /// * `tiles` — surviving shape of every weight tile.
    /// * `opts` — which of the Sec. VI optimisations are enabled.
    pub fn tw_gemm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        tiles: &[TwTileShape],
        opts: TwExecOptions,
    ) -> KernelProfile {
        let core = opts.core;
        let prec = match core {
            CoreKind::TensorCore => Precision::Fp16,
            CoreKind::CudaCore => Precision::Fp32,
        };
        let esize = prec.bytes() as u64;
        let (tile_m, tile_n_max) = self.gemm_tile_dims(core);

        let flops: u64 = tiles.iter().map(|t| 2 * (m * t.kept_rows * t.kept_cols) as u64).sum();
        let total_kept_cols: usize = tiles.iter().map(|t| t.kept_cols).sum();
        let num_tiles = tiles.len().max(1);

        // Memory traffic.  Activation columns matching pruned B rows are
        // skipped; re-reads of A across tiles in a batch hit in cache, so A
        // is charged once at the average surviving-K width.  Weights are
        // pre-compacted offline; outputs cover only surviving columns; the
        // int32 masks add a small amount of traffic but double the *request*
        // count (the paper's measured masking overhead).
        let avg_kept_rows: u64 =
            tiles.iter().map(|t| t.kept_rows as u64).sum::<u64>() / num_tiles as u64;
        let a_bytes: u64 = m as u64 * avg_kept_rows * esize;
        let b_bytes: u64 = tiles.iter().map(|t| (t.kept_rows * t.kept_cols) as u64 * esize).sum();
        let c_bytes = (m * total_kept_cols) as u64 * esize;
        let mask_bytes = tiles.len() as u64 * 4 * (k + n.div_ceil(num_tiles)) as u64;

        let layout_factor = if opts.transpose_layout { 1.0 } else { self.cal.uncoalesced_factor };
        let load_bytes = a_bytes + b_bytes + mask_bytes;
        let store_bytes = c_bytes;
        let load_transactions = (self.device.coalesced_transactions(load_bytes) as f64
            * self.cal.mask_load_factor
            * layout_factor) as u64;
        let store_transactions =
            (self.device.coalesced_transactions(store_bytes) as f64 * layout_factor) as u64;
        let memory = self.mem_time(
            (load_transactions + store_transactions) as f64
                * self.device.memory_transaction_bytes as f64,
        );

        // Compute time.  Uncoalesced accesses also stall the math pipelines,
        // not just the memory system, so the layout penalty derates compute
        // efficiency as well.
        let layout_compute_derate = if opts.transpose_layout { 1.0 } else { 0.5 };
        let base_eff = self.dense_efficiency(core)
            * self.cal.masked_gemm_efficiency_ratio
            * layout_compute_derate;
        let work_per_tile: Vec<u64> =
            tiles.iter().map(|t| (m * t.kept_rows * t.kept_cols) as u64).collect();

        // Thread-block grid of one tile: the kernel picks a narrower output
        // tile when the surviving column count is small (as CUTLASS does).
        let tile_n_for = |kept_cols: usize| -> usize {
            let rounded = kept_cols.max(1).div_ceil(32) * 32;
            rounded.min(tile_n_max)
        };
        let blocks_for = |t: &TwTileShape| -> usize {
            m.div_ceil(tile_m) * t.kept_cols.max(1).div_ceil(tile_n_for(t.kept_cols))
        };

        let (compute, launch) = if opts.batching {
            // One batched kernel over all tiles: thread blocks from every
            // tile fill the SMs together; imbalance between tiles inflates
            // the time because the batch finishes with its largest tile.
            let total_blocks: usize = tiles.iter().map(blocks_for).sum();
            let covered: f64 = tiles
                .iter()
                .map(|t| (blocks_for(t) * tile_m * tile_n_for(t.kept_cols)) as f64)
                .sum();
            let useful: f64 = tiles.iter().map(|t| (m * t.kept_cols) as f64).sum();
            let tile_quant = if covered > 0.0 { useful / covered } else { 1.0 };
            let wave =
                crate::occupancy::wave_quantization_efficiency(total_blocks, self.device.num_sms);
            let eff = (base_eff * (tile_quant * wave).max(0.05)).max(1e-3);
            let imbalance = imbalance_ratio(&work_per_tile);
            let strength = if opts.streams {
                self.cal.imbalance_penalty_with_streams
            } else {
                self.cal.imbalance_penalty_strength
            };
            let penalty = 1.0 + strength * (imbalance - 1.0);
            let compute = flops as f64 / (self.peak(core) * eff) * penalty;
            // Batching launches one kernel; a small residue of per-tile setup
            // remains.
            let residual = (1.0 - self.cal.batching_launch_saving) * tiles.len() as f64;
            let launch = self.device.kernel_launch_overhead * (1.0 + residual);
            (compute, launch)
        } else {
            // One kernel per tile.  Each small GEMM under-utilises the GPU;
            // streams overlap them.
            let per_tile_times: Vec<f64> = tiles
                .iter()
                .map(|t| {
                    let occ = gemm_occupancy_efficiency(
                        m,
                        t.kept_cols.max(1),
                        tile_m,
                        tile_n_for(t.kept_cols),
                        self.device.num_sms,
                    );
                    let eff = (base_eff * occ.max(0.02)).max(1e-3);
                    2.0 * (m * t.kept_rows * t.kept_cols) as f64 / (self.peak(core) * eff)
                        + self.device.kernel_launch_overhead
                })
                .collect();
            let streams = if opts.streams { self.device.max_concurrent_streams } else { 1 };
            let makespan = StreamSim::new(streams).schedule(&per_tile_times).makespan();
            (makespan, 0.0)
        };

        let time = compute.max(memory) + launch;
        KernelProfile {
            name: if opts.batching {
                "tw_batched_gemm".to_string()
            } else {
                "tw_tile_gemm".to_string()
            },
            core,
            counters: KernelCounters {
                flops,
                load_bytes,
                store_bytes,
                load_transactions,
                store_transactions,
            },
            time_s: time,
        }
    }

    /// Prices the CSC element-wise overlay multiplication of the TEW pattern
    /// (executed on the CUDA cores because it is irregular).
    pub fn csc_overlay_spmm(&self, m: usize, overlay_nnz: u64) -> KernelProfile {
        let core = CoreKind::CudaCore;
        let flops = 2 * m as u64 * overlay_nnz;
        // The overlay is far sparser than a typical CSR weight matrix (a few
        // percent density), so its gather efficiency is even lower than the
        // cuSparse baseline's.
        let eff = self.dense_efficiency(core) * self.cal.csr_spmm_efficiency_ratio * 0.4;
        let compute = flops as f64 / (self.peak(core) * eff.max(1e-4));
        let esize = Precision::Fp32.bytes() as u64;
        let load_bytes = overlay_nnz * (esize + 4) + (m as u64) * esize * overlay_nnz.min(1);
        let store_bytes = 0;
        let memory = self.mem_time(load_bytes as f64 * self.cal.uncoalesced_factor);
        let time = compute.max(memory) + self.device.kernel_launch_overhead;
        KernelProfile {
            name: "tew_overlay_spmm".to_string(),
            core,
            counters: KernelCounters {
                flops,
                load_bytes,
                store_bytes,
                load_transactions: (self.device.coalesced_transactions(load_bytes) as f64
                    * self.cal.uncoalesced_factor) as u64,
                store_transactions: 0,
            },
            time_s: time,
        }
    }

    /// Prices an out-of-place matrix transpose (the layout change of
    /// Fig. 7 ②, needed at model entry/exit when the transpose optimisation
    /// is on, or around every GEMM when it is applied naively).
    pub fn transpose(&self, rows: usize, cols: usize, prec: Precision) -> KernelProfile {
        let bytes = (rows * cols) as u64 * prec.bytes() as u64;
        let time = self.mem_time(2.0 * bytes as f64 / self.cal.elementwise_bandwidth_efficiency)
            + self.device.kernel_launch_overhead;
        KernelProfile {
            name: "transpose".to_string(),
            core: CoreKind::CudaCore,
            counters: KernelCounters {
                flops: 0,
                load_bytes: bytes,
                store_bytes: bytes,
                load_transactions: self.device.coalesced_transactions(bytes),
                store_transactions: self.device.coalesced_transactions(bytes),
            },
            time_s: time,
        }
    }

    /// Prices a chain of element-wise / normalisation kernels over a tensor
    /// of `elements` values (add-bias, GELU, LayerNorm, softmax, residual
    /// adds — the "others" of Fig. 15).
    ///
    /// When `fused` is true, consecutive ops share one launch and one
    /// round-trip to DRAM; otherwise each op pays both.
    pub fn elementwise_chain(
        &self,
        name: &str,
        num_ops: usize,
        elements: usize,
        prec: Precision,
        fused: bool,
    ) -> KernelProfile {
        assert!(num_ops > 0, "need at least one op in the chain");
        let esize = prec.bytes() as u64;
        let bytes_per_pass = 2 * elements as u64 * esize; // read + write
        let (passes, launches) = if fused { (1u64, 1usize) } else { (num_ops as u64, num_ops) };
        let load_bytes = passes * elements as u64 * esize;
        let store_bytes = passes * elements as u64 * esize;
        let time = self
            .mem_time((passes * bytes_per_pass) as f64 / self.cal.elementwise_bandwidth_efficiency)
            + launches as f64 * self.device.kernel_launch_overhead;
        KernelProfile {
            name: if fused { format!("{name}_fused") } else { name.to_string() },
            core: CoreKind::CudaCore,
            counters: KernelCounters {
                flops: (num_ops * elements) as u64,
                load_bytes,
                store_bytes,
                load_transactions: self.device.coalesced_transactions(load_bytes),
                store_transactions: self.device.coalesced_transactions(store_bytes),
            },
            time_s: time,
        }
    }
}

/// Convenience: builds uniform tile shapes for a TW matrix pruned to the
/// given overall sparsity with equal column/row reduction (used by sweeps
/// that do not carry real masks).
pub fn uniform_tiles(k: usize, n: usize, g: usize, sparsity: f64) -> Vec<TwTileShape> {
    assert!(g > 0, "granularity must be positive");
    let keep = (1.0 - sparsity).max(0.0);
    // Split the keep ratio evenly between rows and columns, mirroring the
    // pruner's default budget split.
    let keep_side = keep.sqrt();
    let num_tiles = n.div_ceil(g).max(1);
    let mut tiles = Vec::with_capacity(num_tiles);
    for t in 0..num_tiles {
        let cols_here = if (t + 1) * g <= n { g } else { n - t * g };
        tiles.push(TwTileShape {
            kept_rows: ((k as f64) * keep_side).round().max(1.0) as usize,
            kept_cols: ((cols_here as f64) * keep_side).round().max(1.0) as usize,
        });
    }
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert_gemm() -> GemmShape {
        // A representative BERT-base GEMM: batch*seq = 1024 tokens, 768x768
        // weight.
        GemmShape::new(1024, 768, 768)
    }

    #[test]
    fn tensor_core_dense_is_much_faster_than_cuda_core() {
        let model = CostModel::v100();
        let shape = bert_gemm();
        let t = model.dense_gemm(shape, CoreKind::TensorCore, Precision::Fp16).time_s;
        let c = model.dense_gemm(shape, CoreKind::CudaCore, Precision::Fp32).time_s;
        let ratio = c / t;
        assert!(ratio > 3.0 && ratio < 12.0, "tensor/CUDA dense ratio {ratio}");
    }

    #[test]
    fn dense_gemm_counters_match_shape() {
        let model = CostModel::v100();
        let shape = GemmShape::new(128, 256, 512);
        let p = model.dense_gemm(shape, CoreKind::TensorCore, Precision::Fp16);
        assert_eq!(p.counters.flops, shape.flops());
        assert_eq!(p.counters.load_bytes, ((128 * 512 + 512 * 256) * 2) as u64);
        assert_eq!(p.counters.store_bytes, (128 * 256 * 2) as u64);
        assert!(p.time_s > 0.0);
    }

    #[test]
    fn csr_spmm_slower_than_dense_cuda_at_moderate_sparsity() {
        // Fig. 3: EW/VW via cuSparse lose to the dense model on CUDA cores
        // at the sparsities pruning actually reaches (50-80%).
        let model = CostModel::v100();
        let shape = bert_gemm();
        let dense = model.dense_gemm(shape, CoreKind::CudaCore, Precision::Fp32).time_s;
        for s in [0.5, 0.6, 0.75, 0.8] {
            let sparse = model.csr_spmm(shape, s).time_s;
            assert!(sparse > dense, "sparsity {s}: csr {sparse} should exceed dense {dense}");
        }
    }

    #[test]
    fn csr_spmm_wins_only_at_extreme_sparsity() {
        let model = CostModel::v100();
        let shape = bert_gemm();
        let dense = model.dense_gemm(shape, CoreKind::CudaCore, Precision::Fp32).time_s;
        let sparse_97 = model.csr_spmm(shape, 0.97).time_s;
        assert!(sparse_97 < dense, "97% sparsity should beat dense CUDA");
    }

    #[test]
    fn bsr_gemm_slower_than_dense_tensor_at_moderate_sparsity() {
        // Fig. 3: BW is ~3x slower than the dense model on tensor cores.
        let model = CostModel::v100();
        let shape = bert_gemm();
        let dense = model.dense_gemm(shape, CoreKind::TensorCore, Precision::Fp16).time_s;
        let bw = model.bsr_gemm(shape, 32, 0.5).time_s;
        let ratio = bw / dense;
        assert!(ratio > 1.5 && ratio < 6.0, "BW/dense ratio {ratio}");
    }

    #[test]
    fn bsr_gemm_needs_very_high_sparsity_to_win() {
        let model = CostModel::v100();
        let shape = bert_gemm();
        let dense = model.dense_gemm(shape, CoreKind::TensorCore, Precision::Fp16).time_s;
        assert!(model.bsr_gemm(shape, 64, 0.75).time_s > dense);
        assert!(model.bsr_gemm(shape, 64, 0.97).time_s < dense);
    }

    #[test]
    fn smaller_blocks_are_slower() {
        let model = CostModel::v100();
        let shape = bert_gemm();
        let b8 = model.bsr_gemm(shape, 8, 0.5).time_s;
        let b32 = model.bsr_gemm(shape, 32, 0.5).time_s;
        let b64 = model.bsr_gemm(shape, 64, 0.5).time_s;
        assert!(b8 > b32);
        assert!(b32 >= b64);
    }

    #[test]
    fn tw_zero_sparsity_overhead_is_about_35_percent() {
        // "our TW implementation with zero sparsity ... leads to about 35%
        // performance loss" (Sec. VII-B).
        let model = CostModel::v100();
        let shape = bert_gemm();
        let dense = model.dense_gemm(shape, CoreKind::TensorCore, Precision::Fp16).time_s;
        let tiles = uniform_tiles(768, 768, 128, 0.0);
        let tw = model.tw_gemm(1024, 768, 768, &tiles, TwExecOptions::optimized_tensor()).time_s;
        let overhead = tw / dense - 1.0;
        assert!(
            (0.2..=0.5).contains(&overhead),
            "overhead at zero sparsity should be ~35%, got {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn tw_crossover_near_40_percent_sparsity() {
        // Fig. 9b: "With only 40% sparsity, TW with G = 128 starts to
        // outperform the dense model latency."
        let model = CostModel::v100();
        let shape = bert_gemm();
        let dense = model.dense_gemm(shape, CoreKind::TensorCore, Precision::Fp16).time_s;
        let at = |s: f64| {
            let tiles = uniform_tiles(768, 768, 128, s);
            model.tw_gemm(1024, 768, 768, &tiles, TwExecOptions::optimized_tensor()).time_s
        };
        assert!(at(0.25) > dense, "25% sparsity should still be slower than dense");
        assert!(at(0.55) < dense, "55% sparsity should be faster than dense");
    }

    #[test]
    fn tw_speedup_at_75_percent_is_about_2x() {
        // Fig. 9b / Sec. VII-D: TW-128 achieves ~2.26x GEMM speedup at 75%.
        let model = CostModel::v100();
        let shape = bert_gemm();
        let dense = model.dense_gemm(shape, CoreKind::TensorCore, Precision::Fp16).time_s;
        let tiles = uniform_tiles(768, 768, 128, 0.75);
        let tw = model.tw_gemm(1024, 768, 768, &tiles, TwExecOptions::optimized_tensor()).time_s;
        let speedup = dense / tw;
        assert!(
            (1.7..=3.0).contains(&speedup),
            "speedup at 75% should be ~2.26x, got {speedup:.2}x"
        );
    }

    #[test]
    fn tw_speedup_keeps_scaling_to_99_percent() {
        // Fig. 11: 11.6x at 99% sparsity.
        let model = CostModel::v100();
        let shape = bert_gemm();
        let dense = model.dense_gemm(shape, CoreKind::TensorCore, Precision::Fp16).time_s;
        let tiles = uniform_tiles(768, 768, 128, 0.99);
        let tw = model.tw_gemm(1024, 768, 768, &tiles, TwExecOptions::optimized_tensor()).time_s;
        let speedup = dense / tw;
        assert!(speedup > 6.0, "speedup at 99% should be large, got {speedup:.2}x");
    }

    #[test]
    fn transpose_optimisation_matters() {
        // Fig. 15: "Without performing the matrix transpose optimization,
        // the GEMM computation cannot benefit from the high sparsity."
        let model = CostModel::v100();
        let tiles = uniform_tiles(768, 768, 128, 0.75);
        let with = model.tw_gemm(1024, 768, 768, &tiles, TwExecOptions::optimized_tensor()).time_s;
        let without = model
            .tw_gemm(
                1024,
                768,
                768,
                &tiles,
                TwExecOptions { transpose_layout: false, ..TwExecOptions::optimized_tensor() },
            )
            .time_s;
        assert!(without > with * 1.5, "uncoalesced accesses should hurt: {without} vs {with}");
    }

    #[test]
    fn batching_and_streams_beat_naive_execution() {
        let model = CostModel::v100();
        let tiles = uniform_tiles(768, 768, 128, 0.75);
        let optimized =
            model.tw_gemm(1024, 768, 768, &tiles, TwExecOptions::optimized_tensor()).time_s;
        let naive = model
            .tw_gemm(1024, 768, 768, &tiles, TwExecOptions::naive(CoreKind::TensorCore))
            .time_s;
        let streams_only = model
            .tw_gemm(
                1024,
                768,
                768,
                &tiles,
                TwExecOptions {
                    batching: false,
                    streams: true,
                    ..TwExecOptions::optimized_tensor()
                },
            )
            .time_s;
        let serial_tiles = model
            .tw_gemm(
                1024,
                768,
                768,
                &tiles,
                TwExecOptions {
                    batching: false,
                    streams: false,
                    ..TwExecOptions::optimized_tensor()
                },
            )
            .time_s;
        assert!(naive > optimized, "naive {naive} should be slower than optimized {optimized}");
        assert!(
            streams_only < serial_tiles,
            "stream concurrency should beat serial per-tile execution"
        );
        assert!(streams_only <= naive, "streams should not hurt the naive execution");
    }

    #[test]
    fn tw_mask_overhead_doubles_load_transactions() {
        // Fig. 11's counter analysis: TW at zero sparsity issues ~2x the
        // load transactions of the dense GEMM.
        let model = CostModel::v100();
        let shape = bert_gemm();
        let dense = model.dense_gemm(shape, CoreKind::TensorCore, Precision::Fp16);
        let tiles = uniform_tiles(768, 768, 128, 0.0);
        let tw = model.tw_gemm(1024, 768, 768, &tiles, TwExecOptions::optimized_tensor());
        let ratio = tw.counters.load_transactions as f64 / dense.counters.load_transactions as f64;
        assert!((1.8..=2.4).contains(&ratio), "load transaction ratio {ratio}");
    }

    #[test]
    fn tew_overlay_on_cuda_cores_is_expensive_relative_to_tensor_dense() {
        // Fig. 10b: at delta = 1% the overlay alone erases the tensor-core
        // speedup, because it runs on the 8x slower CUDA cores.
        let model = CostModel::v100();
        let shape = bert_gemm();
        let dense_t = model.dense_gemm(shape, CoreKind::TensorCore, Precision::Fp16).time_s;
        let overlay_nnz = (0.01 * 768.0 * 768.0) as u64;
        let overlay = model.csc_overlay_spmm(1024, overlay_nnz).time_s;
        assert!(
            overlay > 0.3 * dense_t,
            "1% overlay ({overlay}) should be a large fraction of dense tensor time ({dense_t})"
        );
        // But relative to the CUDA-core dense model it is small.
        let dense_c = model.dense_gemm(shape, CoreKind::CudaCore, Precision::Fp32).time_s;
        assert!(overlay < 0.3 * dense_c);
    }

    #[test]
    fn imbalanced_tiles_cost_more_without_streams() {
        let model = CostModel::v100();
        let balanced: Vec<TwTileShape> =
            (0..6).map(|_| TwTileShape { kept_rows: 384, kept_cols: 128 }).collect();
        let mut imbalanced = balanced.clone();
        imbalanced[0].kept_rows = 768;
        imbalanced[1].kept_rows = 96;
        imbalanced[2].kept_rows = 96;
        let opts_nostream = TwExecOptions { streams: false, ..TwExecOptions::optimized_tensor() };
        let t_bal = model.tw_gemm(1024, 768, 768, &balanced, opts_nostream).time_s;
        let t_imb = model.tw_gemm(1024, 768, 768, &imbalanced, opts_nostream).time_s;
        let t_imb_streams =
            model.tw_gemm(1024, 768, 768, &imbalanced, TwExecOptions::optimized_tensor()).time_s;
        assert!(t_imb > t_bal, "imbalance should cost time");
        assert!(t_imb_streams < t_imb, "streams should recover some imbalance loss");
    }

    #[test]
    fn elementwise_fusion_saves_time_and_launches() {
        let model = CostModel::v100();
        let unfused =
            model.elementwise_chain("bias_layernorm", 3, 1024 * 768, Precision::Fp16, false);
        let fused = model.elementwise_chain("bias_layernorm", 3, 1024 * 768, Precision::Fp16, true);
        assert!(fused.time_s < unfused.time_s * 0.6);
        assert!(fused.name.contains("fused"));
    }

    #[test]
    fn transpose_cost_scales_with_size() {
        let model = CostModel::v100();
        let small = model.transpose(128, 768, Precision::Fp16).time_s;
        let large = model.transpose(1024, 768, Precision::Fp16).time_s;
        assert!(large > small);
    }

    #[test]
    fn uniform_tiles_cover_matrix() {
        let tiles = uniform_tiles(768, 768, 128, 0.75);
        assert_eq!(tiles.len(), 6);
        for t in &tiles {
            assert!(t.kept_rows <= 768 && t.kept_rows >= 1);
            assert!(t.kept_cols <= 128 && t.kept_cols >= 1);
        }
        let kept: usize = tiles.iter().map(|t| t.kept_rows * t.kept_cols).sum();
        let achieved = 1.0 - kept as f64 / (768.0 * 768.0);
        assert!((achieved - 0.75).abs() < 0.03);
    }

    #[test]
    fn cuda_core_tw_also_speeds_up() {
        // Fig. 14 right column: TW gives ~2.86x average speedup on CUDA
        // cores.
        let model = CostModel::v100();
        let shape = bert_gemm();
        let dense = model.dense_gemm(shape, CoreKind::CudaCore, Precision::Fp32).time_s;
        let tiles = uniform_tiles(768, 768, 128, 0.75);
        let tw = model.tw_gemm(1024, 768, 768, &tiles, TwExecOptions::optimized_cuda()).time_s;
        let speedup = dense / tw;
        assert!(speedup > 1.8, "CUDA-core TW speedup {speedup:.2}x");
    }
}
