//! Tile and wave quantisation effects.
//!
//! A GEMM is executed as a grid of output tiles distributed over the SMs.
//! Two quantisation effects reduce achieved throughput below peak:
//!
//! * **Tile quantisation** — the output dimensions rarely divide the tile
//!   size exactly, so edge tiles do partial work at full cost.
//! * **Wave quantisation** — the grid of tiles is executed in "waves" of up
//!   to `num_sms` tiles; the last wave is usually partially filled.

/// Fraction of useful work in the tile grid covering an `m x n` output with
/// `tile_m x tile_n` tiles (1.0 when the dimensions divide exactly).
pub fn tile_quantization_efficiency(m: usize, n: usize, tile_m: usize, tile_n: usize) -> f64 {
    if m == 0 || n == 0 {
        return 1.0;
    }
    assert!(tile_m > 0 && tile_n > 0, "tile dimensions must be positive");
    let tiles_m = m.div_ceil(tile_m);
    let tiles_n = n.div_ceil(tile_n);
    let covered = (tiles_m * tile_m) as f64 * (tiles_n * tile_n) as f64;
    (m as f64 * n as f64) / covered
}

/// Fraction of SM capacity used when `num_tiles` thread blocks are executed
/// in waves over `num_sms` SMs (1.0 when the last wave is full).
pub fn wave_quantization_efficiency(num_tiles: usize, num_sms: usize) -> f64 {
    if num_tiles == 0 {
        return 1.0;
    }
    assert!(num_sms > 0, "SM count must be positive");
    let waves = num_tiles.div_ceil(num_sms);
    num_tiles as f64 / (waves * num_sms) as f64
}

/// Combined occupancy efficiency of a GEMM of shape `m x n` executed with
/// the given output tile size over `num_sms` SMs.
pub fn gemm_occupancy_efficiency(
    m: usize,
    n: usize,
    tile_m: usize,
    tile_n: usize,
    num_sms: usize,
) -> f64 {
    let tiles = m.div_ceil(tile_m) * n.div_ceil(tile_n);
    tile_quantization_efficiency(m, n, tile_m, tile_n)
        * wave_quantization_efficiency(tiles, num_sms)
}

/// Load-imbalance factor of a batch of unequal work items executed
/// concurrently: the ratio of the largest item to the mean item.  1.0 means
/// perfectly balanced; the cost model scales this into a time penalty.
pub fn imbalance_ratio(work_items: &[u64]) -> f64 {
    if work_items.is_empty() {
        return 1.0;
    }
    let max = *work_items.iter().max().expect("non-empty") as f64;
    let sum: u64 = work_items.iter().sum();
    let mean = sum as f64 / work_items.len() as f64;
    if mean <= 0.0 {
        return 1.0;
    }
    (max / mean).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tiling_is_fully_efficient() {
        assert_eq!(tile_quantization_efficiency(256, 256, 128, 128), 1.0);
        assert_eq!(tile_quantization_efficiency(128, 768, 128, 128), 1.0);
    }

    #[test]
    fn partial_tiles_reduce_efficiency() {
        let e = tile_quantization_efficiency(129, 128, 128, 128);
        assert!((e - 129.0 / 256.0).abs() < 1e-12);
        assert!(tile_quantization_efficiency(100, 100, 128, 128) < 1.0);
    }

    #[test]
    fn full_waves_are_fully_efficient() {
        assert_eq!(wave_quantization_efficiency(80, 80), 1.0);
        assert_eq!(wave_quantization_efficiency(160, 80), 1.0);
    }

    #[test]
    fn partial_last_wave_reduces_efficiency() {
        assert!((wave_quantization_efficiency(81, 80) - 81.0 / 160.0).abs() < 1e-12);
        assert!((wave_quantization_efficiency(40, 80) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_work_is_neutral() {
        assert_eq!(tile_quantization_efficiency(0, 10, 16, 16), 1.0);
        assert_eq!(wave_quantization_efficiency(0, 80), 1.0);
    }

    #[test]
    fn combined_occupancy() {
        // 1024x768 with 128x128 tiles = 8*6 = 48 tiles on 80 SMs: tile
        // quantisation perfect, wave quantisation 48/80.
        let e = gemm_occupancy_efficiency(1024, 768, 128, 128, 80);
        assert!((e - 48.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_equal_items_is_one() {
        assert_eq!(imbalance_ratio(&[5, 5, 5, 5]), 1.0);
        assert_eq!(imbalance_ratio(&[]), 1.0);
        assert_eq!(imbalance_ratio(&[0, 0]), 1.0);
    }

    #[test]
    fn imbalance_of_skewed_items() {
        // Items 1,1,1,5: mean 2, max 5 -> ratio 2.5.
        assert!((imbalance_ratio(&[1, 1, 1, 5]) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_dims_panic() {
        let _ = tile_quantization_efficiency(8, 8, 0, 8);
    }
}
