//! CUDA-stream concurrency model.
//!
//! The paper's load-imbalance mitigation assigns different tile GEMMs to
//! different streams "and rel\[ies\] on the underlying scheduler to maximize
//! resource utilization" (Fig. 7 ④).  [`StreamSim`] models that scheduler as
//! a greedy longest-processing-time assignment of kernels to a bounded
//! number of streams; the makespan of the schedule is the latency the cost
//! model charges.

/// The result of scheduling a set of kernels onto streams.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamSchedule {
    /// Total busy time of each stream.
    pub per_stream_time: Vec<f64>,
    /// Which stream each kernel (by input index) was assigned to.
    pub assignment: Vec<usize>,
}

impl StreamSchedule {
    /// The makespan: time until the last stream finishes.
    pub fn makespan(&self) -> f64 {
        self.per_stream_time.iter().cloned().fold(0.0, f64::max)
    }

    /// Sum of all kernel times (the single-stream latency).
    pub fn total_work(&self) -> f64 {
        self.per_stream_time.iter().sum()
    }

    /// Average stream utilisation relative to the makespan.
    pub fn utilization(&self) -> f64 {
        let makespan = self.makespan();
        if makespan <= 0.0 || self.per_stream_time.is_empty() {
            return 1.0;
        }
        self.total_work() / (makespan * self.per_stream_time.len() as f64)
    }
}

/// A greedy multi-stream scheduler.
#[derive(Clone, Copy, Debug)]
pub struct StreamSim {
    num_streams: usize,
}

impl StreamSim {
    /// Creates a scheduler with the given number of concurrent streams.
    ///
    /// # Panics
    /// Panics if `num_streams` is zero.
    pub fn new(num_streams: usize) -> Self {
        assert!(num_streams > 0, "need at least one stream");
        Self { num_streams }
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.num_streams
    }

    /// Schedules kernels with the given durations using greedy
    /// longest-processing-time-first assignment (a 4/3-approximation of the
    /// optimal makespan, and a good proxy for the hardware scheduler).
    pub fn schedule(&self, durations: &[f64]) -> StreamSchedule {
        let streams = self.num_streams.min(durations.len()).max(1);
        let mut per_stream_time = vec![0.0f64; streams];
        let mut assignment = vec![0usize; durations.len()];

        // Longest first.
        let mut order: Vec<usize> = (0..durations.len()).collect();
        order.sort_by(|&a, &b| {
            durations[b].partial_cmp(&durations[a]).expect("durations must not be NaN")
        });

        for idx in order {
            // Assign to the least-loaded stream.
            let (stream, _) = per_stream_time
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                .expect("at least one stream");
            per_stream_time[stream] += durations[idx];
            assignment[idx] = stream;
        }
        StreamSchedule { per_stream_time, assignment }
    }

    /// Prices one *batch* of independent, identical kernels — the serving
    /// runtime's use case, where a dynamic batcher groups `count` forward
    /// passes of `duration` seconds each and the device overlaps them across
    /// streams.  Equivalent to [`StreamSim::schedule`] with a uniform
    /// duration vector, but without allocating it.
    ///
    /// # Panics
    /// Panics if `duration` is negative or NaN.
    pub fn schedule_uniform(&self, duration: f64, count: usize) -> StreamSchedule {
        assert!(duration >= 0.0, "kernel duration must be non-negative");
        if count == 0 {
            return StreamSchedule { per_stream_time: Vec::new(), assignment: Vec::new() };
        }
        let streams = self.num_streams.min(count);
        // Round-robin is optimal for identical durations: stream s receives
        // ceil((count - s) / streams) kernels.
        let per_stream_time: Vec<f64> =
            (0..streams).map(|s| duration * (count - s).div_ceil(streams) as f64).collect();
        let assignment: Vec<usize> = (0..count).map(|i| i % streams).collect();
        StreamSchedule { per_stream_time, assignment }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_serializes() {
        let sim = StreamSim::new(1);
        let sched = sim.schedule(&[1.0, 2.0, 3.0]);
        assert!((sched.makespan() - 6.0).abs() < 1e-12);
        assert!((sched.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equal_kernels_divide_evenly() {
        let sim = StreamSim::new(4);
        let sched = sim.schedule(&[1.0; 8]);
        assert!((sched.makespan() - 2.0).abs() < 1e-12);
        assert!((sched.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_bounded_by_largest_kernel() {
        let sim = StreamSim::new(3);
        let sched = sim.schedule(&[10.0, 1.0, 1.0, 1.0]);
        assert!((sched.makespan() - 10.0).abs() < 1e-12);
        assert!(sched.utilization() < 0.5);
    }

    #[test]
    fn lpt_beats_naive_round_robin_on_skewed_input() {
        // Naive in-order round robin over 2 streams of [5,5,1,1,4,4] gives
        // makespan 10; LPT gives 10 as well worst-case but for this input
        // [5,4,1] / [5,4,1] = 10 each: check <= sum/streams * 4/3 bound.
        let sim = StreamSim::new(2);
        let durations = [5.0, 5.0, 1.0, 1.0, 4.0, 4.0];
        let sched = sim.schedule(&durations);
        let lower_bound = durations.iter().sum::<f64>() / 2.0;
        assert!(sched.makespan() <= lower_bound * 4.0 / 3.0 + 1e-12);
        assert!(sched.makespan() >= lower_bound - 1e-12);
    }

    #[test]
    fn more_streams_never_hurt() {
        let durations: Vec<f64> = (1..20).map(|i| i as f64 * 0.1).collect();
        let mut last = f64::INFINITY;
        for s in [1, 2, 4, 8, 16] {
            let m = StreamSim::new(s).schedule(&durations).makespan();
            assert!(m <= last + 1e-12, "streams {s}: {m} > {last}");
            last = m;
        }
    }

    #[test]
    fn empty_input() {
        let sched = StreamSim::new(4).schedule(&[]);
        assert_eq!(sched.makespan(), 0.0);
        assert_eq!(sched.total_work(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_panics() {
        let _ = StreamSim::new(0);
    }

    #[test]
    fn assignment_covers_all_kernels() {
        let sim = StreamSim::new(3);
        let sched = sim.schedule(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(sched.assignment.len(), 5);
        assert!(sched.assignment.iter().all(|&s| s < 3));
        // Per-stream sums reconstruct total work.
        assert!((sched.total_work() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_batch_matches_general_scheduler() {
        for (streams, count) in [(1, 5), (4, 8), (4, 9), (8, 3), (32, 100)] {
            let sim = StreamSim::new(streams);
            let uniform = sim.schedule_uniform(0.25, count);
            let general = sim.schedule(&vec![0.25; count]);
            assert!(
                (uniform.makespan() - general.makespan()).abs() < 1e-12,
                "streams {streams} count {count}"
            );
            assert!((uniform.total_work() - general.total_work()).abs() < 1e-9);
            assert_eq!(uniform.assignment.len(), count);
        }
    }

    #[test]
    fn uniform_batch_scales_down_with_streams() {
        // Batching 16 identical forward passes over more streams shrinks the
        // priced latency until the stream count reaches the batch size.
        let mut last = f64::INFINITY;
        for streams in [1, 2, 4, 8, 16, 32] {
            let m = StreamSim::new(streams).schedule_uniform(1.0, 16).makespan();
            assert!(m <= last + 1e-12);
            last = m;
        }
        assert!((StreamSim::new(16).schedule_uniform(1.0, 16).makespan() - 1.0).abs() < 1e-12);
        assert!((StreamSim::new(32).schedule_uniform(1.0, 16).makespan() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_empty_batch() {
        let sched = StreamSim::new(4).schedule_uniform(1.0, 0);
        assert_eq!(sched.makespan(), 0.0);
        assert!(sched.assignment.is_empty());
    }
}
