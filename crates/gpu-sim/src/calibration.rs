//! Calibration constants of the cost model.
//!
//! Each constant captures one empirical efficiency ratio of the real
//! software stack on the V100.  They are collected in one struct so that
//! ablation benches can perturb them and so their provenance is documented
//! in a single place.

/// Efficiency/overhead constants used by [`crate::CostModel`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Calibration {
    /// Fraction of tensor-core peak a well-tuned library dense GEMM
    /// (cuBLAS/cuDNN) achieves on large DNN shapes.
    pub dense_tensor_efficiency: f64,
    /// Fraction of CUDA-core peak a library dense GEMM achieves.
    pub dense_cuda_efficiency: f64,
    /// Efficiency of the CUTLASS-based masked/batched TW GEMM kernel
    /// relative to the library dense GEMM on the same unit.  The paper
    /// measures ~35% slowdown at zero sparsity ("the extra load traffic
    /// leads to about 35% performance loss"), i.e. a ratio of ~0.74.
    pub masked_gemm_efficiency_ratio: f64,
    /// Effective fraction of CUDA-core dense-GEMM efficiency that cuSparse
    /// CSR SpMM achieves, accounting for its irregular gather/scatter.
    /// Chosen so that unstructured sparse models only win beyond ~95%
    /// sparsity, as reported by prior work cited in Sec. II-B.
    pub csr_spmm_efficiency_ratio: f64,
    /// Effective fraction of tensor-core dense-GEMM efficiency that the
    /// BlockSparse BSR kernel achieves (per surviving block), reproducing
    /// the ~3x slowdown vs dense at ~50% block sparsity in Fig. 3.
    pub bsr_gemm_efficiency_ratio: f64,
    /// Multiplier on memory transactions when accesses are uncoalesced
    /// (the "w/o transpose" configuration of Fig. 15).
    pub uncoalesced_factor: f64,
    /// Multiplier on load transactions caused by the int32 row/column masks
    /// of the TW kernel ("twice of global memory request owing to the
    /// masking overhead").
    pub mask_load_factor: f64,
    /// Fraction of the per-kernel launch overhead that batching amortises
    /// away (one launch for the whole batch instead of one per tile).
    pub batching_launch_saving: f64,
    /// Strength of the load-imbalance penalty: the compute time of a batched
    /// TW GEMM is inflated by `1 + strength * (max_tile/mean_tile - 1)` when
    /// streams are disabled; streams recover most of it.
    pub imbalance_penalty_strength: f64,
    /// Residual imbalance penalty strength when stream concurrency is on.
    pub imbalance_penalty_with_streams: f64,
    /// Throughput efficiency of simple element-wise kernels (add-bias,
    /// activation) relative to DRAM bandwidth.
    pub elementwise_bandwidth_efficiency: f64,
    /// Fraction of element-wise kernel time saved by kernel fusion (launches
    /// removed and intermediate tensors kept in registers).
    pub fusion_saving: f64,
}

impl Calibration {
    /// Default calibration targeting the paper's V100 + CUDA 10.1 stack.
    pub fn v100_defaults() -> Self {
        Self {
            dense_tensor_efficiency: 0.55,
            dense_cuda_efficiency: 0.75,
            masked_gemm_efficiency_ratio: 0.74,
            csr_spmm_efficiency_ratio: 0.10,
            bsr_gemm_efficiency_ratio: 0.10,
            uncoalesced_factor: 4.0,
            mask_load_factor: 2.0,
            batching_launch_saving: 0.95,
            imbalance_penalty_strength: 0.6,
            imbalance_penalty_with_streams: 0.12,
            elementwise_bandwidth_efficiency: 0.7,
            fusion_saving: 0.55,
        }
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Self::v100_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Calibration::default();
        assert!(c.dense_tensor_efficiency > 0.0 && c.dense_tensor_efficiency <= 1.0);
        assert!(c.dense_cuda_efficiency > 0.0 && c.dense_cuda_efficiency <= 1.0);
        assert!(c.masked_gemm_efficiency_ratio > 0.0 && c.masked_gemm_efficiency_ratio <= 1.0);
        assert!(c.csr_spmm_efficiency_ratio < c.masked_gemm_efficiency_ratio);
        assert!(c.bsr_gemm_efficiency_ratio < c.masked_gemm_efficiency_ratio);
        assert!(c.uncoalesced_factor >= 1.0);
        assert!(c.mask_load_factor >= 1.0);
        assert!((0.0..=1.0).contains(&c.batching_launch_saving));
        assert!((0.0..=1.0).contains(&c.fusion_saving));
        assert!(c.imbalance_penalty_with_streams < c.imbalance_penalty_strength);
    }
}
