//! GPU device descriptions.

/// Which execution unit a kernel runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// The general-purpose CUDA cores (FP32, 15.7 TFLOPS on V100).
    CudaCore,
    /// The tensor cores (FP16 matrix units, 125 TFLOPS on V100).
    TensorCore,
}

/// Arithmetic precision of a kernel's operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 16-bit floating point (tensor-core inference in the paper).
    Fp16,
    /// 32-bit floating point (CUDA-core inference and all training).
    Fp32,
}

impl Precision {
    /// Size of one element in bytes.
    pub const fn bytes(&self) -> usize {
        match self {
            Precision::Fp16 => 2,
            Precision::Fp32 => 4,
        }
    }
}

/// Static description of a GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuDevice {
    /// Marketing name, e.g. "Tesla V100".
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Peak FP32 throughput of the CUDA cores, in FLOP/s.
    pub cuda_core_flops: f64,
    /// Peak FP16 throughput of the tensor cores, in FLOP/s.
    pub tensor_core_flops: f64,
    /// DRAM bandwidth in bytes/s.
    pub memory_bandwidth: f64,
    /// Size of one DRAM transaction in bytes (a coalesced 32-byte sector).
    pub memory_transaction_bytes: usize,
    /// Kernel launch overhead in seconds.
    pub kernel_launch_overhead: f64,
    /// Warp size (threads per warp).
    pub warp_size: usize,
    /// Maximum number of concurrently executing streams the scheduler can
    /// overlap usefully.
    pub max_concurrent_streams: usize,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: usize,
    /// On-device memory (VRAM) capacity in bytes.  This is the budget a
    /// memory manager allocates weight tiles against: bytes beyond it must
    /// live host-side and be paged in over PCIe before a kernel can run.
    pub vram_bytes: u64,
    /// Effective host↔device (PCIe) bandwidth in bytes/s — the *achieved*
    /// copy rate, not the link's datasheet peak.
    pub pcie_bandwidth: f64,
    /// Fixed per-transfer host↔device latency in seconds (driver + DMA
    /// setup), charged once per copy regardless of size.
    pub pcie_latency: f64,
}

impl GpuDevice {
    /// The Tesla V100 used throughout the paper's evaluation (Sec. VII-A):
    /// 15.7 TFLOPS CUDA cores, 125 TFLOPS tensor cores, 80 SMs, ~900 GB/s
    /// HBM2.
    pub fn v100() -> Self {
        Self {
            name: "Tesla V100".to_string(),
            num_sms: 80,
            cuda_core_flops: 15.7e12,
            tensor_core_flops: 125.0e12,
            memory_bandwidth: 900.0e9,
            memory_transaction_bytes: 32,
            kernel_launch_overhead: 3.0e-6,
            warp_size: 32,
            max_concurrent_streams: 8,
            shared_mem_per_sm: 96 * 1024,
            vram_bytes: 16 * (1 << 30),
            pcie_bandwidth: 12.0e9,
            pcie_latency: 10.0e-6,
        }
    }

    /// A smaller, tensor-core-less GPU (the "low-end GPUs with less or even
    /// no tensor cores" scenario the paper mentions for TEW): modelled on a
    /// GTX-1080-class part.
    pub fn cuda_only_midrange() -> Self {
        Self {
            name: "CUDA-only midrange".to_string(),
            num_sms: 20,
            cuda_core_flops: 8.9e12,
            tensor_core_flops: 0.0,
            memory_bandwidth: 320.0e9,
            memory_transaction_bytes: 32,
            kernel_launch_overhead: 5.0e-6,
            warp_size: 32,
            max_concurrent_streams: 4,
            shared_mem_per_sm: 64 * 1024,
            vram_bytes: 8 * (1 << 30),
            // A consumer board on a PCIe 3.0 x8 link.
            pcie_bandwidth: 6.0e9,
            pcie_latency: 15.0e-6,
        }
    }

    /// An A100-class accelerator (next generation up from the paper's
    /// V100): 108 SMs, 19.5 TFLOPS FP32 CUDA cores, 312 TFLOPS FP16 tensor
    /// cores, ~1.56 TB/s HBM2e.  "Like" because the numbers are the public
    /// datasheet peaks, not a calibrated fit — the profile exists so
    /// heterogeneous serving replicas can mix device generations.
    pub fn a100_like() -> Self {
        Self {
            name: "A100-like".to_string(),
            num_sms: 108,
            cuda_core_flops: 19.5e12,
            tensor_core_flops: 312.0e12,
            memory_bandwidth: 1555.0e9,
            memory_transaction_bytes: 32,
            kernel_launch_overhead: 2.5e-6,
            warp_size: 32,
            max_concurrent_streams: 12,
            shared_mem_per_sm: 164 * 1024,
            vram_bytes: 40 * (1 << 30),
            // PCIe 4.0 x16.
            pcie_bandwidth: 24.0e9,
            pcie_latency: 8.0e-6,
        }
    }

    /// The canonical CLI slug of this device (`v100`, `a100`, `midrange`),
    /// or the lowercased name for custom profiles.  Round-trips through
    /// `"v100".parse::<GpuDevice>()` for the built-in profiles.
    pub fn slug(&self) -> String {
        match self.name.as_str() {
            "Tesla V100" => "v100".to_string(),
            "A100-like" => "a100".to_string(),
            "CUDA-only midrange" => "midrange".to_string(),
            other => other.to_lowercase().replace(' ', "-"),
        }
    }

    /// Peak throughput (FLOP/s) of the chosen execution unit.
    pub fn peak_flops(&self, core: CoreKind) -> f64 {
        match core {
            CoreKind::CudaCore => self.cuda_core_flops,
            CoreKind::TensorCore => self.tensor_core_flops,
        }
    }

    /// True when the device has usable tensor cores.
    pub fn has_tensor_cores(&self) -> bool {
        self.tensor_core_flops > 0.0
    }

    /// Number of DRAM transactions needed to move `bytes` bytes with fully
    /// coalesced accesses.
    pub fn coalesced_transactions(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.memory_transaction_bytes as u64)
    }
}

impl std::fmt::Display for GpuDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.slug())
    }
}

/// Error for parsing a [`GpuDevice`] from an unknown device name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceParseError(String);

impl std::fmt::Display for DeviceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown device {:?} (expected v100|a100|midrange)", self.0)
    }
}

impl std::error::Error for DeviceParseError {}

impl std::str::FromStr for GpuDevice {
    type Err = DeviceParseError;

    /// Parses the CLI device vocabulary: `v100`, `a100` (the
    /// [`GpuDevice::a100_like`] profile) and `midrange` (the
    /// tensor-core-less [`GpuDevice::cuda_only_midrange`] part).
    /// Surrounding whitespace and letter case are ignored (`" A100 "`
    /// parses); the error echoes the input as given (minus the
    /// whitespace), not the normalized form.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        match trimmed.to_lowercase().as_str() {
            "v100" => Ok(Self::v100()),
            "a100" | "a100-like" => Ok(Self::a100_like()),
            "midrange" | "cuda-only-midrange" => Ok(Self::cuda_only_midrange()),
            _ => Err(DeviceParseError(trimmed.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_paper_figures() {
        let d = GpuDevice::v100();
        assert_eq!(d.num_sms, 80);
        assert!((d.cuda_core_flops - 15.7e12).abs() < 1e9);
        assert!((d.tensor_core_flops - 125.0e12).abs() < 1e9);
        assert!(d.has_tensor_cores());
        // The paper quotes the tensor cores as ~8x faster than CUDA cores.
        let ratio = d.peak_flops(CoreKind::TensorCore) / d.peak_flops(CoreKind::CudaCore);
        assert!(ratio > 7.5 && ratio < 8.5, "ratio {ratio}");
    }

    #[test]
    fn cuda_only_device_has_no_tensor_cores() {
        let d = GpuDevice::cuda_only_midrange();
        assert!(!d.has_tensor_cores());
        assert_eq!(d.peak_flops(CoreKind::TensorCore), 0.0);
    }

    #[test]
    fn a100_outclasses_v100_everywhere() {
        let a100 = GpuDevice::a100_like();
        let v100 = GpuDevice::v100();
        assert!(a100.has_tensor_cores());
        assert!(a100.num_sms > v100.num_sms);
        assert!(a100.cuda_core_flops > v100.cuda_core_flops);
        assert!(a100.tensor_core_flops > v100.tensor_core_flops);
        assert!(a100.memory_bandwidth > v100.memory_bandwidth);
    }

    #[test]
    fn device_names_round_trip_through_display_and_from_str() {
        for device in [GpuDevice::v100(), GpuDevice::a100_like(), GpuDevice::cuda_only_midrange()] {
            let slug = device.to_string();
            let parsed: GpuDevice = slug.parse().expect("built-in slugs parse");
            assert_eq!(parsed, device, "{slug} must round-trip");
        }
        assert_eq!("v100".parse::<GpuDevice>().unwrap().to_string(), "v100");
        assert_eq!("A100".parse::<GpuDevice>().unwrap().to_string(), "a100");
        assert!("h100".parse::<GpuDevice>().is_err());
    }

    #[test]
    fn from_str_ignores_surrounding_whitespace_and_case() {
        assert_eq!(" A100 ".parse::<GpuDevice>().unwrap(), GpuDevice::a100_like());
        assert_eq!("\tV100\n".parse::<GpuDevice>().unwrap(), GpuDevice::v100());
        assert_eq!("  MidRange".parse::<GpuDevice>().unwrap(), GpuDevice::cuda_only_midrange());
        assert_eq!("Cuda-Only-Midrange".parse::<GpuDevice>().unwrap().slug(), "midrange");
    }

    #[test]
    fn unknown_device_error_message_is_pinned() {
        // The message must name both the rejected input (as the user typed
        // it, minus surrounding whitespace) and the accepted vocabulary, so
        // a CLI can print it verbatim.
        let err = "tpu".parse::<GpuDevice>().unwrap_err();
        assert_eq!(err.to_string(), "unknown device \"tpu\" (expected v100|a100|midrange)");
        let err = " H100 ".parse::<GpuDevice>().unwrap_err();
        assert_eq!(err.to_string(), "unknown device \"H100\" (expected v100|a100|midrange)");
        assert_eq!(
            "".parse::<GpuDevice>().unwrap_err().to_string(),
            "unknown device \"\" (expected v100|a100|midrange)"
        );
    }

    #[test]
    fn memory_system_profile_is_sane() {
        for d in [GpuDevice::v100(), GpuDevice::a100_like(), GpuDevice::cuda_only_midrange()] {
            assert!(d.vram_bytes > 0, "{}: VRAM capacity must be positive", d.name);
            assert!(d.pcie_bandwidth > 0.0 && d.pcie_bandwidth.is_finite(), "{}", d.name);
            assert!(d.pcie_latency >= 0.0 && d.pcie_latency.is_finite(), "{}", d.name);
            // PCIe is the slow path: well under DRAM bandwidth on every
            // profile, or paging would be free and the cache pointless.
            assert!(d.pcie_bandwidth < d.memory_bandwidth / 10.0, "{}", d.name);
        }
        let (v100, a100) = (GpuDevice::v100(), GpuDevice::a100_like());
        assert!(a100.vram_bytes > v100.vram_bytes);
        assert!(a100.pcie_bandwidth > v100.pcie_bandwidth);
    }

    #[test]
    fn precision_sizes() {
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Fp32.bytes(), 4);
    }

    #[test]
    fn coalesced_transaction_count_rounds_up() {
        let d = GpuDevice::v100();
        assert_eq!(d.coalesced_transactions(0), 0);
        assert_eq!(d.coalesced_transactions(1), 1);
        assert_eq!(d.coalesced_transactions(32), 1);
        assert_eq!(d.coalesced_transactions(33), 2);
        assert_eq!(d.coalesced_transactions(6400), 200);
    }
}
