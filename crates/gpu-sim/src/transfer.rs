//! Host↔device transfer pricing — the PCIe analogue of the kernel cost
//! model.
//!
//! The kernel model ([`crate::CostModel`]) prices what happens *after*
//! weights are resident in VRAM.  A memory manager paging weight tiles in
//! and out needs the other half: what moving N bytes over the host link
//! costs.  [`TransferCost`] prices a copy the same way the cost model
//! prices kernels — a fixed per-launch latency plus bytes over effective
//! bandwidth:
//!
//! ```text
//! time = pcie_latency + bytes / pcie_bandwidth
//! ```
//!
//! Zero-byte transfers are free (no copy is issued).  The returned seconds
//! are *simulated device-side* time, on the same clock as
//! [`crate::KernelProfile::time_s`], so a serving worker can add a batch's
//! cold-miss transfer time to its kernel dwell and scale both with one
//! knob.

use crate::counters::{KernelCounters, KernelProfile};
use crate::device::{CoreKind, GpuDevice};

/// Prices host↔device copies for one device's PCIe profile.
#[derive(Clone, Debug, PartialEq)]
pub struct TransferCost {
    bandwidth: f64,
    latency: f64,
}

impl TransferCost {
    /// A transfer model with explicit effective bandwidth (bytes/s) and
    /// per-copy latency (seconds).
    ///
    /// # Panics
    /// Panics if `bandwidth` is not positive and finite, or `latency` is
    /// negative or non-finite.
    pub fn new(bandwidth: f64, latency: f64) -> Self {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "transfer bandwidth must be positive and finite"
        );
        assert!(
            latency.is_finite() && latency >= 0.0,
            "transfer latency must be finite and non-negative"
        );
        Self { bandwidth, latency }
    }

    /// The transfer model of `device`'s PCIe profile.
    pub fn of(device: &GpuDevice) -> Self {
        Self::new(device.pcie_bandwidth, device.pcie_latency)
    }

    /// Effective copy bandwidth in bytes/s.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Fixed per-copy latency in seconds.
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Simulated seconds to move `bytes` bytes host→device (or back — the
    /// link is modelled symmetric).  Zero bytes cost nothing.
    pub fn seconds(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency + bytes as f64 / self.bandwidth
    }

    /// The copy as a [`KernelProfile`], so transfers can sit in the same
    /// accounting as kernels (a host→device copy reads `bytes` from the
    /// host and stores them to DRAM; the copy engine does no FLOPs).
    pub fn profile(&self, bytes: u64) -> KernelProfile {
        KernelProfile {
            name: "h2d_copy".to_string(),
            core: CoreKind::CudaCore,
            counters: KernelCounters {
                flops: 0,
                load_bytes: bytes,
                store_bytes: bytes,
                load_transactions: 0,
                store_transactions: 0,
            },
            time_s: self.seconds(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_are_free_and_size_monotone() {
        let t = TransferCost::of(&GpuDevice::v100());
        assert_eq!(t.seconds(0), 0.0);
        let one_kb = t.seconds(1024);
        let one_mb = t.seconds(1 << 20);
        let one_gb = t.seconds(1 << 30);
        assert!(one_kb > 0.0);
        assert!(one_mb > one_kb);
        assert!(one_gb > one_mb);
        // Large copies are bandwidth-bound: a GiB at ~12 GB/s is ~90ms.
        assert!((0.05..0.2).contains(&one_gb), "1 GiB over PCIe 3.0 took {one_gb}s");
    }

    #[test]
    fn small_copies_are_latency_bound() {
        let t = TransferCost::new(12.0e9, 10.0e-6);
        // 1 KiB moves in ~85ns of bandwidth time; the 10µs latency dominates.
        let s = t.seconds(1024);
        assert!(s > 10.0e-6 && s < 11.0e-6, "{s}");
    }

    #[test]
    fn faster_link_prices_the_same_copy_cheaper() {
        let v100 = TransferCost::of(&GpuDevice::v100());
        let a100 = TransferCost::of(&GpuDevice::a100_like());
        let midrange = TransferCost::of(&GpuDevice::cuda_only_midrange());
        let bytes = 64 << 20;
        assert!(a100.seconds(bytes) < v100.seconds(bytes));
        assert!(midrange.seconds(bytes) > v100.seconds(bytes));
    }

    #[test]
    fn profile_carries_bytes_and_time() {
        let t = TransferCost::of(&GpuDevice::v100());
        let p = t.profile(1 << 20);
        assert_eq!(p.name, "h2d_copy");
        assert_eq!(p.counters.flops, 0);
        assert_eq!(p.counters.load_bytes, 1 << 20);
        assert_eq!(p.counters.store_bytes, 1 << 20);
        assert_eq!(p.time_s, t.seconds(1 << 20));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = TransferCost::new(0.0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "latency must be finite")]
    fn negative_latency_rejected() {
        let _ = TransferCost::new(1e9, -1.0);
    }
}
