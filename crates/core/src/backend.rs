//! Open, trait-based kernel backends plus the per-layer auto-planner.
//!
//! The paper's central observation is that *how* a pruned weight matrix is
//! executed (dense, tile-wise, CSR, block-sparse) decides whether sparsity
//! becomes a latency win.  This module makes that choice an open extension
//! point instead of a closed enum:
//!
//! * [`KernelBackend`] — the trait one executable layer implements: batched
//!   forward pass, a [`WeightExecution`] so the GPU cost model can price it,
//!   and its resident memory footprint.
//! * [`DenseKernel`] / [`TileWiseKernel`] / [`CsrKernel`] / [`BsrKernel`] —
//!   the four built-in kernel families (cuBLAS, the paper's TW kernel,
//!   cuSparse, BlockSparse).
//! * [`KernelRegistry`] — name → constructor table; registering a new family
//!   makes it servable end-to-end with no changes to the session, the
//!   serving runtime or the benchmarks.
//! * [`AutoPlanner`] — prices every registered family per layer on the
//!   `tw-gpu-sim` cost model and picks the cheapest, so one session can mix
//!   kernel families across layers.
//! * [`Backend`] — the user-facing selection (`FromStr`/`Display`), i.e.
//!   what a `--backend dense|tw|csr|bsr|auto` flag parses into.
//!
//! # Adding a new kernel family
//!
//! Implement [`KernelBackend`], register a constructor, and name it in a
//! session plan:
//!
//! ```
//! use tilewise::planner::WeightExecution;
//! use tilewise::{AutoPlanner, InferenceSession, KernelBackend, KernelRegistry};
//! use tw_tensor::{gemm, Matrix};
//!
//! /// A custom kernel family: plain dense GEMM under a new name.
//! #[derive(Debug)]
//! struct MyKernel {
//!     weights: Matrix,
//! }
//!
//! impl KernelBackend for MyKernel {
//!     fn name(&self) -> &'static str {
//!         "my-kernel"
//!     }
//!     fn forward_batch(&self, inputs: &Matrix) -> Matrix {
//!         gemm(inputs, &self.weights)
//!     }
//!     fn execution(&self) -> WeightExecution {
//!         WeightExecution::Dense
//!     }
//!     fn resident_bytes(&self) -> usize {
//!         self.weights.len() * 4
//!     }
//! }
//!
//! let mut registry = KernelRegistry::standard();
//! registry.register("my-kernel", |tile| Box::new(MyKernel { weights: tile.to_dense() }));
//!
//! let tiles = InferenceSession::synthetic_tiles(&[24, 32, 16], 0.5, 8, 7);
//! let session = InferenceSession::with_named_plan(
//!     tiles,
//!     &["my-kernel", "tile-wise"],
//!     &registry,
//!     &AutoPlanner::default(),
//! );
//! assert_eq!(session.layer_backends(), vec!["my-kernel", "tile-wise"]);
//! ```

use crate::planner::{ExecutionConfig, ExecutionPlanner, WeightExecution};
use crate::tile_matrix::TileWiseMatrix;
use std::fmt;
use std::str::FromStr;
use tw_gpu_sim::CoreKind;
use tw_sparse::{spmm, BsrMatrix, CsrMatrix};
use tw_tensor::{gemm, Matrix};

/// Which kernel family serves a layer — the *selection*, not the executable
/// form (that is a [`KernelBackend`]).  `Auto` delegates the choice to the
/// [`AutoPlanner`] per layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Masked dense GEMM (the unpruned/cuBLAS baseline semantics).
    Dense,
    /// The paper's compacted tile-wise kernels.
    TileWise,
    /// cuSparse-style CSR SpMM baseline.
    Csr,
    /// BlockSparse-style BSR SpMM baseline.
    Bsr,
    /// Pick the cost-model-cheapest registered family per layer.
    Auto,
}

impl Backend {
    /// The concrete kernel families (everything except `Auto`), in registry
    /// order.
    pub const FAMILIES: [Backend; 4] =
        [Backend::Dense, Backend::TileWise, Backend::Csr, Backend::Bsr];

    /// Every selectable value, including `Auto` — what a CLI sweep iterates.
    pub const ALL: [Backend; 5] =
        [Backend::Dense, Backend::TileWise, Backend::Csr, Backend::Bsr, Backend::Auto];

    /// The canonical kernel family name; doubles as the registry key.
    pub fn as_str(&self) -> &'static str {
        match self {
            Backend::Dense => "dense",
            Backend::TileWise => "tile-wise",
            Backend::Csr => "csr",
            Backend::Bsr => "bsr",
            Backend::Auto => "auto",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from parsing a backend name; the message lists the accepted values
/// so a CLI can print it verbatim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendParseError {
    input: String,
}

impl fmt::Display for BackendParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend {:?} (expected one of: dense, tw, tile-wise, csr, bsr, auto)",
            self.input
        )
    }
}

impl std::error::Error for BackendParseError {}

impl FromStr for Backend {
    type Err = BackendParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "dense" => Ok(Backend::Dense),
            "tw" | "tile-wise" | "tilewise" => Ok(Backend::TileWise),
            "csr" => Ok(Backend::Csr),
            "bsr" | "block-sparse" | "blocksparse" => Ok(Backend::Bsr),
            "auto" => Ok(Backend::Auto),
            _ => Err(BackendParseError { input: s.to_string() }),
        }
    }
}

/// One executable layer of an inference session: a kernel family bound to
/// one weight matrix.
///
/// Implementations are built from the layer's [`TileWiseMatrix`] (the
/// post-pruning source of truth) by a constructor in the [`KernelRegistry`];
/// all families must be functionally equivalent to the masked dense weights
/// within kernel tolerance — the property `tests/backend_plans.rs` pins.
pub trait KernelBackend: Send + Sync + fmt::Debug {
    /// The kernel family name (the same string [`Backend`] parses from, for
    /// built-in families).
    fn name(&self) -> &'static str;

    /// Batched layer forward pass: `C (batch x n) = A (batch x k) * W`.
    fn forward_batch(&self, inputs: &Matrix) -> Matrix;

    /// How the GPU execution planner prices this layer.
    fn execution(&self) -> WeightExecution;

    /// Bytes this executable form keeps resident per serving replica.
    fn resident_bytes(&self) -> usize;
}

/// Masked dense GEMM over the reconstructed (zero-filled) weights.
#[derive(Clone, Debug)]
pub struct DenseKernel {
    weights: Matrix,
}

impl DenseKernel {
    /// Materializes the masked dense weights.
    pub fn from_tile(tile: &TileWiseMatrix) -> Self {
        Self { weights: tile.to_dense() }
    }
}

impl KernelBackend for DenseKernel {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward_batch(&self, inputs: &Matrix) -> Matrix {
        gemm(inputs, &self.weights)
    }

    fn execution(&self) -> WeightExecution {
        WeightExecution::Dense
    }

    fn resident_bytes(&self) -> usize {
        self.weights.len() * 4
    }
}

/// The paper's compacted tile-wise kernel, executed straight from the
/// [`TileWiseMatrix`] representation.
#[derive(Clone, Debug)]
pub struct TileWiseKernel {
    tile: TileWiseMatrix,
}

impl TileWiseKernel {
    /// Adopts the compacted tile-wise representation as-is.
    pub fn from_tile(tile: &TileWiseMatrix) -> Self {
        Self { tile: tile.clone() }
    }
}

impl KernelBackend for TileWiseKernel {
    fn name(&self) -> &'static str {
        "tile-wise"
    }

    fn forward_batch(&self, inputs: &Matrix) -> Matrix {
        self.tile.matmul(inputs)
    }

    fn execution(&self) -> WeightExecution {
        WeightExecution::TileWise { tiles: self.tile.tile_shapes() }
    }

    fn resident_bytes(&self) -> usize {
        self.tile.storage_bytes(4)
    }
}

/// cuSparse-style CSR SpMM over a CSR copy of the masked weights.
#[derive(Clone, Debug)]
pub struct CsrKernel {
    csr: CsrMatrix,
    sparsity: f64,
}

impl CsrKernel {
    /// Converts the masked weights to CSR.
    pub fn from_tile(tile: &TileWiseMatrix) -> Self {
        Self { csr: CsrMatrix::from_dense(&tile.to_dense()), sparsity: tile.sparsity() }
    }
}

impl KernelBackend for CsrKernel {
    fn name(&self) -> &'static str {
        "csr"
    }

    fn forward_batch(&self, inputs: &Matrix) -> Matrix {
        spmm::dense_csr_matmul(inputs, &self.csr)
    }

    fn execution(&self) -> WeightExecution {
        WeightExecution::Csr { sparsity: self.sparsity }
    }

    fn resident_bytes(&self) -> usize {
        self.csr.storage_bytes(4)
    }
}

/// BlockSparse-style BSR SpMM over a block-sparse copy of the masked
/// weights, batch-parallel through the rayon shim.
#[derive(Clone, Debug)]
pub struct BsrKernel {
    bsr: BsrMatrix,
}

impl BsrKernel {
    /// Largest block edge the serving backend uses; the paper notes 32x32 is
    /// the smallest block with reasonable tensor-core utilisation, so bigger
    /// blocks buy nothing while pruning fewer of them.
    pub const MAX_BLOCK: usize = 32;

    /// Converts the masked weights to BSR, with the block edge following the
    /// pruning granularity (capped at [`Self::MAX_BLOCK`]).
    pub fn from_tile(tile: &TileWiseMatrix) -> Self {
        Self::with_block_size(tile, tile.granularity().clamp(1, Self::MAX_BLOCK))
    }

    /// Converts the masked weights to BSR with an explicit block edge.
    ///
    /// # Panics
    /// Panics if `block_size` is zero (delegated from [`BsrMatrix`]).
    pub fn with_block_size(tile: &TileWiseMatrix, block_size: usize) -> Self {
        Self { bsr: BsrMatrix::from_dense(&tile.to_dense(), block_size) }
    }
}

impl KernelBackend for BsrKernel {
    fn name(&self) -> &'static str {
        "bsr"
    }

    fn forward_batch(&self, inputs: &Matrix) -> Matrix {
        spmm::dense_bsr_matmul_par(inputs, &self.bsr)
    }

    fn execution(&self) -> WeightExecution {
        WeightExecution::Bsr {
            block_size: self.bsr.block_size(),
            block_sparsity: self.bsr.block_sparsity(),
        }
    }

    fn resident_bytes(&self) -> usize {
        self.bsr.storage_bytes(4)
    }
}

/// Constructor for one kernel family: builds the executable form of a layer
/// from its pruned tile-wise weights.  A shared closure (not a bare `fn`)
/// so builders can capture configuration — a block size, a calibration
/// table, an external device handle.
pub type KernelBuilder =
    std::sync::Arc<dyn Fn(&TileWiseMatrix) -> Box<dyn KernelBackend> + Send + Sync>;

/// Name → constructor table of the kernel families a session can serve
/// with.  [`KernelRegistry::standard`] holds the four built-ins; registering
/// another name makes a fifth family selectable everywhere (sessions, the
/// serving runtime, the auto-planner, the benchmarks) without touching any
/// of them.
#[derive(Clone)]
pub struct KernelRegistry {
    entries: Vec<(&'static str, KernelBuilder)>,
}

impl KernelRegistry {
    /// A registry with no families (useful for restricting the auto-planner
    /// to a subset).
    pub fn empty() -> Self {
        Self { entries: Vec::new() }
    }

    /// The four built-in families: dense, tile-wise, csr, bsr.
    pub fn standard() -> Self {
        let mut registry = Self::empty();
        registry.register("dense", |tile| Box::new(DenseKernel::from_tile(tile)));
        registry.register("tile-wise", |tile| Box::new(TileWiseKernel::from_tile(tile)));
        registry.register("csr", |tile| Box::new(CsrKernel::from_tile(tile)));
        registry.register("bsr", |tile| Box::new(BsrKernel::from_tile(tile)));
        registry
    }

    /// Registers (or replaces) a kernel family under `name`.  The builder
    /// may be a capturing closure (e.g. parameterizing a block size).
    pub fn register(
        &mut self,
        name: &'static str,
        build: impl Fn(&TileWiseMatrix) -> Box<dyn KernelBackend> + Send + Sync + 'static,
    ) {
        let build: KernelBuilder = std::sync::Arc::new(build);
        if let Some(entry) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            entry.1 = build;
        } else {
            self.entries.push((name, build));
        }
    }

    /// Registered family names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no family is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds the executable form of one layer with the named family, or
    /// `None` if the name is not registered.
    pub fn build(&self, name: &str, tile: &TileWiseMatrix) -> Option<Box<dyn KernelBackend>> {
        self.entries.iter().find(|(n, _)| *n == name).map(|(_, build)| build(tile))
    }

    /// Iterates `(name, constructor)` pairs — what the auto-planner prices.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &KernelBuilder)> + '_ {
        self.entries.iter().map(|(n, b)| (*n, b))
    }
}

impl fmt::Debug for KernelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelRegistry").field("families", &self.names()).finish()
    }
}

/// Per-layer cost-model planning: price every registered kernel family on
/// the `tw-gpu-sim` cost model and pick the cheapest.
///
/// The planner is greedy per layer, which is exact here: the cost model
/// prices layers independently, so the per-layer argmin is the whole-model
/// argmin (up to boundary transposes, which [`ExecutionPlanner::plan_layer`]
/// charges to every tile-wise layer, making the choice *conservative*
/// about TW rather than optimistic).
#[derive(Clone, Debug)]
pub struct AutoPlanner {
    planner: ExecutionPlanner,
    config: ExecutionConfig,
    design_batch: usize,
}

impl AutoPlanner {
    /// Batch size the default planner optimizes for — matches the serving
    /// runtime's default `max_batch_size`.
    pub const DEFAULT_DESIGN_BATCH: usize = 8;

    /// A planner over the given cost model and execution configuration,
    /// optimizing for batches of `design_batch` requests.
    ///
    /// # Panics
    /// Panics if `design_batch` is zero.
    pub fn new(planner: ExecutionPlanner, config: ExecutionConfig, design_batch: usize) -> Self {
        assert!(design_batch > 0, "design batch size must be positive");
        Self { planner, config, design_batch }
    }

    /// The default V100 planner optimizing for the given batch size.
    pub fn v100(design_batch: usize) -> Self {
        Self::new(
            ExecutionPlanner::v100(),
            ExecutionConfig::optimized(CoreKind::TensorCore),
            design_batch,
        )
    }

    /// The batch size layer costs are evaluated at.
    pub fn design_batch(&self) -> usize {
        self.design_batch
    }

    /// Modelled seconds for one layer of shape `k x n` executed as `exec` at
    /// the design batch size.
    pub fn price(&self, k: usize, n: usize, exec: &WeightExecution) -> f64 {
        self.planner.plan_layer(self.design_batch, k, n, exec, &self.config).total_time()
    }

    /// Builds every registered family for `tile`, prices each, and returns
    /// the cheapest kernel.
    ///
    /// Candidates are fully materialized before pricing because a family's
    /// [`WeightExecution`] comes from its built kernel — the only way an
    /// *open* registry can price families it knows nothing about.  The cost
    /// is paid once per layer at session construction, never on the serving
    /// path; callers planning very large models repeatedly should cache
    /// sessions rather than re-plan.
    ///
    /// # Panics
    /// Panics if the registry is empty.
    pub fn choose(
        &self,
        registry: &KernelRegistry,
        tile: &TileWiseMatrix,
    ) -> Box<dyn KernelBackend> {
        assert!(!registry.is_empty(), "auto-planning needs at least one registered backend");
        let mut best: Option<(f64, Box<dyn KernelBackend>)> = None;
        for (_, build) in registry.iter() {
            let kernel = build(tile);
            let cost = self.price(tile.k(), tile.n(), &kernel.execution());
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, kernel));
            }
        }
        best.expect("non-empty registry").1
    }
}

impl Default for AutoPlanner {
    fn default() -> Self {
        Self::v100(Self::DEFAULT_DESIGN_BATCH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::InferenceSession;
    use tw_tensor::DEFAULT_TOL;

    fn tile(dims: [usize; 2], sparsity: f64, g: usize, seed: u64) -> TileWiseMatrix {
        InferenceSession::synthetic_tiles(&[dims[0], dims[1]], sparsity, g, seed).remove(0)
    }

    #[test]
    fn display_and_fromstr_round_trip() {
        for backend in Backend::ALL {
            assert_eq!(backend.to_string().parse::<Backend>().unwrap(), backend);
        }
        assert_eq!("tw".parse::<Backend>().unwrap(), Backend::TileWise);
        assert_eq!(" BSR ".parse::<Backend>().unwrap(), Backend::Bsr);
    }

    #[test]
    fn parse_error_names_the_options() {
        let err = "cuda".parse::<Backend>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("\"cuda\""), "{msg}");
        for option in ["dense", "tw", "csr", "bsr", "auto"] {
            assert!(msg.contains(option), "missing {option} in {msg}");
        }
    }

    #[test]
    fn standard_registry_builds_all_families() {
        let registry = KernelRegistry::standard();
        assert_eq!(registry.names(), vec!["dense", "tile-wise", "csr", "bsr"]);
        let t = tile([48, 64], 0.6, 16, 3);
        let reference = DenseKernel::from_tile(&t);
        let inputs = Matrix::random_uniform(5, 48, 1.0, 9);
        let expected = reference.forward_batch(&inputs);
        for backend in Backend::FAMILIES {
            let kernel = registry.build(backend.as_str(), &t).expect("registered");
            assert_eq!(kernel.name(), backend.as_str());
            assert!(
                kernel.forward_batch(&inputs).approx_eq(&expected, DEFAULT_TOL),
                "{backend} disagrees with dense"
            );
            assert!(kernel.resident_bytes() > 0);
        }
        assert!(registry.build("auto", &t).is_none(), "auto is a selection, not a family");
    }

    #[test]
    fn compact_forms_use_less_memory_than_dense_at_high_sparsity() {
        let t = tile([128, 128], 0.9, 32, 11);
        let dense = DenseKernel::from_tile(&t).resident_bytes();
        assert!(TileWiseKernel::from_tile(&t).resident_bytes() < dense);
        assert!(CsrKernel::from_tile(&t).resident_bytes() < dense);
    }

    #[test]
    fn register_replaces_and_extends() {
        let mut registry = KernelRegistry::standard();
        registry.register("dense", |tile| Box::new(TileWiseKernel::from_tile(tile)));
        assert_eq!(registry.len(), 4, "replacement must not duplicate");
        registry.register("extra", |tile| Box::new(DenseKernel::from_tile(tile)));
        assert_eq!(registry.len(), 5);
        let t = tile([16, 24], 0.5, 8, 5);
        assert_eq!(registry.build("dense", &t).unwrap().name(), "tile-wise");
        assert_eq!(registry.build("extra", &t).unwrap().name(), "dense");
    }

    #[test]
    fn builders_can_capture_configuration() {
        // The registry takes closures, so a family variant can carry runtime
        // parameters — here a caller-chosen BSR block size.
        let block_size = 2usize;
        let mut registry = KernelRegistry::empty();
        registry.register("bsr-custom", move |tile| {
            Box::new(BsrKernel::with_block_size(tile, block_size))
        });
        let t = tile([16, 24], 0.5, 8, 6);
        let kernel = registry.build("bsr-custom", &t).unwrap();
        match kernel.execution() {
            WeightExecution::Bsr { block_size: bs, .. } => assert_eq!(bs, 2),
            other => panic!("expected a BSR execution, got {other:?}"),
        }
    }

    #[test]
    fn auto_planner_never_picks_worse_than_dense() {
        let registry = KernelRegistry::standard();
        let auto = AutoPlanner::default();
        for (dims, sparsity, g, seed) in [
            ([192usize, 192usize], 0.75, 32, 1),
            ([96, 160], 0.5, 16, 2),
            ([256, 128], 0.9, 64, 3),
            ([64, 64], 0.1, 8, 4),
        ] {
            let t = tile(dims, sparsity, g, seed);
            let kernel = auto.choose(&registry, &t);
            let chosen = auto.price(t.k(), t.n(), &kernel.execution());
            let dense = auto.price(t.k(), t.n(), &WeightExecution::Dense);
            assert!(
                chosen <= dense + 1e-12,
                "auto chose {} at {:.3e}s, pricier than dense {:.3e}s ({dims:?} s={sparsity})",
                kernel.name(),
                chosen,
                dense,
            );
        }
    }

    #[test]
    fn auto_planner_prefers_tile_wise_at_paper_scale() {
        // Fig. 9b's regime: a BERT-sized 768x768 weight at 75% TW sparsity
        // with G = 128 and a large token batch.  TW beats dense here while
        // CSR and BSR lose badly, so auto must land on tile-wise.  (At tiny
        // shapes the same model rightly flips to CSR/dense: launch overhead
        // and the TW boundary transposes dominate small GEMMs.)
        let t = tile([768, 768], 0.75, 128, 21);
        let kernel = AutoPlanner::v100(256).choose(&KernelRegistry::standard(), &t);
        assert_eq!(kernel.name(), "tile-wise");
    }

    #[test]
    fn auto_planner_respects_restricted_registries() {
        let mut registry = KernelRegistry::empty();
        registry.register("csr", |tile| Box::new(CsrKernel::from_tile(tile)));
        let t = tile([64, 64], 0.5, 16, 8);
        let kernel = AutoPlanner::default().choose(&registry, &t);
        assert_eq!(kernel.name(), "csr");
    }

    #[test]
    #[should_panic(expected = "at least one registered backend")]
    fn auto_planning_on_empty_registry_panics() {
        let t = tile([16, 16], 0.5, 8, 1);
        let _ = AutoPlanner::default().choose(&KernelRegistry::empty(), &t);
    }

    #[test]
    #[should_panic(expected = "design batch size must be positive")]
    fn zero_design_batch_rejected() {
        let _ = AutoPlanner::v100(0);
    }
}
