//! Inference sessions: the executable forward pass a serving runtime drives.
//!
//! A [`InferenceSession`] packages a chain of pruned weight matrices into a
//! ready-to-serve model: it validates that the layer shapes compose, keeps
//! every execution form a worker might use (compacted tile-wise, CSR and
//! masked dense), runs real batched CPU inference, and prices the same
//! batch on the `tw-gpu-sim` cost model so a serving tier can overlap
//! simulated device time with CPU execution.
//!
//! All backends are functionally equivalent: batching requests as rows of
//! one activation matrix commutes with the per-layer `matmul + ReLU`
//! pipeline, so a batched sparse forward pass reproduces per-request dense
//! results within kernel tolerance — the property `tests/` pins down.

use crate::planner::{ExecutionConfig, ExecutionPlanner, WeightExecution};
use crate::pruner::PrunedModel;
use crate::tile_matrix::TileWiseMatrix;
use tw_gpu_sim::{CoreKind, RunCounters, StreamSim};
use tw_models::{ModelKind, PrunableGemm, Workload};
use tw_sparse::{spmm, CsrMatrix};
use tw_tensor::{gemm, Matrix};

/// Which kernel family executes the pruned weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Masked dense GEMM (the unpruned/cuBLAS baseline semantics).
    Dense,
    /// The paper's compacted tile-wise kernels.
    TileWise,
    /// cuSparse-style CSR SpMM baseline.
    Csr,
}

impl Backend {
    /// Human-readable kernel family name.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Dense => "dense",
            Backend::TileWise => "tile-wise",
            Backend::Csr => "csr",
        }
    }
}

/// The backend-specific executable form of one layer.  Only the selected
/// backend's representation is materialized: a session is long-lived and
/// shared by every serving worker, so holding all three forms would triple
/// resident model memory for nothing.
#[derive(Clone, Debug)]
enum LayerExec {
    /// Masked dense weights.
    Dense(Matrix),
    /// Executed straight from the tile-wise representation.
    TileWise,
    /// CSR copy of the masked weights.
    Csr(CsrMatrix),
}

/// One layer: the tile-wise source of truth plus its execution form.
#[derive(Clone, Debug)]
struct SessionLayer {
    tile: TileWiseMatrix,
    exec: LayerExec,
}

/// An executable pruned model plus the planner that prices its batches.
#[derive(Clone, Debug)]
pub struct InferenceSession {
    layers: Vec<SessionLayer>,
    backend: Backend,
    planner: ExecutionPlanner,
    exec_config: ExecutionConfig,
}

impl InferenceSession {
    /// Builds a session from executable tile-wise weights.
    ///
    /// # Panics
    /// Panics if the chain is empty or consecutive layer shapes do not
    /// compose (`layer[i].n() != layer[i + 1].k()`).
    pub fn new(tile_matrices: Vec<TileWiseMatrix>, backend: Backend) -> Self {
        assert!(!tile_matrices.is_empty(), "a session needs at least one layer");
        for (i, pair) in tile_matrices.windows(2).enumerate() {
            assert_eq!(
                pair[0].n(),
                pair[1].k(),
                "layer {} output dim must feed layer {} input dim",
                i,
                i + 1
            );
        }
        let layers = tile_matrices
            .into_iter()
            .map(|tile| {
                let exec = match backend {
                    Backend::Dense => LayerExec::Dense(tile.to_dense()),
                    Backend::TileWise => LayerExec::TileWise,
                    Backend::Csr => LayerExec::Csr(CsrMatrix::from_dense(&tile.to_dense())),
                };
                SessionLayer { tile, exec }
            })
            .collect();
        Self {
            layers,
            backend,
            planner: ExecutionPlanner::v100(),
            exec_config: ExecutionConfig::optimized(CoreKind::TensorCore),
        }
    }

    /// Builds a session from a [`PrunedModel`] produced by the high-level
    /// pruning pipeline.
    pub fn from_pruned(pruned: &PrunedModel, backend: Backend) -> Self {
        Self::new(pruned.tile_matrices.clone(), backend)
    }

    /// A self-contained session over a freshly pruned chain of random
    /// square-ish layers — the synthetic model the serving benchmarks and
    /// examples drive.  `dims` lists the activation dimensions, so `dims =
    /// [64, 96, 32]` builds two weight matrices (64x96 and 96x32).
    pub fn synthetic_chain(
        dims: &[usize],
        sparsity: f64,
        granularity: usize,
        seed: u64,
        backend: Backend,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        use tw_pruning::{tw, ImportanceScores, SparsityTarget, TileWiseConfig};
        let tiles = dims
            .windows(2)
            .enumerate()
            .map(|(i, pair)| {
                let weights = Matrix::random_normal(pair[0], pair[1], 1.0, seed + i as u64);
                let scores = ImportanceScores::magnitude(&weights);
                let mask = tw::prune(
                    &scores,
                    &TileWiseConfig::with_granularity(granularity),
                    SparsityTarget::new(sparsity),
                );
                TileWiseMatrix::from_mask(&weights, &mask)
            })
            .collect();
        Self::new(tiles, backend)
    }

    /// The kernel family this session serves with.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Number of weight layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Expected per-request input length.
    pub fn input_dim(&self) -> usize {
        self.layers[0].tile.k()
    }

    /// Per-request output length.
    pub fn output_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].tile.n()
    }

    /// Overall element sparsity across the chain.
    pub fn sparsity(&self) -> f64 {
        let total: usize = self.layers.iter().map(|l| l.tile.k() * l.tile.n()).sum();
        let kept: usize = self.layers.iter().map(|l| l.tile.kept_elements()).sum();
        if total == 0 {
            return 0.0;
        }
        1.0 - kept as f64 / total as f64
    }

    /// One batched forward pass: each row of `inputs` is a request, each row
    /// of the result is its output.  Hidden layers apply ReLU; the final
    /// layer is linear.
    ///
    /// # Panics
    /// Panics if `inputs.cols() != self.input_dim()`.
    pub fn forward_batch(&self, inputs: &Matrix) -> Matrix {
        assert_eq!(
            inputs.cols(),
            self.input_dim(),
            "request payload length must match the model input dim"
        );
        let last = self.layers.len() - 1;
        let mut x = inputs.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            x = match &layer.exec {
                LayerExec::Dense(dense) => gemm(&x, dense),
                LayerExec::TileWise => layer.tile.matmul(&x),
                LayerExec::Csr(csr) => spmm::dense_csr_matmul(&x, csr),
            };
            if i != last {
                relu_in_place(&mut x);
            }
        }
        x
    }

    /// Convenience single-request forward pass.
    pub fn forward_one(&self, input: &[f32]) -> Vec<f32> {
        let x = Matrix::from_rows(&[input]);
        self.forward_batch(&x).into_vec()
    }

    /// The GEMM workload one batch of `batch_size` requests induces, in the
    /// shape the execution planner prices.
    pub fn workload_for_batch(&self, batch_size: usize) -> Workload {
        let prunable = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, layer)| PrunableGemm {
                name: format!("serve.layer{i}"),
                m: batch_size,
                k: layer.tile.k(),
                n: layer.tile.n(),
            })
            .collect();
        Workload {
            kind: ModelKind::Mlp,
            name: format!("serving chain (batch {batch_size})"),
            prunable,
            fixed_gemms: Vec::new(),
            aux_ops: Vec::new(),
        }
    }

    /// Prices one batch on the GPU cost model, with the per-layer execution
    /// form matching this session's backend.
    pub fn plan_batch(&self, batch_size: usize) -> RunCounters {
        let workload = self.workload_for_batch(batch_size);
        let execs: Vec<WeightExecution> = self
            .layers
            .iter()
            .map(|layer| match self.backend {
                Backend::Dense => WeightExecution::Dense,
                Backend::TileWise => WeightExecution::TileWise { tiles: layer.tile.tile_shapes() },
                Backend::Csr => WeightExecution::Csr { sparsity: layer.tile.sparsity() },
            })
            .collect();
        self.planner.plan_model(&workload, &execs, &self.exec_config)
    }

    /// Simulated device seconds for one batch of `batch_size` requests — the
    /// number a serving worker dwells on to model GPU occupancy.
    pub fn simulated_batch_seconds(&self, batch_size: usize) -> f64 {
        if batch_size == 0 {
            return 0.0;
        }
        self.plan_batch(batch_size).total_time()
    }

    /// The modelled win of dynamic batching itself: device time of
    /// `batch_size` *independent* single-request forward passes overlapped
    /// across `streams` CUDA streams, divided by the device time of the same
    /// requests fused into one batched kernel sequence.
    ///
    /// # Panics
    /// Panics if `batch_size` is zero (delegated from the stream scheduler)
    /// or `streams` is zero.
    pub fn batching_speedup(&self, batch_size: usize, streams: usize) -> f64 {
        let single = self.plan_batch(1).total_time();
        let unbatched = StreamSim::new(streams).schedule_uniform(single, batch_size).makespan();
        unbatched / self.simulated_batch_seconds(batch_size)
    }
}

fn relu_in_place(x: &mut Matrix) {
    for v in x.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_tensor::DEFAULT_TOL;

    fn session(backend: Backend) -> InferenceSession {
        InferenceSession::synthetic_chain(&[48, 64, 32], 0.6, 16, 42, backend)
    }

    #[test]
    fn dims_and_sparsity_are_consistent() {
        let s = session(Backend::TileWise);
        assert_eq!(s.num_layers(), 2);
        assert_eq!(s.input_dim(), 48);
        assert_eq!(s.output_dim(), 32);
        assert!((s.sparsity() - 0.6).abs() < 0.05, "sparsity {}", s.sparsity());
    }

    #[test]
    fn backends_agree_on_batched_inference() {
        let dense = session(Backend::Dense);
        let tile = session(Backend::TileWise);
        let csr = session(Backend::Csr);
        let inputs = Matrix::random_uniform(9, 48, 1.0, 7);
        let reference = dense.forward_batch(&inputs);
        assert!(tile.forward_batch(&inputs).approx_eq(&reference, DEFAULT_TOL));
        assert!(csr.forward_batch(&inputs).approx_eq(&reference, DEFAULT_TOL));
    }

    #[test]
    fn batched_rows_match_single_requests() {
        let s = session(Backend::TileWise);
        let inputs = Matrix::random_uniform(5, 48, 1.0, 9);
        let batched = s.forward_batch(&inputs);
        for r in 0..inputs.rows() {
            let single = s.forward_one(inputs.row(r));
            let batched_row = batched.row(r);
            for (a, b) in single.iter().zip(batched_row) {
                assert!(tw_tensor::approx_eq(*a, *b, DEFAULT_TOL), "row {r}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn from_pruned_wires_the_pipeline_output() {
        use crate::pruner::{TileWisePruner, TileWisePrunerConfig};
        use tw_pruning::LayerSet;
        let mut layers = LayerSet::new(
            vec!["a".into(), "b".into()],
            vec![Matrix::random_normal(32, 48, 1.0, 1), Matrix::random_normal(48, 16, 1.0, 2)],
        );
        let pruner = TileWisePruner::new(TileWisePrunerConfig {
            granularity: 16,
            target_sparsity: 0.5,
            delta: 0.0,
            stages: 1,
            importance: tw_pruning::ImportanceMethod::Magnitude,
            apriori: None,
            fine_tune_recovery: 0.0,
        });
        let pruned = pruner.prune(&mut layers);
        let session = InferenceSession::from_pruned(&pruned, Backend::TileWise);
        assert_eq!(session.input_dim(), 32);
        assert_eq!(session.output_dim(), 16);
        let out = session.forward_one(&[0.5; 32]);
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn plan_batch_prices_every_layer() {
        let s = session(Backend::TileWise);
        let run = s.plan_batch(8);
        // Boundary transposes + one TW GEMM per layer.
        assert!(run.kernel_count() >= s.num_layers());
        assert!(run.total_time() > 0.0);
    }

    #[test]
    fn batching_beats_streamed_singles() {
        // Fusing 16 requests into one batched kernel sequence must beat 16
        // independent single-request passes, even when the singles overlap
        // across the V100's streams — kernel-launch overhead and wave
        // quantization dominate tiny GEMMs.
        let s = session(Backend::TileWise);
        let speedup = s.batching_speedup(16, 4);
        assert!(speedup > 1.0, "batching speedup {speedup}");
    }

    #[test]
    fn simulated_time_grows_with_batch_size() {
        let s = session(Backend::TileWise);
        let t1 = s.simulated_batch_seconds(1);
        let t64 = s.simulated_batch_seconds(64);
        assert!(t64 > t1, "batch 64 ({t64}) should cost more than batch 1 ({t1})");
        assert_eq!(s.simulated_batch_seconds(0), 0.0);
        // Batching amortizes: 64 requests in one batch beat 64 singles.
        assert!(t64 < 64.0 * t1);
    }

    #[test]
    #[should_panic(expected = "must feed")]
    fn mismatched_chain_rejected() {
        let a = InferenceSession::synthetic_chain(&[16, 24], 0.5, 8, 1, Backend::Dense);
        let b = InferenceSession::synthetic_chain(&[32, 16], 0.5, 8, 2, Backend::Dense);
        let _ = InferenceSession::new(
            vec![a.layers[0].tile.clone(), b.layers[0].tile.clone()],
            Backend::Dense,
        );
    }

    #[test]
    #[should_panic(expected = "payload length")]
    fn wrong_input_dim_rejected() {
        let s = session(Backend::Dense);
        let _ = s.forward_batch(&Matrix::zeros(2, 5));
    }
}
