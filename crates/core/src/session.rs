//! Inference sessions: the executable forward pass a serving runtime drives.
//!
//! An [`InferenceSession`] packages a chain of pruned weight matrices into a
//! ready-to-serve model: it validates that the layer shapes compose, binds
//! every layer to a [`KernelBackend`] built from the [`KernelRegistry`]
//! (heterogeneous per-layer plans are first-class: layer 0 can run
//! tile-wise while layer 1 runs CSR and layer 2 dense), runs real batched
//! CPU inference, and prices the same batch on the `tw-gpu-sim` cost model
//! so a serving tier can overlap simulated device time with CPU execution.
//!
//! Backend selection is either explicit (a [`Backend`] per layer) or
//! delegated to the [`AutoPlanner`], which prices every registered kernel
//! family per layer and picks the cheapest.
//!
//! All backends are functionally equivalent: batching requests as rows of
//! one activation matrix commutes with the per-layer `matmul + ReLU`
//! pipeline, so a batched sparse forward pass reproduces per-request dense
//! results within kernel tolerance — the property `tests/` pins down.

use crate::backend::{AutoPlanner, Backend, KernelBackend, KernelRegistry};
use crate::planner::{ExecutionConfig, ExecutionPlanner, WeightExecution};
use crate::pruner::PrunedModel;
use crate::tile_matrix::TileWiseMatrix;
use tw_gpu_sim::{Calibration, CoreKind, CostModel, GpuDevice, RunCounters, StreamSim};
use tw_models::{ModelKind, PrunableGemm, Workload};
use tw_tensor::Matrix;

/// One layer: the kernel executing it plus the shape/sparsity metadata the
/// planner and the admission checks need.  The pruned tile itself is *not*
/// retained: after construction the kernel's executable form is the only
/// resident copy of the weights (a session is long-lived and shared by
/// every serving worker, so holding the source tile alongside e.g. a dense
/// copy would double model memory for nothing).
#[derive(Debug)]
struct SessionLayer {
    k: usize,
    n: usize,
    kept_elements: usize,
    kernel: Box<dyn KernelBackend>,
}

/// An executable pruned model plus the planner that prices its batches.
#[derive(Debug)]
pub struct InferenceSession {
    layers: Vec<SessionLayer>,
    planner: ExecutionPlanner,
    exec_config: ExecutionConfig,
}

impl InferenceSession {
    /// Builds a session executing every layer with the same backend
    /// selection (`Backend::Auto` still plans each layer individually).
    ///
    /// # Panics
    /// Panics if the chain is empty or consecutive layer shapes do not
    /// compose (`layer[i].n() != layer[i + 1].k()`).
    pub fn new(tile_matrices: Vec<TileWiseMatrix>, backend: Backend) -> Self {
        let plan = vec![backend; tile_matrices.len()];
        Self::with_plan(tile_matrices, &plan)
    }

    /// Builds a session with an explicit per-layer backend plan; `Auto`
    /// entries are resolved by the default [`AutoPlanner`] over the
    /// standard registry.
    ///
    /// # Panics
    /// Panics on an empty or non-composing chain, or if `plan.len()`
    /// differs from the number of layers.
    pub fn with_plan(tile_matrices: Vec<TileWiseMatrix>, plan: &[Backend]) -> Self {
        Self::with_plan_in(
            tile_matrices,
            plan,
            &KernelRegistry::standard(),
            &AutoPlanner::default(),
        )
    }

    /// [`Self::with_plan`] against a caller-supplied registry and
    /// auto-planner — the hook for custom kernel families and custom cost
    /// models.
    pub fn with_plan_in(
        tile_matrices: Vec<TileWiseMatrix>,
        plan: &[Backend],
        registry: &KernelRegistry,
        auto: &AutoPlanner,
    ) -> Self {
        let names: Vec<&str> = plan.iter().map(Backend::as_str).collect();
        Self::with_named_plan(tile_matrices, &names, registry, auto)
    }

    /// The most general constructor: one registered kernel-family name per
    /// layer (`"auto"` delegates that layer to the auto-planner).  Names
    /// outside [`Backend`]'s vocabulary work as long as they are registered,
    /// which is how downstream kernel families plug in.
    ///
    /// # Panics
    /// Panics on an empty or non-composing chain, a plan length mismatch,
    /// or an unregistered family name.
    pub fn with_named_plan(
        tile_matrices: Vec<TileWiseMatrix>,
        plan: &[&str],
        registry: &KernelRegistry,
        auto: &AutoPlanner,
    ) -> Self {
        assert!(!tile_matrices.is_empty(), "a session needs at least one layer");
        assert_eq!(plan.len(), tile_matrices.len(), "one backend selection per layer");
        for (i, pair) in tile_matrices.windows(2).enumerate() {
            assert_eq!(
                pair[0].n(),
                pair[1].k(),
                "layer {} output dim must feed layer {} input dim",
                i,
                i + 1
            );
        }
        let layers = tile_matrices
            .into_iter()
            .zip(plan)
            .map(|(tile, &name)| {
                let kernel = if name == Backend::Auto.as_str() {
                    auto.choose(registry, &tile)
                } else {
                    registry.build(name, &tile).unwrap_or_else(|| {
                        panic!(
                            "backend {name:?} is not registered (available: {})",
                            registry.names().join(", ")
                        )
                    })
                };
                SessionLayer {
                    k: tile.k(),
                    n: tile.n(),
                    kept_elements: tile.kept_elements(),
                    kernel,
                }
            })
            .collect();
        Self {
            layers,
            planner: ExecutionPlanner::v100(),
            exec_config: ExecutionConfig::optimized(CoreKind::TensorCore),
        }
    }

    /// Re-prices the session on `device` (V100 calibration constants):
    /// every subsequent [`Self::plan_batch`] / [`Self::dwell_model`] call
    /// uses that device's cost model, which is how heterogeneous serving
    /// replicas simulate different accelerator generations behind one
    /// router.  Devices without tensor cores fall back to CUDA-core
    /// execution.  Kernel *plans* already resolved (including `Auto`
    /// selections made at construction) are unchanged — only the pricing
    /// moves.
    pub fn with_device(mut self, device: GpuDevice) -> Self {
        if !device.has_tensor_cores() {
            self.exec_config = ExecutionConfig::optimized(CoreKind::CudaCore);
        }
        self.planner = ExecutionPlanner::new(CostModel::new(device, Calibration::v100_defaults()));
        self
    }

    /// The device the session's batches are priced on.
    pub fn device(&self) -> &GpuDevice {
        self.planner.cost_model().device()
    }

    /// Builds a session from a [`PrunedModel`] produced by the high-level
    /// pruning pipeline.
    pub fn from_pruned(pruned: &PrunedModel, backend: Backend) -> Self {
        Self::new(pruned.tile_matrices.clone(), backend)
    }

    /// Freshly pruned random square-ish layers — the synthetic chain the
    /// serving benchmarks, examples and tests drive.  `dims` lists the
    /// activation dimensions, so `dims = [64, 96, 32]` builds two weight
    /// matrices (64x96 and 96x32).
    pub fn synthetic_tiles(
        dims: &[usize],
        sparsity: f64,
        granularity: usize,
        seed: u64,
    ) -> Vec<TileWiseMatrix> {
        assert!(dims.len() >= 2, "need at least input and output dims");
        use tw_pruning::{tw, ImportanceScores, SparsityTarget, TileWiseConfig};
        dims.windows(2)
            .enumerate()
            .map(|(i, pair)| {
                let weights = Matrix::random_normal(pair[0], pair[1], 1.0, seed + i as u64);
                let scores = ImportanceScores::magnitude(&weights);
                let mask = tw::prune(
                    &scores,
                    &TileWiseConfig::with_granularity(granularity),
                    SparsityTarget::new(sparsity),
                );
                TileWiseMatrix::from_mask(&weights, &mask)
            })
            .collect()
    }

    /// A self-contained session over [`Self::synthetic_tiles`].
    pub fn synthetic_chain(
        dims: &[usize],
        sparsity: f64,
        granularity: usize,
        seed: u64,
        backend: Backend,
    ) -> Self {
        Self::new(Self::synthetic_tiles(dims, sparsity, granularity, seed), backend)
    }

    /// The resolved kernel family of every layer, in layer order.  `Auto`
    /// selections appear as the family the planner actually picked.
    pub fn layer_backends(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.kernel.name()).collect()
    }

    /// Compact `a,b,c` rendering of [`Self::layer_backends`] for reports.
    pub fn plan_summary(&self) -> String {
        self.layer_backends().join(",")
    }

    /// Bytes of executable weight forms resident per serving replica.
    pub fn resident_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.kernel.resident_bytes()).sum()
    }

    /// Per-layer breakdown of [`Self::resident_bytes`], in layer order —
    /// the footprint source a memory manager (`tw-memory`) derives its
    /// paging tiles from.
    pub fn layer_resident_bytes(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.kernel.resident_bytes()).collect()
    }

    /// Number of weight layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Expected per-request input length.
    pub fn input_dim(&self) -> usize {
        self.layers[0].k
    }

    /// Per-request output length.
    pub fn output_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].n
    }

    /// Overall element sparsity across the chain.
    pub fn sparsity(&self) -> f64 {
        let total: usize = self.layers.iter().map(|l| l.k * l.n).sum();
        let kept: usize = self.layers.iter().map(|l| l.kept_elements).sum();
        if total == 0 {
            return 0.0;
        }
        1.0 - kept as f64 / total as f64
    }

    /// One batched forward pass: each row of `inputs` is a request, each row
    /// of the result is its output.  Hidden layers apply ReLU; the final
    /// layer is linear.
    ///
    /// # Panics
    /// Panics if `inputs.cols() != self.input_dim()`.
    pub fn forward_batch(&self, inputs: &Matrix) -> Matrix {
        assert_eq!(
            inputs.cols(),
            self.input_dim(),
            "request payload length must match the model input dim"
        );
        let last = self.layers.len() - 1;
        let mut x = inputs.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.kernel.forward_batch(&x);
            if i != last {
                relu_in_place(&mut x);
            }
        }
        x
    }

    /// Convenience single-request forward pass.
    pub fn forward_one(&self, input: &[f32]) -> Vec<f32> {
        let x = Matrix::from_rows(&[input]);
        self.forward_batch(&x).into_vec()
    }

    /// The GEMM workload one batch of `batch_size` requests induces, in the
    /// shape the execution planner prices.
    pub fn workload_for_batch(&self, batch_size: usize) -> Workload {
        let prunable = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, layer)| PrunableGemm {
                name: format!("serve.layer{i}"),
                m: batch_size,
                k: layer.k,
                n: layer.n,
            })
            .collect();
        Workload {
            kind: ModelKind::Mlp,
            name: format!("serving chain (batch {batch_size})"),
            prunable,
            fixed_gemms: Vec::new(),
            aux_ops: Vec::new(),
        }
    }

    /// Prices one batch on the GPU cost model, with the per-layer execution
    /// form reported by each layer's kernel.
    pub fn plan_batch(&self, batch_size: usize) -> RunCounters {
        let workload = self.workload_for_batch(batch_size);
        let execs: Vec<WeightExecution> =
            self.layers.iter().map(|layer| layer.kernel.execution()).collect();
        self.planner.plan_model(&workload, &execs, &self.exec_config)
    }

    /// Simulated device seconds for one batch of `batch_size` requests — the
    /// number a serving worker dwells on to model GPU occupancy.
    pub fn simulated_batch_seconds(&self, batch_size: usize) -> f64 {
        if batch_size == 0 {
            return 0.0;
        }
        self.plan_batch(batch_size).total_time()
    }

    /// A memoized per-batch-size dwell table for batch sizes `1..=max_batch`
    /// — the prediction hook the serving layer's admission controller and
    /// deadline-aware batcher consult on every request, where re-running the
    /// planner would be far too slow for the hot path.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    pub fn dwell_model(&self, max_batch: usize) -> DwellModel {
        assert!(max_batch > 0, "dwell model needs at least batch size 1");
        DwellModel { seconds: (1..=max_batch).map(|b| self.simulated_batch_seconds(b)).collect() }
    }

    /// The modelled win of dynamic batching itself: device time of
    /// `batch_size` *independent* single-request forward passes overlapped
    /// across `streams` CUDA streams, divided by the device time of the same
    /// requests fused into one batched kernel sequence.
    ///
    /// # Panics
    /// Panics if `batch_size` is zero (delegated from the stream scheduler)
    /// or `streams` is zero.
    pub fn batching_speedup(&self, batch_size: usize, streams: usize) -> f64 {
        let single = self.plan_batch(1).total_time();
        let unbatched = StreamSim::new(streams).schedule_uniform(single, batch_size).makespan();
        unbatched / self.simulated_batch_seconds(batch_size)
    }
}

/// A precomputed table of simulated device seconds per batch size, built by
/// [`InferenceSession::dwell_model`].  This is the cost-model hook the
/// serving layer schedules against: predicting how long a batch will occupy
/// the device answers both "can this request still meet its deadline?"
/// (admission control) and "how long dare the batcher keep waiting?"
/// (deadline-aware batch close) without touching the planner at runtime.
#[derive(Clone, Debug)]
pub struct DwellModel {
    /// `seconds[i]` prices a batch of `i + 1` requests.
    seconds: Vec<f64>,
}

impl DwellModel {
    /// A table from explicit per-batch-size prices — `seconds[i]` prices a
    /// batch of `i + 1` requests.  [`InferenceSession::dwell_model`] is the
    /// cost-model-backed constructor; this one exists so schedulers and
    /// tests can probe the prediction math against hand-picked tables.
    ///
    /// # Panics
    /// Panics if `seconds` is empty or contains a negative or non-finite
    /// price.
    pub fn from_seconds(seconds: Vec<f64>) -> Self {
        assert!(!seconds.is_empty(), "dwell model needs at least batch size 1");
        assert!(
            seconds.iter().all(|s| s.is_finite() && *s >= 0.0),
            "dwell prices must be finite and non-negative"
        );
        Self { seconds }
    }

    /// Largest batch size the table covers.
    pub fn max_batch(&self) -> usize {
        self.seconds.len()
    }

    /// Predicted device seconds to clear a backlog of `queued` requests
    /// batched at `max_batch` across `workers` — the probe a load balancer
    /// or autoscaler prices a replica's queue with.  Mirrors the admission
    /// controller's wait prediction: only *full* batches ahead count (a
    /// request arriving behind a partial batch joins it), and those batches
    /// spread round-robin over the pool.
    ///
    /// # Panics
    /// Panics if `max_batch` or `workers` is zero.
    pub fn backlog_seconds(&self, queued: usize, max_batch: usize, workers: usize) -> f64 {
        assert!(max_batch > 0, "backlog prediction needs a positive batch size");
        assert!(workers > 0, "backlog prediction needs at least one worker");
        let full_batches = queued / max_batch;
        let rounds = full_batches.div_ceil(workers);
        rounds as f64 * self.seconds_for(max_batch)
    }

    /// Simulated device seconds for a batch of `batch_size` requests.
    /// A `batch_size` of zero costs nothing; sizes beyond the table are
    /// extrapolated linearly from the largest entry's per-request cost
    /// (batching only amortizes, so this never underestimates).
    pub fn seconds_for(&self, batch_size: usize) -> f64 {
        if batch_size == 0 {
            return 0.0;
        }
        if batch_size <= self.seconds.len() {
            return self.seconds[batch_size - 1];
        }
        let max = self.seconds.len();
        self.seconds[max - 1] * batch_size as f64 / max as f64
    }
}

fn relu_in_place(x: &mut Matrix) {
    for v in x.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_tensor::DEFAULT_TOL;

    fn session(backend: Backend) -> InferenceSession {
        InferenceSession::synthetic_chain(&[48, 64, 32], 0.6, 16, 42, backend)
    }

    fn plan_session(plan: &[Backend]) -> InferenceSession {
        let tiles = InferenceSession::synthetic_tiles(&[48, 64, 32], 0.6, 16, 42);
        InferenceSession::with_plan(tiles, plan)
    }

    #[test]
    fn dims_and_sparsity_are_consistent() {
        let s = session(Backend::TileWise);
        assert_eq!(s.num_layers(), 2);
        assert_eq!(s.input_dim(), 48);
        assert_eq!(s.output_dim(), 32);
        assert!((s.sparsity() - 0.6).abs() < 0.05, "sparsity {}", s.sparsity());
        assert_eq!(s.layer_backends(), vec!["tile-wise", "tile-wise"]);
        assert_eq!(s.plan_summary(), "tile-wise,tile-wise");
        assert!(s.resident_bytes() > 0);
    }

    #[test]
    fn backends_agree_on_batched_inference() {
        let dense = session(Backend::Dense);
        let inputs = Matrix::random_uniform(9, 48, 1.0, 7);
        let reference = dense.forward_batch(&inputs);
        for backend in [Backend::TileWise, Backend::Csr, Backend::Bsr, Backend::Auto] {
            let s = session(backend);
            assert!(
                s.forward_batch(&inputs).approx_eq(&reference, DEFAULT_TOL),
                "{backend} disagrees with dense"
            );
        }
    }

    #[test]
    fn heterogeneous_plans_match_dense_reference() {
        let dense = session(Backend::Dense);
        let inputs = Matrix::random_uniform(6, 48, 1.0, 13);
        let reference = dense.forward_batch(&inputs);
        let mixed = plan_session(&[Backend::Csr, Backend::Bsr]);
        assert_eq!(mixed.layer_backends(), vec!["csr", "bsr"]);
        assert!(mixed.forward_batch(&inputs).approx_eq(&reference, DEFAULT_TOL));
        let with_auto = plan_session(&[Backend::Auto, Backend::Dense]);
        assert_eq!(with_auto.layer_backends()[1], "dense");
        assert_ne!(with_auto.layer_backends()[0], "auto", "auto must resolve to a family");
        assert!(with_auto.forward_batch(&inputs).approx_eq(&reference, DEFAULT_TOL));
    }

    #[test]
    fn auto_sessions_report_resolved_families() {
        let s = session(Backend::Auto);
        for name in s.layer_backends() {
            assert_ne!(name, "auto");
        }
        // The auto plan prices each batch no worse than the all-dense plan.
        let dense = session(Backend::Dense);
        let auto_t = s.simulated_batch_seconds(8);
        let dense_t = dense.simulated_batch_seconds(8);
        assert!(auto_t <= dense_t * 1.05, "auto {auto_t} vs dense {dense_t}");
    }

    #[test]
    fn batched_rows_match_single_requests() {
        let s = session(Backend::TileWise);
        let inputs = Matrix::random_uniform(5, 48, 1.0, 9);
        let batched = s.forward_batch(&inputs);
        for r in 0..inputs.rows() {
            let single = s.forward_one(inputs.row(r));
            let batched_row = batched.row(r);
            for (a, b) in single.iter().zip(batched_row) {
                assert!(tw_tensor::approx_eq(*a, *b, DEFAULT_TOL), "row {r}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn from_pruned_wires_the_pipeline_output() {
        use crate::pruner::{TileWisePruner, TileWisePrunerConfig};
        use tw_pruning::LayerSet;
        let mut layers = LayerSet::new(
            vec!["a".into(), "b".into()],
            vec![Matrix::random_normal(32, 48, 1.0, 1), Matrix::random_normal(48, 16, 1.0, 2)],
        );
        let pruner = TileWisePruner::new(TileWisePrunerConfig {
            granularity: 16,
            target_sparsity: 0.5,
            delta: 0.0,
            stages: 1,
            importance: tw_pruning::ImportanceMethod::Magnitude,
            apriori: None,
            fine_tune_recovery: 0.0,
        });
        let pruned = pruner.prune(&mut layers);
        let session = InferenceSession::from_pruned(&pruned, Backend::TileWise);
        assert_eq!(session.input_dim(), 32);
        assert_eq!(session.output_dim(), 16);
        let out = session.forward_one(&[0.5; 32]);
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn plan_batch_prices_every_layer() {
        let s = session(Backend::TileWise);
        let run = s.plan_batch(8);
        // Boundary transposes + one TW GEMM per layer.
        assert!(run.kernel_count() >= s.num_layers());
        assert!(run.total_time() > 0.0);
    }

    #[test]
    fn plan_batch_prices_heterogeneous_kernels() {
        let s = plan_session(&[Backend::Bsr, Backend::Csr]);
        let run = s.plan_batch(8);
        let names: Vec<&str> = run.kernels().iter().map(|k| k.name.as_str()).collect();
        assert!(names.iter().any(|n| n.contains("bsr")), "missing bsr kernel in {names:?}");
        assert!(names.iter().any(|n| n.contains("csr")), "missing csr kernel in {names:?}");
    }

    #[test]
    fn batching_beats_streamed_singles() {
        // Fusing 16 requests into one batched kernel sequence must beat 16
        // independent single-request passes, even when the singles overlap
        // across the V100's streams — kernel-launch overhead and wave
        // quantization dominate tiny GEMMs.
        let s = session(Backend::TileWise);
        let speedup = s.batching_speedup(16, 4);
        assert!(speedup > 1.0, "batching speedup {speedup}");
    }

    #[test]
    fn simulated_time_grows_with_batch_size() {
        let s = session(Backend::TileWise);
        let t1 = s.simulated_batch_seconds(1);
        let t64 = s.simulated_batch_seconds(64);
        assert!(t64 > t1, "batch 64 ({t64}) should cost more than batch 1 ({t1})");
        assert_eq!(s.simulated_batch_seconds(0), 0.0);
        // Batching amortizes: 64 requests in one batch beat 64 singles.
        assert!(t64 < 64.0 * t1);
    }

    #[test]
    fn dwell_model_memoizes_the_planner() {
        let s = session(Backend::TileWise);
        let model = s.dwell_model(8);
        assert_eq!(model.max_batch(), 8);
        for b in 1..=8 {
            assert_eq!(model.seconds_for(b), s.simulated_batch_seconds(b), "batch {b}");
        }
        assert_eq!(model.seconds_for(0), 0.0);
        // Extrapolation beyond the table never undercuts the real price —
        // batching amortizes, so per-request cost at 16 <= per-request at 8.
        assert!(model.seconds_for(16) >= s.simulated_batch_seconds(16));
        // And it stays monotone in batch size.
        assert!(model.seconds_for(16) >= model.seconds_for(8));
    }

    #[test]
    #[should_panic(expected = "at least batch size 1")]
    fn zero_dwell_table_rejected() {
        let _ = session(Backend::Dense).dwell_model(0);
    }

    #[test]
    fn with_device_reprices_without_replanning() {
        let tiles = InferenceSession::synthetic_tiles(&[48, 64, 32], 0.6, 16, 42);
        let v100 = InferenceSession::with_plan(tiles.clone(), &[Backend::TileWise; 2]);
        let a100 = InferenceSession::with_plan(tiles.clone(), &[Backend::TileWise; 2])
            .with_device(GpuDevice::a100_like());
        let midrange = InferenceSession::with_plan(tiles, &[Backend::TileWise; 2])
            .with_device(GpuDevice::cuda_only_midrange());
        assert_eq!(v100.device().name, "Tesla V100");
        assert_eq!(a100.device().name, "A100-like");
        // The kernel plan is untouched; only the pricing moves.
        assert_eq!(a100.layer_backends(), v100.layer_backends());
        // A faster device prices the same batch cheaper, a slower one
        // costlier.
        let batch = 8;
        assert!(a100.simulated_batch_seconds(batch) < v100.simulated_batch_seconds(batch));
        assert!(midrange.simulated_batch_seconds(batch) > v100.simulated_batch_seconds(batch));
        // Functional output is identical — the device is a pricing concern.
        let inputs = Matrix::random_uniform(4, 48, 1.0, 3);
        assert!(a100
            .forward_batch(&inputs)
            .approx_eq(&v100.forward_batch(&inputs), tw_tensor::DEFAULT_TOL));
    }

    #[test]
    fn backlog_probe_mirrors_admission_math() {
        let model = DwellModel::from_seconds(vec![1.0, 1.5, 2.0, 2.5]);
        assert_eq!(model.max_batch(), 4);
        // No full batch ahead => no wait.
        assert_eq!(model.backlog_seconds(3, 4, 2), 0.0);
        // One full batch over two workers is one round.
        assert_eq!(model.backlog_seconds(4, 4, 2), 2.5);
        // Three full batches over two workers are two rounds.
        assert_eq!(model.backlog_seconds(12, 4, 2), 5.0);
        // More workers clear the same backlog in fewer rounds.
        assert!(model.backlog_seconds(16, 4, 4) < model.backlog_seconds(16, 4, 1));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_dwell_price_rejected() {
        let _ = DwellModel::from_seconds(vec![0.5, -1.0]);
    }

    #[test]
    #[should_panic(expected = "must feed")]
    fn mismatched_chain_rejected() {
        let a = InferenceSession::synthetic_tiles(&[16, 24], 0.5, 8, 1);
        let b = InferenceSession::synthetic_tiles(&[32, 16], 0.5, 8, 2);
        let _ = InferenceSession::new(vec![a[0].clone(), b[0].clone()], Backend::Dense);
    }

    #[test]
    #[should_panic(expected = "one backend selection per layer")]
    fn plan_length_mismatch_rejected() {
        let tiles = InferenceSession::synthetic_tiles(&[16, 24, 8], 0.5, 8, 3);
        let _ = InferenceSession::with_plan(tiles, &[Backend::Dense]);
    }

    #[test]
    #[should_panic(expected = "is not registered")]
    fn unregistered_backend_rejected() {
        let tiles = InferenceSession::synthetic_tiles(&[16, 24], 0.5, 8, 4);
        let _ = InferenceSession::with_named_plan(
            tiles,
            &["warp-speed"],
            &KernelRegistry::standard(),
            &AutoPlanner::default(),
        );
    }

    #[test]
    #[should_panic(expected = "payload length")]
    fn wrong_input_dim_rejected() {
        let s = session(Backend::Dense);
        let _ = s.forward_batch(&Matrix::zeros(2, 5));
    }
}
