//! High-level pruning pipeline.
//!
//! [`TileWisePruner`] is the user-facing entry point: give it a model's
//! layer set and a configuration, and it runs the multi-stage pruning of
//! Algorithm 1 (with apriori tuning and a fine-tuning hook) and hands back
//! executable [`TileWiseMatrix`]/[`TewMatrix`] weights plus the per-stage
//! reports.

use crate::tew_matrix::TewMatrix;
use crate::tile_matrix::TileWiseMatrix;
use tw_pruning::{
    AprioriConfig, ImportanceMethod, LayerSet, MultiStageConfig, MultiStagePruner, PatternMask,
    PruneStageReport, PruningPattern, SparsityTarget,
};

/// Configuration of the end-to-end pruning pipeline.
#[derive(Clone, Debug)]
pub struct TileWisePrunerConfig {
    /// Tiling granularity G.
    pub granularity: usize,
    /// Final sparsity target.
    pub target_sparsity: f64,
    /// Overlay fraction δ; zero gives pure TW, positive gives TEW.
    pub delta: f64,
    /// Number of prune/fine-tune stages.
    pub stages: usize,
    /// Importance estimator.
    pub importance: ImportanceMethod,
    /// Apriori tuning configuration (Algorithm 2); `None` disables it.
    pub apriori: Option<AprioriConfig>,
    /// Fraction by which surviving weights are boosted per stage to model
    /// fine-tuning recovery (0 disables the hook).
    pub fine_tune_recovery: f32,
}

impl TileWisePrunerConfig {
    /// The paper's reference configuration: G = 128, 75% sparsity, pure TW,
    /// 4 stages, Taylor importance, apriori tuning on.
    pub fn paper_default() -> Self {
        Self {
            granularity: 128,
            target_sparsity: 0.75,
            delta: 0.0,
            stages: 4,
            importance: ImportanceMethod::Taylor,
            apriori: Some(AprioriConfig::default()),
            fine_tune_recovery: 0.05,
        }
    }
}

impl Default for TileWisePrunerConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The result of pruning one model.
#[derive(Clone, Debug)]
pub struct PrunedModel {
    /// Executable TW weights, one per layer (present for both TW and TEW).
    pub tile_matrices: Vec<TileWiseMatrix>,
    /// Executable TEW weights when δ > 0.
    pub tew_matrices: Option<Vec<TewMatrix>>,
    /// Final flat keep masks.
    pub masks: Vec<PatternMask>,
    /// Per-stage pruning reports.
    pub stages: Vec<PruneStageReport>,
    /// Overall achieved sparsity.
    pub achieved_sparsity: f64,
}

impl PrunedModel {
    /// Total surviving parameters across all layers.
    pub fn kept_parameters(&self) -> usize {
        self.tile_matrices.iter().map(|t| t.kept_elements()).sum()
    }
}

/// The high-level pruner.
pub struct TileWisePruner {
    config: TileWisePrunerConfig,
}

impl TileWisePruner {
    /// Creates a pruner with the given configuration.
    pub fn new(config: TileWisePrunerConfig) -> Self {
        assert!(config.granularity > 0, "granularity must be positive");
        assert!((0.0..1.0).contains(&config.target_sparsity), "target sparsity must be in [0, 1)");
        assert!(config.delta >= 0.0, "delta must be non-negative");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TileWisePrunerConfig {
        &self.config
    }

    /// Prunes a model in place (its weights end up masked) and returns the
    /// executable sparse representation.
    pub fn prune(&self, layers: &mut LayerSet) -> PrunedModel {
        let pattern = if self.config.delta > 0.0 {
            PruningPattern::TileElementWise {
                granularity: self.config.granularity,
                delta: self.config.delta,
            }
        } else {
            PruningPattern::TileWise { granularity: self.config.granularity }
        };
        let ms_config = MultiStageConfig {
            target: SparsityTarget::new(self.config.target_sparsity),
            stages: self.config.stages,
            pattern,
            importance: self.config.importance,
            apriori: self.config.apriori,
        };
        let pruner = MultiStagePruner::new(ms_config);
        // Snapshot the original (dense) weights: the executable matrices are
        // built from them so that fine-tune boosts during staging do not
        // change the reference semantics checked by tests.
        let recovery = self.config.fine_tune_recovery;
        let outcome = if recovery > 0.0 {
            pruner.run(layers, tw_models::SyntheticModel::fine_tune_hook(recovery))
        } else {
            pruner.run(layers, |_, _, _| {})
        };

        let tw_masks = outcome.tw_masks.expect("TW/TEW pruning always yields structured masks");
        let tile_matrices: Vec<TileWiseMatrix> = layers
            .weights()
            .iter()
            .zip(&tw_masks)
            .map(|(w, m)| TileWiseMatrix::from_mask(w, m))
            .collect();
        let tew_matrices = outcome.tew_masks.as_ref().map(|tews| {
            layers.weights().iter().zip(tews).map(|(w, m)| TewMatrix::from_mask(w, m)).collect()
        });
        let achieved = {
            let total: usize = outcome.masks.iter().map(|m| m.keep().len()).sum();
            let pruned: usize = outcome.masks.iter().map(|m| m.pruned_count()).sum();
            pruned as f64 / total.max(1) as f64
        };
        PrunedModel {
            tile_matrices,
            tew_matrices,
            masks: outcome.masks,
            stages: outcome.stages,
            achieved_sparsity: achieved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_tensor::Matrix;

    fn small_layers(seed: u64) -> LayerSet {
        LayerSet::with_grads(
            vec!["a".into(), "b".into()],
            vec![
                Matrix::random_normal(64, 96, 1.0, seed),
                Matrix::random_normal(96, 64, 1.0, seed + 1),
            ],
            vec![
                Matrix::random_normal(64, 96, 0.1, seed + 2),
                Matrix::random_normal(96, 64, 0.1, seed + 3),
            ],
        )
    }

    #[test]
    fn tw_pipeline_reaches_target_and_builds_executables() {
        let mut layers = small_layers(1);
        let pruner = TileWisePruner::new(TileWisePrunerConfig {
            granularity: 32,
            target_sparsity: 0.7,
            delta: 0.0,
            stages: 3,
            importance: ImportanceMethod::Taylor,
            apriori: Some(AprioriConfig::default()),
            fine_tune_recovery: 0.05,
        });
        let pruned = pruner.prune(&mut layers);
        assert!((pruned.achieved_sparsity - 0.7).abs() < 0.05);
        assert_eq!(pruned.tile_matrices.len(), 2);
        assert!(pruned.tew_matrices.is_none());
        assert_eq!(pruned.stages.len(), 3);
        assert!(pruned.kept_parameters() > 0);
        // The executable matrices carry the same sparsity as the masks.
        for (tm, mask) in pruned.tile_matrices.iter().zip(&pruned.masks) {
            assert!((tm.sparsity() - mask.sparsity()).abs() < 1e-9);
        }
    }

    #[test]
    fn tew_pipeline_builds_overlay() {
        let mut layers = small_layers(2);
        let pruner = TileWisePruner::new(TileWisePrunerConfig {
            granularity: 32,
            target_sparsity: 0.75,
            delta: 0.05,
            stages: 2,
            importance: ImportanceMethod::Taylor,
            apriori: None,
            fine_tune_recovery: 0.0,
        });
        let pruned = pruner.prune(&mut layers);
        let tew = pruned.tew_matrices.expect("TEW matrices present");
        let overlay_total: usize = tew.iter().map(|t| t.overlay_nnz()).sum();
        assert!(overlay_total > 0);
        assert!((pruned.achieved_sparsity - 0.75).abs() < 0.05);
    }

    #[test]
    fn executable_weights_match_pruned_layer_weights() {
        // After pruning, the layer set's weights are masked; the executable
        // representation must reconstruct exactly those masked weights.
        let mut layers = small_layers(3);
        let pruner = TileWisePruner::new(TileWisePrunerConfig {
            granularity: 16,
            target_sparsity: 0.6,
            delta: 0.0,
            stages: 1,
            importance: ImportanceMethod::Magnitude,
            apriori: None,
            fine_tune_recovery: 0.0,
        });
        let pruned = pruner.prune(&mut layers);
        for (tm, w) in pruned.tile_matrices.iter().zip(layers.weights()) {
            assert_eq!(&tm.to_dense(), w);
        }
    }

    #[test]
    #[should_panic(expected = "granularity must be positive")]
    fn zero_granularity_rejected() {
        let _ = TileWisePruner::new(TileWisePrunerConfig {
            granularity: 0,
            ..TileWisePrunerConfig::paper_default()
        });
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = TileWisePrunerConfig::default();
        assert_eq!(cfg.granularity, 128);
        assert!((cfg.target_sparsity - 0.75).abs() < 1e-12);
        assert_eq!(cfg.stages, 4);
        assert!(cfg.apriori.is_some());
    }
}
