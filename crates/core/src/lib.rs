//! Tile-wise sparsity: the paper's contribution as a reusable library.
//!
//! This crate ties the substrates together into the system a user of the
//! paper's artifact would actually adopt:
//!
//! * [`TileWiseMatrix`] / [`TewMatrix`] — the executable representation of a
//!   TW / TEW pruned weight matrix: pre-compacted dense tiles plus row and
//!   column masks, with a functionally exact `matmul` (checked against dense
//!   GEMM) and the tile statistics the execution planner consumes.
//! * [`TileWisePruner`] — the high-level pruning pipeline: multi-stage
//!   global pruning (Algorithm 1) with apriori tuning (Algorithm 2) over a
//!   whole model's layer set, producing executable sparse matrices.
//! * [`planner`] — the GPU execution planner implementing Sec. VI: masked
//!   batched GEMM on tensor cores, transpose placement for memory
//!   coalescing, stream concurrency and kernel fusion, priced by the
//!   `tw-gpu-sim` cost model.
//! * [`evaluate`] — end-to-end evaluation of a (model, pattern, sparsity)
//!   point: accuracy via the importance-retention proxy and latency via the
//!   planner; this is what every figure reproduction drives.
//! * [`figures`] — one generator per figure of the paper's evaluation
//!   section, returning plain data that the `tw-bench` binaries print.
//! * [`backend`] — the open kernel-backend layer: the [`KernelBackend`]
//!   trait (batched forward, cost-model pricing, resident bytes), the four
//!   built-in families (dense / tile-wise / CSR / BSR), the
//!   [`KernelRegistry`] new families plug into, and the [`AutoPlanner`]
//!   that picks the cost-model-cheapest family per layer.
//! * [`session`] — [`InferenceSession`], the executable forward pass the
//!   `tw-serve` runtime drives: batched CPU inference over the pruned
//!   weights with a (possibly heterogeneous) kernel backend per layer,
//!   plus GPU-simulated batch pricing through the planner.

pub mod backend;
pub mod evaluate;
pub mod figures;
pub mod planner;
pub mod pruner;
pub mod session;
pub mod tew_matrix;
pub mod tile_matrix;

pub use backend::{AutoPlanner, Backend, BackendParseError, KernelBackend, KernelRegistry};
pub use evaluate::{ModelEvaluation, SparseModelReport};
pub use planner::{ExecutionConfig, ExecutionPlanner, TransposeStrategy};
pub use pruner::{PrunedModel, TileWisePruner, TileWisePrunerConfig};
pub use session::{DwellModel, InferenceSession};
pub use tew_matrix::TewMatrix;
pub use tile_matrix::TileWiseMatrix;

/// Convenience re-export: the pattern taxonomy used across the API surface.
pub use tw_pruning::PruningPattern as PatternChoice;
