//! The executable tile-element-wise (TEW) sparse matrix.
//!
//! TEW = a tile-wise core plus a sparse element-wise overlay of restored
//! weights.  The overlay is stored in CSC (Fig. 4 ④) and its contribution is
//! added to the TW result by exploiting the linearity of matrix
//! multiplication: `A x (W_tw + W_overlay) = A x W_tw + A x W_overlay`.

use crate::tile_matrix::TileWiseMatrix;
use tw_pruning::TewMask;
use tw_sparse::{spmm, CscMatrix};
use tw_tensor::Matrix;

/// A weight matrix pruned with the hybrid TEW pattern, in executable form.
#[derive(Clone, Debug, PartialEq)]
pub struct TewMatrix {
    tw: TileWiseMatrix,
    overlay: CscMatrix,
    delta: f64,
}

impl TewMatrix {
    /// Builds the executable representation from the original dense weights
    /// and a TEW pruning decision.
    pub fn from_mask(weights: &Matrix, mask: &TewMask) -> Self {
        let tw = TileWiseMatrix::from_mask(weights, mask.tw());
        let overlay_dense = mask.overlay().apply(weights);
        let overlay = CscMatrix::from_dense(&overlay_dense);
        Self { tw, overlay, delta: mask.delta() }
    }

    /// The structured tile-wise component.
    pub fn tw(&self) -> &TileWiseMatrix {
        &self.tw
    }

    /// The element-wise overlay in CSC form.
    pub fn overlay(&self) -> &CscMatrix {
        &self.overlay
    }

    /// The overlay fraction δ requested at pruning time.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of non-zero overlay elements.
    pub fn overlay_nnz(&self) -> usize {
        self.overlay.nnz()
    }

    /// Achieved overall sparsity (TW survivors + overlay).
    pub fn sparsity(&self) -> f64 {
        let total = self.tw.k() * self.tw.n();
        if total == 0 {
            return 0.0;
        }
        1.0 - (self.tw.kept_elements() + self.overlay.nnz()) as f64 / total as f64
    }

    /// Reconstructs the equivalent masked dense weight matrix.
    pub fn to_dense(&self) -> Matrix {
        self.tw.to_dense().add(&self.overlay.to_dense())
    }

    /// Multiplies a dense activation matrix by this TEW weight matrix,
    /// executing the TW part with tiled dense GEMMs and the overlay with a
    /// CSC SpMM, then summing (linearity of GEMM).
    pub fn matmul(&self, a: &Matrix) -> Matrix {
        let tw_out = self.tw.matmul(a);
        let overlay_out = spmm::dense_csc_matmul(a, &self.overlay);
        tw_out.add(&overlay_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_pruning::{tew, ImportanceScores, SparsityTarget, TileWiseConfig};
    use tw_tensor::{gemm, DEFAULT_TOL};

    fn build(seed: u64, sparsity: f64, delta: f64) -> (Matrix, TewMask) {
        let weights = Matrix::random_normal(96, 128, 1.0, seed);
        let scores = ImportanceScores::magnitude(&weights);
        let mask = tew::prune(
            &scores,
            &TileWiseConfig::with_granularity(32),
            SparsityTarget::new(sparsity),
            delta,
        );
        (weights, mask)
    }

    #[test]
    fn matmul_matches_masked_dense_gemm() {
        for (seed, sparsity, delta) in [(1, 0.7, 0.05), (2, 0.8, 0.01), (3, 0.5, 0.1)] {
            let (weights, mask) = build(seed, sparsity, delta);
            let tewm = TewMatrix::from_mask(&weights, &mask);
            let a = Matrix::random_uniform(16, 96, 1.0, seed + 10);
            let reference = gemm(&a, &mask.combined_mask().apply(&weights));
            assert!(
                tewm.matmul(&a).approx_eq(&reference, DEFAULT_TOL),
                "sparsity {sparsity} delta {delta}"
            );
        }
    }

    #[test]
    fn dense_reconstruction_matches_combined_mask() {
        let (weights, mask) = build(4, 0.75, 0.05);
        let tewm = TewMatrix::from_mask(&weights, &mask);
        assert_eq!(tewm.to_dense(), mask.combined_mask().apply(&weights));
    }

    #[test]
    fn overlay_nnz_matches_mask() {
        let (weights, mask) = build(5, 0.7, 0.05);
        let tewm = TewMatrix::from_mask(&weights, &mask);
        // Some restored elements may have weight exactly 0.0 (extremely
        // unlikely with random weights), so the CSC count equals the mask
        // count here.
        assert_eq!(tewm.overlay_nnz(), mask.overlay_count());
        assert!((tewm.sparsity() - mask.sparsity()).abs() < 1e-9);
        assert!((tewm.delta() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_delta_has_empty_overlay() {
        let (weights, mask) = build(6, 0.6, 0.0);
        let tewm = TewMatrix::from_mask(&weights, &mask);
        assert_eq!(tewm.overlay_nnz(), 0);
        let a = Matrix::random_uniform(8, 96, 1.0, 60);
        assert!(tewm.matmul(&a).approx_eq(&tewm.tw().matmul(&a), DEFAULT_TOL));
    }

    #[test]
    fn overlay_improves_fidelity_to_original_weights() {
        // The TEW reconstruction is closer to the original dense weights
        // than the TW-only reconstruction (it restores the most important
        // pruned elements).
        let (weights, mask) = build(7, 0.8, 0.05);
        let tewm = TewMatrix::from_mask(&weights, &mask);
        let tw_err = tewm.tw().to_dense().sub(&weights).frobenius_norm();
        let tew_err = tewm.to_dense().sub(&weights).frobenius_norm();
        assert!(tew_err < tw_err);
    }
}
