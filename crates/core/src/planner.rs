//! GPU execution planner (Sec. VI).
//!
//! Given a model workload and the execution form of every prunable weight
//! matrix (dense, CSR, BSR, tile-wise or TEW), the planner emits the kernel
//! sequence of one forward pass — GEMMs, transposes and (optionally fused)
//! non-GEMM chains — and prices it with the `tw-gpu-sim` cost model.  All
//! latency figures of the paper (Figs. 3, 9b, 10b, 11, 14, 15) are produced
//! through this planner.

use tw_gpu_sim::{
    CoreKind, CostModel, KernelProfile, Precision, RunCounters, TwExecOptions, TwTileShape,
};
use tw_models::Workload;
use tw_tensor::GemmShape;

/// Where transpose kernels are inserted to keep the TW kernel's accesses
/// coalesced (Fig. 7 ② and the Fig. 15 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransposeStrategy {
    /// No layout change: the TW kernel pays the uncoalesced-access penalty.
    None,
    /// Transpose activations around every pruned GEMM (the unoptimised
    /// "Transpose Only" configuration).
    PerGemm,
    /// Transpose only at the model boundary; intermediate non-GEMM kernels
    /// are rewritten to consume the transposed layout (the paper's final
    /// configuration: "we only need to transpose matrix A in the first layer
    /// and transpose matrix C after the last layer").
    Boundary,
}

/// How one forward pass is executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecutionConfig {
    /// Execution unit for the GEMMs.
    pub core: CoreKind,
    /// Fuse consecutive non-GEMM kernels (Sec. VI "Kernel Fusion").
    pub fuse_non_gemm: bool,
    /// Transpose placement for the TW layout optimisation.
    pub transpose: TransposeStrategy,
    /// Batch tile GEMMs into one kernel.
    pub tw_batching: bool,
    /// Overlap tiles/batches with stream concurrency.
    pub tw_streams: bool,
}

impl ExecutionConfig {
    /// The fully optimised configuration on the chosen unit (what the
    /// headline numbers use).
    pub fn optimized(core: CoreKind) -> Self {
        Self {
            core,
            fuse_non_gemm: true,
            transpose: TransposeStrategy::Boundary,
            tw_batching: true,
            tw_streams: true,
        }
    }

    /// The naive configuration: no transpose, no fusion, no batching, no
    /// streams.
    pub fn naive(core: CoreKind) -> Self {
        Self {
            core,
            fuse_non_gemm: false,
            transpose: TransposeStrategy::None,
            tw_batching: false,
            tw_streams: false,
        }
    }

    fn tw_opts(&self) -> TwExecOptions {
        TwExecOptions {
            core: self.core,
            transpose_layout: self.transpose != TransposeStrategy::None,
            batching: self.tw_batching,
            streams: self.tw_streams,
        }
    }

    fn precision(&self) -> Precision {
        match self.core {
            CoreKind::TensorCore => Precision::Fp16,
            CoreKind::CudaCore => Precision::Fp32,
        }
    }
}

/// How one prunable weight GEMM is executed.
#[derive(Clone, Debug, PartialEq)]
pub enum WeightExecution {
    /// Unpruned dense GEMM (cuBLAS baseline).
    Dense,
    /// cuSparse CSR SpMM (EW / VW baselines) at the given element sparsity.
    Csr {
        /// Element sparsity of this weight matrix.
        sparsity: f64,
    },
    /// BlockSparse BSR GEMM (BW baseline).
    Bsr {
        /// Block edge length.
        block_size: usize,
        /// Fraction of blocks pruned.
        block_sparsity: f64,
    },
    /// The paper's tile-wise masked/batched GEMM.
    TileWise {
        /// Surviving shape of each tile.
        tiles: Vec<TwTileShape>,
    },
    /// TEW: tile-wise plus an element-wise overlay executed on CUDA cores.
    Tew {
        /// Surviving shape of each tile.
        tiles: Vec<TwTileShape>,
        /// Non-zeros in the element-wise overlay.
        overlay_nnz: u64,
    },
}

/// The execution planner.
#[derive(Clone, Debug)]
pub struct ExecutionPlanner {
    cost: CostModel,
}

impl ExecutionPlanner {
    /// A planner backed by the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Self { cost }
    }

    /// A planner for the default V100 model.
    pub fn v100() -> Self {
        Self::new(CostModel::v100())
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Plans a forward pass in which every prunable weight stays dense.
    pub fn plan_dense(&self, workload: &Workload, cfg: &ExecutionConfig) -> RunCounters {
        let execs = vec![WeightExecution::Dense; workload.prunable.len()];
        self.plan_model(workload, &execs, cfg)
    }

    /// Plans a forward pass with the given execution form per prunable
    /// weight matrix.
    ///
    /// # Panics
    /// Panics if `weight_exec.len()` differs from the number of prunable
    /// GEMMs in the workload.
    pub fn plan_model(
        &self,
        workload: &Workload,
        weight_exec: &[WeightExecution],
        cfg: &ExecutionConfig,
    ) -> RunCounters {
        assert_eq!(
            weight_exec.len(),
            workload.prunable.len(),
            "one WeightExecution per prunable GEMM"
        );
        let mut run = RunCounters::new();
        let prec = cfg.precision();

        let uses_tw = weight_exec
            .iter()
            .any(|e| matches!(e, WeightExecution::TileWise { .. } | WeightExecution::Tew { .. }));

        // Boundary transposes: one at the model entry and one at the exit.
        if uses_tw && cfg.transpose == TransposeStrategy::Boundary {
            if let Some(first) = workload.prunable.first() {
                run.push(self.cost.transpose(first.m, first.k, prec));
            }
            if let Some(last) = workload.prunable.last() {
                run.push(self.cost.transpose(last.m, last.n, prec));
            }
        }

        for (gemm, exec) in workload.prunable.iter().zip(weight_exec) {
            let shape = GemmShape::new(gemm.m, gemm.n, gemm.k);
            let needs_layout =
                matches!(exec, WeightExecution::TileWise { .. } | WeightExecution::Tew { .. });
            if needs_layout && cfg.transpose == TransposeStrategy::PerGemm {
                run.push(self.cost.transpose(gemm.m, gemm.k, prec));
            }
            match exec {
                WeightExecution::Dense => {
                    run.push(self.cost.dense_gemm(shape, cfg.core, prec));
                }
                WeightExecution::Csr { sparsity } => {
                    run.push(self.cost.csr_spmm(shape, *sparsity));
                }
                WeightExecution::Bsr { block_size, block_sparsity } => {
                    run.push(self.cost.bsr_gemm(shape, *block_size, *block_sparsity));
                }
                WeightExecution::TileWise { tiles } => {
                    run.push(self.cost.tw_gemm(gemm.m, gemm.k, gemm.n, tiles, cfg.tw_opts()));
                }
                WeightExecution::Tew { tiles, overlay_nnz } => {
                    run.push(self.cost.tw_gemm(gemm.m, gemm.k, gemm.n, tiles, cfg.tw_opts()));
                    run.push(self.cost.csc_overlay_spmm(gemm.m, *overlay_nnz));
                }
            }
            if needs_layout && cfg.transpose == TransposeStrategy::PerGemm {
                run.push(self.cost.transpose(gemm.m, gemm.n, prec));
            }
        }

        // Activation-activation GEMMs (attention scores/contexts) are always
        // dense on the selected unit.
        for fixed in &workload.fixed_gemms {
            let shape = GemmShape::new(fixed.m, fixed.n, fixed.k);
            run.push(self.cost.dense_gemm(shape, cfg.core, prec));
        }

        // Non-GEMM chains.
        for aux in &workload.aux_ops {
            run.push(self.cost.elementwise_chain(
                &aux.name,
                aux.chain_len,
                aux.elements,
                prec,
                cfg.fuse_non_gemm,
            ));
        }
        run
    }

    /// Prices one isolated weight GEMM of shape `(m, k) x (k, n)` executed
    /// with `exec` — the quantity the per-layer [`crate::AutoPlanner`]
    /// compares across kernel families.  Boundary transposes are charged to
    /// tile-wise layers exactly as [`Self::plan_model`] would charge them,
    /// so the comparison stays conservative about TW's layout overhead.
    pub fn plan_layer(
        &self,
        m: usize,
        k: usize,
        n: usize,
        exec: &WeightExecution,
        cfg: &ExecutionConfig,
    ) -> RunCounters {
        let workload = Workload {
            kind: tw_models::ModelKind::Mlp,
            name: format!("layer ({m}x{k}x{n})"),
            prunable: vec![tw_models::PrunableGemm { name: "layer".to_string(), m, k, n }],
            fixed_gemms: Vec::new(),
            aux_ops: Vec::new(),
        };
        self.plan_model(&workload, std::slice::from_ref(exec), cfg)
    }

    /// Total time spent in GEMM-like kernels (dense GEMM, SpMM, BSR, TW) of
    /// a planned run — the "GEMM" bar of Fig. 15.
    pub fn gemm_time(run: &RunCounters) -> f64 {
        run.kernels().iter().filter(|k| is_gemm_kernel(k)).map(|k| k.time_s).sum()
    }

    /// Total time spent in transpose kernels.
    pub fn transpose_time(run: &RunCounters) -> f64 {
        run.time_matching("transpose")
    }

    /// Total time spent in everything else (the "Others" bar of Fig. 15).
    pub fn other_time(run: &RunCounters) -> f64 {
        run.total_time() - Self::gemm_time(run) - Self::transpose_time(run)
    }
}

fn is_gemm_kernel(k: &KernelProfile) -> bool {
    k.name.contains("gemm") || k.name.contains("spmm")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_gpu_sim::cost::uniform_tiles;
    use tw_models::Workload;

    fn bert() -> Workload {
        Workload::bert_base(8, 128)
    }

    fn tw_execs(workload: &Workload, sparsity: f64, g: usize) -> Vec<WeightExecution> {
        workload
            .prunable
            .iter()
            .map(|p| WeightExecution::TileWise { tiles: uniform_tiles(p.k, p.n, g, sparsity) })
            .collect()
    }

    #[test]
    fn dense_plan_covers_all_ops() {
        let w = bert();
        let planner = ExecutionPlanner::v100();
        let run = planner.plan_dense(&w, &ExecutionConfig::optimized(CoreKind::TensorCore));
        // 72 prunable GEMMs + 24 attention GEMMs + 48 aux chains.
        assert_eq!(run.kernel_count(), 72 + 24 + 48);
        assert!(run.total_time() > 0.0);
    }

    #[test]
    fn non_gemm_share_of_dense_bert_is_plausible() {
        // The paper: ~39% non-GEMM time unfused, ~29% with fusion.
        let w = bert();
        let planner = ExecutionPlanner::v100();
        let unfused = planner.plan_dense(
            &w,
            &ExecutionConfig {
                fuse_non_gemm: false,
                ..ExecutionConfig::optimized(CoreKind::TensorCore)
            },
        );
        let fused = planner.plan_dense(&w, &ExecutionConfig::optimized(CoreKind::TensorCore));
        let share_unfused = ExecutionPlanner::other_time(&unfused) / unfused.total_time();
        let share_fused = ExecutionPlanner::other_time(&fused) / fused.total_time();
        assert!((0.2..=0.55).contains(&share_unfused), "unfused non-GEMM share {share_unfused}");
        assert!(share_fused < share_unfused, "fusion must reduce the non-GEMM share");
    }

    #[test]
    fn tw_plan_is_faster_than_dense_at_75_percent() {
        let w = bert();
        let planner = ExecutionPlanner::v100();
        let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
        let dense = planner.plan_dense(&w, &cfg);
        let tw = planner.plan_model(&w, &tw_execs(&w, 0.75, 128), &cfg);
        let gemm_speedup = ExecutionPlanner::gemm_time(&dense) / ExecutionPlanner::gemm_time(&tw);
        let e2e_speedup = dense.total_time() / tw.total_time();
        assert!(gemm_speedup > 1.5, "GEMM speedup {gemm_speedup}");
        assert!(e2e_speedup > 1.2, "end-to-end speedup {e2e_speedup}");
        assert!(
            e2e_speedup < gemm_speedup,
            "Amdahl: end-to-end speedup must trail the GEMM-only speedup"
        );
    }

    #[test]
    fn csr_and_bsr_plans_are_slower_than_dense() {
        let w = bert();
        let planner = ExecutionPlanner::v100();
        let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
        let dense_t = planner.plan_dense(&w, &cfg);
        let csr: Vec<WeightExecution> =
            w.prunable.iter().map(|_| WeightExecution::Csr { sparsity: 0.75 }).collect();
        let bsr: Vec<WeightExecution> = w
            .prunable
            .iter()
            .map(|_| WeightExecution::Bsr { block_size: 32, block_sparsity: 0.75 })
            .collect();
        let cfg_cuda = ExecutionConfig::optimized(CoreKind::CudaCore);
        let dense_c = planner.plan_dense(&w, &cfg_cuda);
        let csr_run = planner.plan_model(&w, &csr, &cfg_cuda);
        let bsr_run = planner.plan_model(&w, &bsr, &cfg);
        assert!(
            ExecutionPlanner::gemm_time(&csr_run) > ExecutionPlanner::gemm_time(&dense_c),
            "cuSparse EW should lose to dense on CUDA cores"
        );
        assert!(
            ExecutionPlanner::gemm_time(&bsr_run) > ExecutionPlanner::gemm_time(&dense_t),
            "BlockSparse BW should lose to dense on tensor cores"
        );
    }

    #[test]
    fn transpose_strategies_order_correctly() {
        // Fig. 15: w/o transpose is the slowest GEMM; per-GEMM transpose
        // adds ~10% overhead kernels; boundary transpose + fusion is best.
        let w = bert();
        let planner = ExecutionPlanner::v100();
        let execs = tw_execs(&w, 0.75, 128);
        let base = ExecutionConfig::optimized(CoreKind::TensorCore);
        let none = planner.plan_model(
            &w,
            &execs,
            &ExecutionConfig { transpose: TransposeStrategy::None, ..base },
        );
        let per_gemm = planner.plan_model(
            &w,
            &execs,
            &ExecutionConfig { transpose: TransposeStrategy::PerGemm, ..base },
        );
        let boundary = planner.plan_model(&w, &execs, &base);
        assert!(
            ExecutionPlanner::gemm_time(&none) > ExecutionPlanner::gemm_time(&boundary),
            "uncoalesced GEMM must be slower"
        );
        assert!(
            ExecutionPlanner::transpose_time(&per_gemm)
                > ExecutionPlanner::transpose_time(&boundary),
            "per-GEMM transposes must cost more than boundary transposes"
        );
        assert!(boundary.total_time() < per_gemm.total_time());
        assert!(boundary.total_time() < none.total_time());
        // Boundary adds exactly two transpose kernels.
        let transposes = boundary.kernels().iter().filter(|k| k.name.contains("transpose")).count();
        assert_eq!(transposes, 2);
    }

    #[test]
    fn tew_plan_adds_overlay_kernels() {
        let w = bert();
        let planner = ExecutionPlanner::v100();
        let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
        let execs: Vec<WeightExecution> = w
            .prunable
            .iter()
            .map(|p| WeightExecution::Tew {
                tiles: uniform_tiles(p.k, p.n, 128, 0.80),
                overlay_nnz: (0.05 * (p.k * p.n) as f64) as u64,
            })
            .collect();
        let tew_run = planner.plan_model(&w, &execs, &cfg);
        let overlays = tew_run.kernels().iter().filter(|k| k.name.contains("overlay")).count();
        assert_eq!(overlays, 72);
        // The overlay erases most of the tensor-core advantage (Fig. 10b).
        let tw_run = planner.plan_model(&w, &tw_execs(&w, 0.80, 128), &cfg);
        assert!(tew_run.total_time() > tw_run.total_time());
    }

    #[test]
    #[should_panic(expected = "one WeightExecution per prunable GEMM")]
    fn wrong_exec_count_panics() {
        let w = bert();
        let planner = ExecutionPlanner::v100();
        let _ = planner.plan_model(
            &w,
            &[WeightExecution::Dense],
            &ExecutionConfig::optimized(CoreKind::TensorCore),
        );
    }
}
