//! End-to-end evaluation of (model, pattern, sparsity) points.
//!
//! [`ModelEvaluation`] owns one synthetic model instance, its calibrated
//! accuracy proxy and an execution planner; [`ModelEvaluation::evaluate`]
//! prunes the model with a pattern, measures the retained-importance metric
//! and prices the resulting forward pass on the GPU cost model.  Every
//! figure of the paper's evaluation section is produced by sweeping this
//! function.

use crate::planner::{ExecutionConfig, ExecutionPlanner, WeightExecution};
use tw_gpu_sim::{RunCounters, TwTileShape};
use tw_models::{
    AccuracyModel, ModelKind, SyntheticModel, SyntheticModelConfig, TaskKind, Workload,
};
use tw_pruning::{
    bw, ew, tew, tw, ImportanceMethod, ImportanceScores, PatternMask, PruningPattern,
    SparsityTarget, TileWiseConfig,
};

/// The outcome of evaluating one (pattern, sparsity, execution) point.
#[derive(Clone, Debug)]
pub struct SparseModelReport {
    /// The model evaluated.
    pub model: ModelKind,
    /// The task whose metric is reported.
    pub task: TaskKind,
    /// The sparsity pattern.
    pub pattern: PruningPattern,
    /// Requested sparsity.
    pub target_sparsity: f64,
    /// Achieved overall sparsity.
    pub achieved_sparsity: f64,
    /// Task metric of the pruned model (accuracy / F1 / BLEU).
    pub metric: f64,
    /// Metric drop relative to the dense model.
    pub metric_drop: f64,
    /// Time spent in GEMM-like kernels (seconds).
    pub gemm_time_s: f64,
    /// End-to-end forward-pass time (seconds).
    pub total_time_s: f64,
    /// GEMM time of the dense baseline on the same execution unit.
    pub dense_gemm_time_s: f64,
    /// End-to-end time of the dense baseline.
    pub dense_total_time_s: f64,
    /// Full kernel-level counters of the sparse run.
    pub counters: RunCounters,
    /// Full kernel-level counters of the dense baseline.
    pub dense_counters: RunCounters,
}

impl SparseModelReport {
    /// GEMM-only speedup over the dense baseline (>1 means faster).
    pub fn gemm_speedup(&self) -> f64 {
        if self.gemm_time_s <= 0.0 {
            return 0.0;
        }
        self.dense_gemm_time_s / self.gemm_time_s
    }

    /// End-to-end speedup over the dense baseline.
    pub fn end_to_end_speedup(&self) -> f64 {
        if self.total_time_s <= 0.0 {
            return 0.0;
        }
        self.dense_total_time_s / self.total_time_s
    }
}

/// Evaluation harness for one model.
pub struct ModelEvaluation {
    kind: ModelKind,
    task: TaskKind,
    workload: Workload,
    synthetic: SyntheticModel,
    scores: Vec<ImportanceScores>,
    accuracy: AccuracyModel,
    planner: ExecutionPlanner,
}

impl ModelEvaluation {
    /// Builds the harness for a model with the default synthetic-model
    /// configuration (dimension divisor 8).
    pub fn new(kind: ModelKind, seed: u64) -> Self {
        Self::with_divisor(kind, seed, 8)
    }

    /// Builds the harness with an explicit dimension divisor (larger values
    /// are faster but coarser; tests use 16).
    pub fn with_divisor(kind: ModelKind, seed: u64, dim_divisor: usize) -> Self {
        let workload = Workload::paper_config(kind);
        let mut cfg = SyntheticModelConfig::default_with_seed(seed);
        cfg.dim_divisor = dim_divisor;
        let synthetic = SyntheticModel::generate(workload.clone(), cfg);
        let scores = synthetic.layers().importance(ImportanceMethod::Taylor);
        let task = TaskKind::primary_for(kind);
        let accuracy = AccuracyModel::calibrate(task, &scores);
        Self {
            kind,
            task,
            workload,
            synthetic,
            scores,
            accuracy,
            planner: ExecutionPlanner::v100(),
        }
    }

    /// The model kind.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The task whose metric is reported.
    pub fn task(&self) -> TaskKind {
        self.task
    }

    /// The workload (full-size shapes).
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The calibrated accuracy proxy.
    pub fn accuracy_model(&self) -> &AccuracyModel {
        &self.accuracy
    }

    /// The execution planner.
    pub fn planner(&self) -> &ExecutionPlanner {
        &self.planner
    }

    /// The dense baseline run under a given execution configuration.
    pub fn dense_run(&self, cfg: &ExecutionConfig) -> RunCounters {
        self.planner.plan_dense(&self.workload, cfg)
    }

    /// Dense-model metric (no pruning).
    pub fn dense_metric(&self) -> f64 {
        self.task.dense_metric()
    }

    /// Evaluates one (pattern, sparsity) point under the given execution
    /// configuration.
    pub fn evaluate(
        &self,
        pattern: PruningPattern,
        sparsity: f64,
        cfg: &ExecutionConfig,
    ) -> SparseModelReport {
        let (masks, execs) = self.prune_and_map(pattern, sparsity);

        let achieved = {
            let total: usize = masks.iter().map(|m| m.keep().len()).sum();
            let pruned: usize = masks.iter().map(|m| m.pruned_count()).sum();
            pruned as f64 / total.max(1) as f64
        };
        let metric = self.accuracy.metric_for_masks(&self.scores, &masks);

        let run = self.planner.plan_model(&self.workload, &execs, cfg);
        let dense = self.dense_run(cfg);

        SparseModelReport {
            model: self.kind,
            task: self.task,
            pattern,
            target_sparsity: sparsity,
            achieved_sparsity: achieved,
            metric,
            metric_drop: self.task.dense_metric() - metric,
            gemm_time_s: ExecutionPlanner::gemm_time(&run),
            total_time_s: run.total_time(),
            dense_gemm_time_s: ExecutionPlanner::gemm_time(&dense),
            dense_total_time_s: dense.total_time(),
            counters: run,
            dense_counters: dense,
        }
    }

    /// Prunes the synthetic (scaled) model with the pattern and maps the
    /// result onto full-size execution forms.
    fn prune_and_map(
        &self,
        pattern: PruningPattern,
        sparsity: f64,
    ) -> (Vec<PatternMask>, Vec<WeightExecution>) {
        let target = SparsityTarget::new(sparsity.clamp(0.0, 0.9999));
        match pattern {
            PruningPattern::Dense => {
                let masks: Vec<PatternMask> =
                    self.scores.iter().map(|s| PatternMask::keep_all(s.rows(), s.cols())).collect();
                let execs = vec![WeightExecution::Dense; self.workload.prunable.len()];
                (masks, execs)
            }
            PruningPattern::ElementWise => {
                let masks = ew::prune_global(&self.scores, target);
                let execs =
                    masks.iter().map(|m| WeightExecution::Csr { sparsity: m.sparsity() }).collect();
                (masks, execs)
            }
            PruningPattern::VectorWise { vector_size } => {
                // VW's vector and BW's block sizes are kept at their nominal
                // values on the scaled matrices: relative to the matrix they
                // become *more* constrained, which is the conservative
                // direction for the baselines the paper compares against.
                let masks = tw_pruning::vw::prune_all(&self.scores, vector_size, target);
                let execs =
                    masks.iter().map(|m| WeightExecution::Csr { sparsity: m.sparsity() }).collect();
                (masks, execs)
            }
            PruningPattern::BlockWise { block_size } => {
                let masks = bw::prune_global(&self.scores, block_size, target);
                let execs = masks
                    .iter()
                    .map(|m| WeightExecution::Bsr { block_size, block_sparsity: m.sparsity() })
                    .collect();
                (masks, execs)
            }
            PruningPattern::TileWise { granularity } => {
                let scaled_g = scale_unit(granularity, self.divisor());
                let tw_masks = tw::prune_global(
                    &self.scores,
                    &TileWiseConfig::with_granularity(scaled_g),
                    target,
                    None,
                );
                let masks: Vec<PatternMask> =
                    tw_masks.iter().map(|m| m.to_pattern_mask()).collect();
                let execs = tw_masks
                    .iter()
                    .enumerate()
                    .map(|(i, m)| WeightExecution::TileWise { tiles: self.scale_tiles(i, m) })
                    .collect();
                (masks, execs)
            }
            PruningPattern::TileElementWise { granularity, delta } => {
                let scaled_g = scale_unit(granularity, self.divisor());
                let tew_masks = tew::prune_global(
                    &self.scores,
                    &TileWiseConfig::with_granularity(scaled_g),
                    target,
                    delta,
                    None,
                );
                let masks: Vec<PatternMask> = tew_masks.iter().map(|m| m.combined_mask()).collect();
                let execs = tew_masks
                    .iter()
                    .enumerate()
                    .map(|(i, m)| {
                        let full_elems = self.workload.prunable[i].k * self.workload.prunable[i].n;
                        let scaled_elems = {
                            let (r, c) = self.synthetic.scaled_shape(i);
                            r * c
                        };
                        let scale = full_elems as f64 / scaled_elems.max(1) as f64;
                        WeightExecution::Tew {
                            tiles: self.scale_tiles(i, m.tw()),
                            overlay_nnz: (m.overlay_count() as f64 * scale) as u64,
                        }
                    })
                    .collect();
                (masks, execs)
            }
        }
    }

    /// The (uniform) dimension divisor of the synthetic model.
    fn divisor(&self) -> usize {
        self.synthetic.config().dim_divisor
    }

    /// Maps a scaled tile-wise mask onto full-size tile shapes: each tile's
    /// surviving row/column counts are scaled by the ratio between the full
    /// and the scaled matrix dimensions.
    fn scale_tiles(&self, i: usize, mask: &tw_pruning::TileWiseMask) -> Vec<TwTileShape> {
        let row_scale = self.synthetic.row_scale(i);
        let col_scale = self.synthetic.col_scale(i);
        let full_k = self.workload.prunable[i].k;
        mask.tiles()
            .iter()
            .filter(|t| t.kept_cols() > 0)
            .map(|t| TwTileShape {
                kept_rows: ((t.kept_rows() as f64 * row_scale).round() as usize).clamp(1, full_k),
                kept_cols: ((t.kept_cols() as f64 * col_scale).round() as usize).max(1),
            })
            .collect()
    }
}

fn scale_unit(unit: usize, divisor: usize) -> usize {
    (unit / divisor.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_gpu_sim::CoreKind;

    fn harness() -> ModelEvaluation {
        // Divisor 16 keeps the 72-matrix BERT sweep fast in unit tests.
        ModelEvaluation::with_divisor(ModelKind::BertBase, 3, 16)
    }

    #[test]
    fn dense_pattern_reports_dense_metrics() {
        let h = harness();
        let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
        let report = h.evaluate(PruningPattern::Dense, 0.0, &cfg);
        assert_eq!(report.achieved_sparsity, 0.0);
        assert!((report.metric - h.dense_metric()).abs() < 1e-9);
        assert!((report.gemm_speedup() - 1.0).abs() < 1e-9);
        assert!((report.end_to_end_speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tw_at_75_is_faster_and_nearly_as_accurate() {
        let h = harness();
        let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
        let report = h.evaluate(PruningPattern::TileWise { granularity: 128 }, 0.75, &cfg);
        assert!((report.achieved_sparsity - 0.75).abs() < 0.05);
        assert!(report.gemm_speedup() > 1.5, "GEMM speedup {}", report.gemm_speedup());
        assert!(report.end_to_end_speedup() > 1.2, "e2e speedup {}", report.end_to_end_speedup());
        assert!(report.metric_drop < 0.06, "metric drop {}", report.metric_drop);
    }

    #[test]
    fn ew_is_accurate_but_slow() {
        let h = harness();
        let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
        let ew = h.evaluate(PruningPattern::ElementWise, 0.75, &cfg);
        let tw = h.evaluate(PruningPattern::TileWise { granularity: 128 }, 0.75, &cfg);
        assert!(ew.metric >= tw.metric - 1e-9, "EW must be at least as accurate as TW");
        assert!(
            ew.gemm_speedup() < 1.0,
            "EW on cuSparse must be slower than the dense tensor-core baseline"
        );
        assert!(tw.gemm_speedup() > ew.gemm_speedup());
    }

    #[test]
    fn bw_is_both_slower_and_less_accurate_than_tw() {
        let h = harness();
        let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
        let bw = h.evaluate(PruningPattern::BlockWise { block_size: 32 }, 0.75, &cfg);
        let tw = h.evaluate(PruningPattern::TileWise { granularity: 128 }, 0.75, &cfg);
        assert!(tw.metric >= bw.metric - 1e-9);
        assert!(tw.gemm_speedup() > bw.gemm_speedup());
        assert!(bw.gemm_speedup() < 1.0, "BW at 75% must not beat dense tensor cores");
    }

    #[test]
    fn tew_recovers_accuracy_but_pays_latency_on_tensor_cores() {
        let h = harness();
        let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
        let tw = h.evaluate(PruningPattern::TileWise { granularity: 128 }, 0.75, &cfg);
        let tew = h.evaluate(
            PruningPattern::TileElementWise { granularity: 128, delta: 0.05 },
            0.75,
            &cfg,
        );
        assert!(tew.metric >= tw.metric, "TEW must be at least as accurate as TW");
        assert!(
            tew.total_time_s > tw.total_time_s,
            "the CUDA-core overlay must cost time on the tensor-core path"
        );
    }

    #[test]
    fn cuda_core_speedups_exceed_tensor_core_speedups() {
        // Fig. 14: TW's relative speedup is larger on CUDA cores (2.86x avg)
        // than on tensor cores (1.95x avg) because the dense baseline is
        // weaker there.
        let h = harness();
        let t = h.evaluate(
            PruningPattern::TileWise { granularity: 128 },
            0.75,
            &ExecutionConfig::optimized(CoreKind::TensorCore),
        );
        let c = h.evaluate(
            PruningPattern::TileWise { granularity: 128 },
            0.75,
            &ExecutionConfig::optimized(CoreKind::CudaCore),
        );
        assert!(
            c.gemm_speedup() > t.gemm_speedup() * 0.9,
            "CUDA-core speedup {} should be at least comparable to tensor-core speedup {}",
            c.gemm_speedup(),
            t.gemm_speedup()
        );
    }

    #[test]
    fn speedup_grows_with_sparsity() {
        let h = harness();
        let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
        let mut last = 0.0;
        for s in [0.5, 0.75, 0.9, 0.99] {
            let r = h.evaluate(PruningPattern::TileWise { granularity: 128 }, s, &cfg);
            assert!(
                r.gemm_speedup() > last,
                "speedup should grow with sparsity: {} at {s}",
                r.gemm_speedup()
            );
            last = r.gemm_speedup();
        }
        assert!(last > 4.0, "speedup at 99% should be large, got {last}");
    }

    #[test]
    fn vgg_and_nmt_harnesses_work() {
        for kind in [ModelKind::Vgg16, ModelKind::Nmt] {
            let h = ModelEvaluation::with_divisor(kind, 5, 16);
            let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
            let r = h.evaluate(PruningPattern::TileWise { granularity: 128 }, 0.75, &cfg);
            assert!(r.achieved_sparsity > 0.6, "{kind:?} achieved {}", r.achieved_sparsity);
            assert!(r.gemm_speedup() > 1.0, "{kind:?} speedup {}", r.gemm_speedup());
            assert!(r.metric > 0.0);
        }
    }
}
