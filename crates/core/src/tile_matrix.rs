//! The executable tile-wise sparse matrix.
//!
//! After pruning, each weight tile keeps only its surviving rows and columns
//! as a small dense payload (the offline pre-processing of Fig. 7: "We
//! remove the pruned rows and columns in the weight matrix tile, which can
//! be done offline before the model inference starts"), plus the two mask
//! vectors the masked GEMM kernel consumes at run time.

use tw_gpu_sim::TwTileShape;
use tw_pruning::{TileWiseMask, TwTile};
use tw_sparse::RowColMask;
use tw_tensor::{gemm, Matrix};

/// One pre-processed weight tile: compacted payload plus masks.
#[derive(Clone, Debug, PartialEq)]
pub struct CompactTile {
    /// Original column indices of the tile's surviving columns.
    col_indices: Vec<usize>,
    /// Keep mask over the K dimension.
    row_keep: Vec<bool>,
    /// Dense payload of shape `kept_rows x kept_cols` (surviving rows and
    /// columns only, in original relative order).
    payload: Matrix,
}

impl CompactTile {
    /// Number of surviving rows.
    pub fn kept_rows(&self) -> usize {
        self.payload.rows()
    }

    /// Number of surviving columns.
    pub fn kept_cols(&self) -> usize {
        self.payload.cols()
    }

    /// The compacted payload.
    pub fn payload(&self) -> &Matrix {
        &self.payload
    }

    /// The run-time masks of this tile (`mask_k`, `mask_n` of Listing 1).
    pub fn masks(&self) -> RowColMask {
        // The column mask is expressed over the tile's own columns; all of
        // them survive (column pruning already removed the others), so the
        // kernel-level mask_n is all-true over kept columns.
        RowColMask::new(self.row_keep.clone(), vec![true; self.col_indices.len()])
    }
}

/// A weight matrix pruned with the tile-wise pattern, stored in its
/// executable (pre-compacted) form.
#[derive(Clone, Debug, PartialEq)]
pub struct TileWiseMatrix {
    k: usize,
    n: usize,
    granularity: usize,
    tiles: Vec<CompactTile>,
}

impl TileWiseMatrix {
    /// Builds the executable representation from the original dense weights
    /// and a tile-wise pruning decision.
    ///
    /// # Panics
    /// Panics if the mask's dimensions do not match the weight matrix.
    pub fn from_mask(weights: &Matrix, mask: &TileWiseMask) -> Self {
        assert_eq!(weights.shape(), (mask.k(), mask.n()), "weights shape must match the mask");
        let tiles = mask
            .tiles()
            .iter()
            .map(|tile: &TwTile| {
                let kept_rows = tile.kept_row_indices();
                let payload = weights.select_rows(&kept_rows).select_cols(&tile.col_indices);
                CompactTile {
                    col_indices: tile.col_indices.clone(),
                    row_keep: tile.row_keep.clone(),
                    payload,
                }
            })
            .collect();
        Self { k: mask.k(), n: mask.n(), granularity: mask.granularity(), tiles }
    }

    /// Original K dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Original N dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tiling granularity G.
    pub fn granularity(&self) -> usize {
        self.granularity
    }

    /// The pre-processed tiles.
    pub fn tiles(&self) -> &[CompactTile] {
        &self.tiles
    }

    /// Number of surviving weight elements.
    pub fn kept_elements(&self) -> usize {
        self.tiles.iter().map(|t| t.payload.len()).sum()
    }

    /// Achieved element sparsity.
    pub fn sparsity(&self) -> f64 {
        let total = self.k * self.n;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.kept_elements() as f64 / total as f64
    }

    /// Storage footprint in bytes: compacted payloads plus int32 masks.
    pub fn storage_bytes(&self, elem_size: usize) -> usize {
        self.tiles
            .iter()
            .map(|t| t.payload.len() * elem_size + 4 * (t.row_keep.len() + t.col_indices.len()))
            .sum()
    }

    /// Tile shapes for the GPU cost model.
    pub fn tile_shapes(&self) -> Vec<TwTileShape> {
        self.tiles
            .iter()
            .map(|t| TwTileShape { kept_rows: t.kept_rows(), kept_cols: t.kept_cols() })
            .collect()
    }

    /// Reconstructs the (zero-filled) dense weight matrix — the masked dense
    /// matrix the pruned model is mathematically equivalent to.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.k, self.n);
        for tile in &self.tiles {
            let kept_rows: Vec<usize> = tile
                .row_keep
                .iter()
                .enumerate()
                .filter_map(|(i, &keep)| keep.then_some(i))
                .collect();
            for (pr, &r) in kept_rows.iter().enumerate() {
                for (pc, &c) in tile.col_indices.iter().enumerate() {
                    out.set(r, c, tile.payload.get(pr, pc));
                }
            }
        }
        out
    }

    /// Multiplies a dense activation matrix by this sparse weight matrix:
    /// `C (m x n) = A (m x k) * W_tw (k x n)`.
    ///
    /// This is the functional equivalent of the batched masked GEMM of
    /// Fig. 7: each tile contributes a small dense GEMM over its surviving
    /// rows/columns, scattered into the output at the tile's original column
    /// positions.
    pub fn matmul(&self, a: &Matrix) -> Matrix {
        assert_eq!(a.cols(), self.k, "activation K must match the weight matrix");
        let m = a.rows();
        let mut out = Matrix::zeros(m, self.n);
        for tile in &self.tiles {
            if tile.kept_rows() == 0 || tile.kept_cols() == 0 {
                continue;
            }
            let kept_rows: Vec<usize> = tile
                .row_keep
                .iter()
                .enumerate()
                .filter_map(|(i, &keep)| keep.then_some(i))
                .collect();
            // Gather the surviving activation columns (this is the step the
            // transposed layout keeps coalesced on the GPU).
            let a_tile = a.select_cols(&kept_rows);
            let c_tile = gemm(&a_tile, &tile.payload);
            for r in 0..m {
                for (pc, &c) in tile.col_indices.iter().enumerate() {
                    out.set(r, c, out.get(r, c) + c_tile.get(r, pc));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_pruning::{tw, ImportanceScores, SparsityTarget, TileWiseConfig};
    use tw_tensor::DEFAULT_TOL;

    fn pruned_pair(seed: u64, sparsity: f64, g: usize) -> (Matrix, TileWiseMask) {
        let weights = Matrix::random_normal(96, 160, 1.0, seed);
        let scores = ImportanceScores::magnitude(&weights);
        let mask =
            tw::prune(&scores, &TileWiseConfig::with_granularity(g), SparsityTarget::new(sparsity));
        (weights, mask)
    }

    #[test]
    fn dense_reconstruction_matches_masked_weights() {
        let (weights, mask) = pruned_pair(1, 0.6, 32);
        let twm = TileWiseMatrix::from_mask(&weights, &mask);
        let expected = mask.to_pattern_mask().apply(&weights);
        assert_eq!(twm.to_dense(), expected);
        assert!((twm.sparsity() - mask.sparsity()).abs() < 1e-12);
    }

    #[test]
    fn matmul_equals_masked_dense_gemm() {
        for (seed, sparsity, g) in [(2, 0.3, 16), (3, 0.75, 32), (4, 0.9, 64), (5, 0.5, 160)] {
            let (weights, mask) = pruned_pair(seed, sparsity, g);
            let twm = TileWiseMatrix::from_mask(&weights, &mask);
            let a = Matrix::random_uniform(24, 96, 1.0, seed + 100);
            let reference = gemm(&a, &mask.to_pattern_mask().apply(&weights));
            let result = twm.matmul(&a);
            assert!(
                result.approx_eq(&reference, DEFAULT_TOL),
                "mismatch at sparsity {sparsity} G={g}"
            );
        }
    }

    #[test]
    fn tile_shapes_match_mask() {
        let (weights, mask) = pruned_pair(6, 0.7, 32);
        let twm = TileWiseMatrix::from_mask(&weights, &mask);
        let shapes = twm.tile_shapes();
        assert_eq!(shapes.len(), mask.tiles().len());
        for (shape, tile) in shapes.iter().zip(mask.tiles()) {
            assert_eq!(shape.kept_rows, tile.kept_rows());
            assert_eq!(shape.kept_cols, tile.kept_cols());
        }
    }

    #[test]
    fn storage_shrinks_with_sparsity() {
        let (weights, low) = pruned_pair(7, 0.25, 32);
        let (_, high) = pruned_pair(7, 0.85, 32);
        let twm_low = TileWiseMatrix::from_mask(&weights, &low);
        let twm_high = TileWiseMatrix::from_mask(&weights, &high);
        assert!(twm_high.storage_bytes(2) < twm_low.storage_bytes(2));
        // Compacted storage (plus masks) is far below the dense footprint at
        // high sparsity.
        assert!(twm_high.storage_bytes(2) < 96 * 160 * 2);
    }

    #[test]
    fn tile_masks_expose_row_and_col_vectors() {
        let (weights, mask) = pruned_pair(8, 0.5, 32);
        let twm = TileWiseMatrix::from_mask(&weights, &mask);
        for tile in twm.tiles() {
            let masks = tile.masks();
            assert_eq!(masks.kept_rows(), tile.kept_rows());
            assert_eq!(masks.kept_cols(), tile.kept_cols());
        }
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn shape_mismatch_panics() {
        let (_, mask) = pruned_pair(9, 0.5, 32);
        let wrong = Matrix::zeros(10, 10);
        let _ = TileWiseMatrix::from_mask(&wrong, &mask);
    }

    #[test]
    #[should_panic(expected = "activation K must match")]
    fn matmul_rejects_bad_activation_shape() {
        let (weights, mask) = pruned_pair(10, 0.5, 32);
        let twm = TileWiseMatrix::from_mask(&weights, &mask);
        let _ = twm.matmul(&Matrix::zeros(4, 7));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tw_pruning::{tw, ImportanceScores, SparsityTarget, TileWiseConfig};
    use tw_tensor::DEFAULT_TOL;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The executable TW matrix is always functionally identical to the
        /// masked dense matrix, for arbitrary shapes, granularities and
        /// sparsities.
        #[test]
        fn matmul_always_matches_masked_dense(
            k in 8usize..48, n in 8usize..48, m in 1usize..12,
            g in 1usize..32, sparsity in 0.05f64..0.9, seed in any::<u64>(),
        ) {
            let weights = Matrix::random_uniform(k, n, 1.0, seed);
            let scores = ImportanceScores::magnitude(&weights);
            let mask = tw::prune(
                &scores,
                &TileWiseConfig::with_granularity(g),
                SparsityTarget::new(sparsity),
            );
            let twm = TileWiseMatrix::from_mask(&weights, &mask);
            let a = Matrix::random_uniform(m, k, 1.0, seed.wrapping_add(1));
            let reference = gemm(&a, &mask.to_pattern_mask().apply(&weights));
            prop_assert!(twm.matmul(&a).approx_eq(&reference, DEFAULT_TOL));
        }
    }
}
