//! Figure reproduction drivers.
//!
//! One generator per figure of the paper's evaluation section.  Each
//! function returns plain data rows; the `tw-bench` binaries print them as
//! CSV so EXPERIMENTS.md can record paper-vs-measured values.

use crate::evaluate::{ModelEvaluation, SparseModelReport};
use crate::planner::{ExecutionConfig, ExecutionPlanner, TransposeStrategy};
use tw_gpu_sim::CoreKind;
use tw_models::{ModelKind, SyntheticModel, SyntheticModelConfig, Workload};
use tw_pruning::{analysis, ew, ImportanceMethod, PruningPattern, SparsityTarget};

/// Default synthetic-model seed used by every figure so results are
/// reproducible run to run.
pub const FIGURE_SEED: u64 = 2020;

/// Default dimension divisor for figure generation (full fidelity would use
/// 1; 8 keeps a full figure sweep in seconds).
pub const FIGURE_DIVISOR: usize = 8;

/// One bar of Fig. 3: a (model, configuration) pair with its sparsity and
/// execution time.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// Model name.
    pub model: &'static str,
    /// Configuration label (`dense-T`, `dense-C`, `ew`, `vw16`, `bw32`).
    pub config: String,
    /// Weight sparsity of the configuration (0 for dense).
    pub sparsity: f64,
    /// GEMM execution time in milliseconds.
    pub time_ms: f64,
}

/// Fig. 3: sparsity and execution time of dense and baseline sparse models
/// (VGG and BERT).  EW/VW run through cuSparse on CUDA cores, BW through
/// BlockSparse on tensor cores; none of them should beat their dense
/// baseline.
pub fn fig03_baseline_patterns() -> Vec<Fig3Row> {
    let mut rows = Vec::new();
    for (kind, label) in [(ModelKind::Vgg16, "VGG"), (ModelKind::BertBase, "BERT")] {
        let h = ModelEvaluation::with_divisor(kind, FIGURE_SEED, FIGURE_DIVISOR);
        let tensor = ExecutionConfig::optimized(CoreKind::TensorCore);
        let cuda = ExecutionConfig::optimized(CoreKind::CudaCore);
        let dense_t = h.dense_run(&tensor);
        let dense_c = h.dense_run(&cuda);
        rows.push(Fig3Row {
            model: label,
            config: "dense-T".into(),
            sparsity: 0.0,
            time_ms: ExecutionPlanner::gemm_time(&dense_t) * 1e3,
        });
        rows.push(Fig3Row {
            model: label,
            config: "dense-C".into(),
            sparsity: 0.0,
            time_ms: ExecutionPlanner::gemm_time(&dense_c) * 1e3,
        });
        // Iso-accuracy sparsities (within ~1% of dense): EW can go sparser
        // than the structured patterns.
        let points = [
            (PruningPattern::ElementWise, 0.80, &cuda),
            (PruningPattern::VectorWise { vector_size: 16 }, 0.70, &cuda),
            (PruningPattern::BlockWise { block_size: 32 }, 0.55, &tensor),
        ];
        for (pattern, sparsity, cfg) in points {
            let r = h.evaluate(pattern, sparsity, cfg);
            rows.push(Fig3Row {
                model: label,
                config: pattern.label(),
                sparsity: r.achieved_sparsity,
                time_ms: r.gemm_time_s * 1e3,
            });
        }
    }
    rows
}

/// Fig. 5: per-weight-matrix sparsity of BERT after global EW pruning at
/// 75%.  Returns one sparsity value per weight-matrix index (72 values).
pub fn fig05_per_layer_sparsity() -> Vec<f64> {
    let model = SyntheticModel::generate(
        Workload::bert_base(8, 128),
        SyntheticModelConfig::default_with_seed(FIGURE_SEED),
    );
    let scores = model.layers().importance(ImportanceMethod::Taylor);
    let masks = ew::prune_global(&scores, SparsityTarget::new(0.75));
    analysis::per_matrix_sparsity(&masks)
}

/// One CDF series of Fig. 6.
#[derive(Clone, Debug)]
pub struct Fig6Series {
    /// Series label (`bw8x8`, `bw32x32`, `tw-g64`).
    pub label: &'static str,
    /// CDF points (zero-ratio, cumulative probability).
    pub points: Vec<(f64, f64)>,
}

/// Fig. 6: cumulative distribution of the zero-element ratio inside BW
/// blocks (8x8, 32x32) and TW row vectors (G = 64), measured on a 75%
/// EW-pruned BERT.  (Unit sizes are scaled by the synthetic model's
/// dimension divisor so they correspond to the paper's units on the full
/// matrices.)
pub fn fig06_zero_cdf() -> Vec<Fig6Series> {
    let model = SyntheticModel::generate(
        Workload::bert_base(8, 128),
        SyntheticModelConfig::default_with_seed(FIGURE_SEED),
    );
    let scores = model.layers().importance(ImportanceMethod::Taylor);
    let masks = ew::prune_global(&scores, SparsityTarget::new(0.75));
    let d = FIGURE_DIVISOR;
    let shapes = [
        ("bw8x8", analysis::UnitShape::Block { size: (8 / d).max(1) }),
        ("bw32x32", analysis::UnitShape::Block { size: (32 / d).max(2) }),
        ("tw-g64", analysis::UnitShape::RowVector { g: (64 / d).max(2) }),
    ];
    shapes
        .into_iter()
        .map(|(label, shape)| {
            // Aggregate the CDF over all 72 matrices.
            let mut ratios = Vec::new();
            for mask in &masks {
                ratios.extend(analysis::unit_zero_ratios(mask, shape));
            }
            let n = ratios.len().max(1) as f64;
            let points = (0..=20)
                .map(|i| {
                    let x = i as f64 / 20.0;
                    let c = ratios.iter().filter(|&&r| r <= x + 1e-12).count() as f64 / n;
                    (x, c)
                })
                .collect();
            Fig6Series { label, points }
        })
        .collect()
}

/// One point of the Fig. 9 / Fig. 12 / Fig. 14 sweeps.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Pattern label.
    pub pattern: String,
    /// Target sparsity.
    pub sparsity: f64,
    /// Task metric.
    pub metric: f64,
    /// GEMM latency normalised to the dense baseline (1.0 = dense; lower is
    /// faster).
    pub normalized_latency: f64,
    /// GEMM speedup over dense (1 / normalised latency).
    pub gemm_speedup: f64,
    /// End-to-end speedup over dense.
    pub end_to_end_speedup: f64,
}

fn sweep_point(r: &SparseModelReport) -> SweepPoint {
    SweepPoint {
        pattern: r.pattern.label(),
        sparsity: r.target_sparsity,
        metric: r.metric,
        normalized_latency: if r.dense_gemm_time_s > 0.0 {
            r.gemm_time_s / r.dense_gemm_time_s
        } else {
            0.0
        },
        gemm_speedup: r.gemm_speedup(),
        end_to_end_speedup: r.end_to_end_speedup(),
    }
}

/// Fig. 9: the TW design space on BERT/MNLI — accuracy (9a) and tensor-core
/// latency (9b) versus sparsity for EW, TW with G in {8, 32, 64, 128} and BW
/// with blocks {8, 32, 64}.
pub fn fig09_design_space(sparsities: &[f64]) -> Vec<SweepPoint> {
    let h = ModelEvaluation::with_divisor(ModelKind::BertBase, FIGURE_SEED, FIGURE_DIVISOR);
    let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
    let mut patterns = vec![PruningPattern::ElementWise];
    for g in [8, 32, 64, 128] {
        patterns.push(PruningPattern::TileWise { granularity: g });
    }
    for b in [8, 32, 64] {
        patterns.push(PruningPattern::BlockWise { block_size: b });
    }
    let mut rows = Vec::new();
    for &s in sparsities {
        for &p in &patterns {
            rows.push(sweep_point(&h.evaluate(p, s, &cfg)));
        }
    }
    rows
}

/// One row of Fig. 10: a TEW configuration at 75% sparsity.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    /// Configuration label (`dense`, `tw128`, `tew128-1.0%`, ...).
    pub config: String,
    /// Task metric.
    pub metric: f64,
    /// GEMM latency on tensor cores normalised to dense CUDA cores.
    pub tensor_latency_norm: f64,
    /// GEMM latency on CUDA cores normalised to dense CUDA cores.
    pub cuda_latency_norm: f64,
}

/// Fig. 10: accuracy and latency of TEW at 75% sparsity for δ in
/// {1%, 2.5%, 5%, 10%, 15%}, on both tensor and CUDA cores, all normalised
/// to the dense model on CUDA cores.
pub fn fig10_tew_delta() -> Vec<Fig10Row> {
    let h = ModelEvaluation::with_divisor(ModelKind::BertBase, FIGURE_SEED, FIGURE_DIVISOR);
    let tensor = ExecutionConfig::optimized(CoreKind::TensorCore);
    let cuda = ExecutionConfig::optimized(CoreKind::CudaCore);
    let dense_cuda_gemm = ExecutionPlanner::gemm_time(&h.dense_run(&cuda));
    let dense_tensor_gemm = ExecutionPlanner::gemm_time(&h.dense_run(&tensor));

    let mut rows = vec![Fig10Row {
        config: "dense".into(),
        metric: h.dense_metric(),
        tensor_latency_norm: dense_tensor_gemm / dense_cuda_gemm,
        cuda_latency_norm: 1.0,
    }];
    let mut configs = vec![PruningPattern::TileWise { granularity: 128 }];
    for delta in [0.01, 0.025, 0.05, 0.10, 0.15] {
        configs.push(PruningPattern::TileElementWise { granularity: 128, delta });
    }
    for p in configs {
        let rt = h.evaluate(p, 0.75, &tensor);
        let rc = h.evaluate(p, 0.75, &cuda);
        rows.push(Fig10Row {
            config: p.label(),
            metric: rt.metric,
            tensor_latency_norm: rt.gemm_time_s / dense_cuda_gemm,
            cuda_latency_norm: rc.gemm_time_s / dense_cuda_gemm,
        });
    }
    rows
}

/// One row of Fig. 11: scalability of TW speedup with sparsity, plus the
/// performance counters.
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// TW sparsity (percent of weights pruned).
    pub sparsity: f64,
    /// GEMM latency speedup over the dense tensor-core baseline.
    pub speedup: f64,
    /// Global memory load transactions, normalised to the dense baseline.
    pub load_transactions_norm: f64,
    /// Global memory store transactions, normalised to the dense baseline.
    pub store_transactions_norm: f64,
    /// FLOPS efficiency (achieved / tensor-core peak).
    pub flops_efficiency: f64,
}

/// Fig. 11: TW-128 speedup and counters on BERT from 0% to 99% sparsity.
pub fn fig11_scalability(sparsities: &[f64]) -> Vec<Fig11Row> {
    let h = ModelEvaluation::with_divisor(ModelKind::BertBase, FIGURE_SEED, FIGURE_DIVISOR);
    let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
    let dense = h.dense_run(&cfg);
    let dense_totals = dense.totals();
    sparsities
        .iter()
        .map(|&s| {
            let r = h.evaluate(PruningPattern::TileWise { granularity: 128 }, s, &cfg);
            let totals = r.counters.totals();
            Fig11Row {
                sparsity: s,
                speedup: r.gemm_speedup(),
                load_transactions_norm: totals.load_transactions as f64
                    / dense_totals.load_transactions.max(1) as f64,
                store_transactions_norm: totals.store_transactions as f64
                    / dense_totals.store_transactions.max(1) as f64,
                flops_efficiency: r.counters.flops_efficiency(h.planner().cost_model().device()),
            }
        })
        .collect()
}

/// Fig. 12: accuracy of every pattern on every model/task across sparsity
/// levels.  Returns (model, task, points).
pub fn fig12_accuracy_all_models(sparsities: &[f64]) -> Vec<(String, String, Vec<SweepPoint>)> {
    let mut out = Vec::new();
    for kind in [ModelKind::BertBase, ModelKind::Vgg16, ModelKind::Nmt] {
        let h = ModelEvaluation::with_divisor(kind, FIGURE_SEED, FIGURE_DIVISOR);
        let cfg = ExecutionConfig::optimized(CoreKind::TensorCore);
        let patterns = [
            PruningPattern::ElementWise,
            PruningPattern::TileWise { granularity: 128 },
            PruningPattern::TileElementWise { granularity: 128, delta: 0.05 },
            PruningPattern::VectorWise { vector_size: 16 },
            PruningPattern::BlockWise { block_size: 32 },
        ];
        let mut points = Vec::new();
        for &s in sparsities {
            for &p in &patterns {
                points.push(sweep_point(&h.evaluate(p, s, &cfg)));
            }
        }
        out.push((kind.name().to_string(), h.task().name().to_string(), points));
    }
    out
}

/// Fig. 13: down-sampled sparsity heatmaps of BERT layer-0's query weight
/// matrix under EW, VW, BW and TW at 75% sparsity.  Returns (pattern label,
/// grid) pairs; each grid cell is the local sparsity in `[0, 1]`.
pub fn fig13_heatmaps(grid: usize) -> Vec<(String, Vec<Vec<f64>>)> {
    let model = SyntheticModel::generate(
        Workload::bert_base(8, 128),
        SyntheticModelConfig::default_with_seed(FIGURE_SEED),
    );
    let scores = model.layers().importance(ImportanceMethod::Taylor);
    let target = SparsityTarget::new(0.75);
    let d = FIGURE_DIVISOR;

    let ew_masks = ew::prune_global(&scores, target);
    let vw_masks = tw_pruning::vw::prune_all(&scores, (16 / d).max(2), target);
    let bw_masks = tw_pruning::bw::prune_global(&scores, (32 / d).max(2), target);
    let tw_masks = tw_pruning::tw::prune_global(
        &scores,
        &tw_pruning::TileWiseConfig::with_granularity((128 / d).max(2)),
        target,
        None,
    );

    // Layer 0's query projection is weight matrix index 0.
    vec![
        ("ew".to_string(), analysis::sparsity_heatmap(&ew_masks[0], grid)),
        ("vw16".to_string(), analysis::sparsity_heatmap(&vw_masks[0], grid)),
        ("bw32".to_string(), analysis::sparsity_heatmap(&bw_masks[0], grid)),
        ("tw128".to_string(), analysis::sparsity_heatmap(&tw_masks[0].to_pattern_mask(), grid)),
    ]
}

/// One point of the Fig. 14 Pareto plot.
#[derive(Clone, Debug)]
pub struct Fig14Row {
    /// Model name.
    pub model: String,
    /// Which execution unit the speedup is measured on.
    pub core: &'static str,
    /// Pattern label.
    pub pattern: String,
    /// Target sparsity of this point.
    pub sparsity: f64,
    /// Task metric.
    pub metric: f64,
    /// GEMM latency speedup over the dense baseline on the same unit.
    pub speedup: f64,
}

/// Fig. 14: the latency-accuracy trade-off of TW versus BW on tensor cores
/// and versus EW/VW on CUDA cores, for BERT, VGG and NMT.
pub fn fig14_pareto(sparsities: &[f64]) -> Vec<Fig14Row> {
    let mut rows = Vec::new();
    for kind in [ModelKind::BertBase, ModelKind::Vgg16, ModelKind::Nmt] {
        let h = ModelEvaluation::with_divisor(kind, FIGURE_SEED, FIGURE_DIVISOR);
        let tensor = ExecutionConfig::optimized(CoreKind::TensorCore);
        let cuda = ExecutionConfig::optimized(CoreKind::CudaCore);
        for &s in sparsities {
            for (pattern, cfg, core) in [
                (PruningPattern::TileWise { granularity: 128 }, &tensor, "tensor"),
                (PruningPattern::BlockWise { block_size: 32 }, &tensor, "tensor"),
                (PruningPattern::TileWise { granularity: 128 }, &cuda, "cuda"),
                (PruningPattern::ElementWise, &cuda, "cuda"),
                (PruningPattern::VectorWise { vector_size: 16 }, &cuda, "cuda"),
            ] {
                let r = h.evaluate(pattern, s, cfg);
                rows.push(Fig14Row {
                    model: kind.name().to_string(),
                    core,
                    pattern: pattern.label(),
                    sparsity: s,
                    metric: r.metric,
                    speedup: r.gemm_speedup(),
                });
            }
        }
    }
    rows
}

/// One bar of Fig. 15: the end-to-end latency breakdown of one optimisation
/// configuration.
#[derive(Clone, Debug)]
pub struct Fig15Row {
    /// Model name.
    pub model: String,
    /// Configuration label.
    pub config: &'static str,
    /// Time in GEMM kernels (ms).
    pub gemm_ms: f64,
    /// Time in transpose kernels (ms).
    pub transpose_ms: f64,
    /// Time in all other kernels (ms).
    pub others_ms: f64,
}

/// Fig. 15: end-to-end latency breakdown of the 75%-sparsity TW model under
/// (dense baseline, no transpose, transpose only, transpose + fusion) for
/// BERT and NMT.
pub fn fig15_breakdown() -> Vec<Fig15Row> {
    let mut rows = Vec::new();
    for kind in [ModelKind::BertBase, ModelKind::Nmt] {
        let h = ModelEvaluation::with_divisor(kind, FIGURE_SEED, FIGURE_DIVISOR);
        let pattern = PruningPattern::TileWise { granularity: 128 };
        let dense_cfg = ExecutionConfig {
            fuse_non_gemm: true,
            ..ExecutionConfig::optimized(CoreKind::TensorCore)
        };
        let dense = h.dense_run(&dense_cfg);

        let configs: [(&'static str, ExecutionConfig); 3] = [
            (
                "w/o transpose",
                ExecutionConfig {
                    transpose: TransposeStrategy::None,
                    fuse_non_gemm: false,
                    ..ExecutionConfig::optimized(CoreKind::TensorCore)
                },
            ),
            (
                "transpose only",
                ExecutionConfig {
                    transpose: TransposeStrategy::PerGemm,
                    fuse_non_gemm: false,
                    ..ExecutionConfig::optimized(CoreKind::TensorCore)
                },
            ),
            ("transpose & fusion", ExecutionConfig::optimized(CoreKind::TensorCore)),
        ];

        rows.push(Fig15Row {
            model: kind.name().to_string(),
            config: "dense",
            gemm_ms: ExecutionPlanner::gemm_time(&dense) * 1e3,
            transpose_ms: ExecutionPlanner::transpose_time(&dense) * 1e3,
            others_ms: ExecutionPlanner::other_time(&dense) * 1e3,
        });
        for (label, cfg) in configs {
            let r = h.evaluate(pattern, 0.75, &cfg);
            rows.push(Fig15Row {
                model: kind.name().to_string(),
                config: label,
                gemm_ms: ExecutionPlanner::gemm_time(&r.counters) * 1e3,
                transpose_ms: ExecutionPlanner::transpose_time(&r.counters) * 1e3,
                others_ms: ExecutionPlanner::other_time(&r.counters) * 1e3,
            });
        }
    }
    rows
}

/// The headline comparison: GEMM speedup of every pattern at the
/// iso-accuracy sparsity the paper uses (BERT < 3% drop, VGG < 1% drop,
/// NMT < 1 BLEU drop), averaged over the three models.
#[derive(Clone, Debug)]
pub struct HeadlineRow {
    /// Pattern label.
    pub pattern: String,
    /// Average GEMM speedup on tensor cores.
    pub tensor_speedup: f64,
    /// Average GEMM speedup on CUDA cores.
    pub cuda_speedup: f64,
}

/// Reproduces the headline claim: "TW achieves an average speedup of 1.95x
/// [on tensor cores] ... 2.86x [on CUDA cores] while other patterns cause an
/// actual slowdown".
pub fn headline_speedups() -> Vec<HeadlineRow> {
    let patterns = [
        PruningPattern::TileWise { granularity: 128 },
        PruningPattern::BlockWise { block_size: 32 },
        PruningPattern::ElementWise,
        PruningPattern::VectorWise { vector_size: 16 },
    ];
    // Iso-accuracy sparsities per (model, pattern): EW can be pruned harder
    // than the structured patterns at the same accuracy budget.
    let sparsity_for = |pattern: &PruningPattern, kind: ModelKind| -> f64 {
        let base: f64 = match kind {
            ModelKind::Nmt => 0.65,
            _ => 0.75,
        };
        match pattern {
            PruningPattern::ElementWise => (base + 0.10).min(0.9),
            PruningPattern::VectorWise { .. } => base,
            PruningPattern::BlockWise { .. } => (base - 0.10).max(0.3),
            _ => base,
        }
    };

    let mut rows = Vec::new();
    for pattern in patterns {
        let mut tensor_speedups = Vec::new();
        let mut cuda_speedups = Vec::new();
        for kind in [ModelKind::BertBase, ModelKind::Vgg16, ModelKind::Nmt] {
            let h = ModelEvaluation::with_divisor(kind, FIGURE_SEED, FIGURE_DIVISOR);
            let s = sparsity_for(&pattern, kind);
            let rt = h.evaluate(pattern, s, &ExecutionConfig::optimized(CoreKind::TensorCore));
            let rc = h.evaluate(pattern, s, &ExecutionConfig::optimized(CoreKind::CudaCore));
            tensor_speedups.push(rt.gemm_speedup());
            cuda_speedups.push(rc.gemm_speedup());
        }
        rows.push(HeadlineRow {
            pattern: pattern.label(),
            tensor_speedup: mean(&tensor_speedups),
            cuda_speedup: mean(&cuda_speedups),
        });
    }
    rows
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig05_has_72_uneven_values() {
        let per = fig05_per_layer_sparsity();
        assert_eq!(per.len(), 72);
        let min = per.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.15, "per-layer sparsity should be uneven: {min}..{max}");
        let mean = per.iter().sum::<f64>() / 72.0;
        assert!((mean - 0.75).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn fig06_tw_row_vector_dominates_large_blocks() {
        let series = fig06_zero_cdf();
        assert_eq!(series.len(), 3);
        let get = |label: &str| {
            series
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("missing series {label}"))
        };
        // Fraction of units that are fully zero = 1 - CDF just below 1.0.
        let fully_zero = |s: &Fig6Series| 1.0 - s.points[19].1;
        let tw = fully_zero(get("tw-g64"));
        let bw32 = fully_zero(get("bw32x32"));
        assert!(
            tw >= bw32,
            "TW row vectors ({tw}) should capture at least as many fully-zero units as 32x32 blocks ({bw32})"
        );
        // Every series is a valid CDF ending at 1.
        for s in &series {
            assert!((s.points.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fig13_heatmaps_have_requested_grid_and_target_mean() {
        let maps = fig13_heatmaps(8);
        assert_eq!(maps.len(), 4);
        for (label, grid) in &maps {
            assert_eq!(grid.len(), 8, "{label}");
            let mean: f64 =
                grid.iter().flatten().sum::<f64>() / (grid.len() * grid[0].len()) as f64;
            // VW enforces exactly 75% everywhere; the global patterns vary
            // per matrix, so allow a wide band around the global target.
            assert!((0.3..=1.0).contains(&mean), "{label}: mean cell sparsity {mean}");
        }
    }
}
