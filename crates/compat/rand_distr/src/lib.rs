//! Offline stand-in for the `rand_distr` crate: [`Normal`] and
//! [`LogNormal`] over `f32` / `f64`, sampled with Box-Muller.  Only the
//! constructors and the [`Distribution`] impls the workspace uses are
//! provided.

pub use rand::distributions::Distribution;
use rand::{Rng, RngCore};

/// Parameter error returned by the distribution constructors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// Float scalar the distributions are generic over.
pub trait DistrFloat: Copy {
    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
}

impl DistrFloat for f32 {
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl DistrFloat for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
}

/// One standard-normal sample via Box-Muller (in `f64` precision).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1]: avoid ln(0).
    let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
    let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The normal distribution `N(mean, std_dev^2)`.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl<F: DistrFloat> Normal<F> {
    /// Creates a normal distribution; fails on a negative or NaN standard
    /// deviation.
    pub fn new(mean: F, std_dev: F) -> Result<Self, Error> {
        let sd = std_dev.to_f64();
        if sd.is_nan() || sd < 0.0 {
            return Err(Error);
        }
        Ok(Self { mean, std_dev })
    }
}

impl<F: DistrFloat> Distribution<F> for Normal<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * standard_normal(rng))
    }
}

/// The log-normal distribution: `exp(N(mu, sigma^2))`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal<F> {
    norm: Normal<F>,
}

impl<F: DistrFloat> LogNormal<F> {
    /// Creates a log-normal distribution with the given underlying normal
    /// parameters; fails on a negative or NaN sigma.
    pub fn new(mu: F, sigma: F) -> Result<Self, Error> {
        Ok(Self { norm: Normal::new(mu, sigma)? })
    }
}

impl<F: DistrFloat> Distribution<F> for LogNormal<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.norm.sample(rng).to_f64().exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let dist = Normal::new(2.0f64, 3.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "variance {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(12);
        let dist = LogNormal::new(0.0f64, 0.8).unwrap();
        assert!((0..1000).all(|_| dist.sample(&mut rng) > 0.0));
    }

    #[test]
    fn negative_sigma_rejected() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(LogNormal::new(0.0f64, f64::NAN).is_err());
    }
}
