//! Offline stand-in for the `rand` crate.
//!
//! The reproduction environment builds without a crates.io mirror, so this
//! workspace vendors the tiny slice of the `rand 0.8` API the other crates
//! actually use: a seedable [`rngs::StdRng`], the [`Rng`] extension methods
//! `gen_range` / `gen_bool`, [`seq::SliceRandom::shuffle`] and the
//! [`distributions::Distribution`] trait.  The generator is SplitMix64 —
//! deterministic, fast and statistically adequate for synthetic test data;
//! it makes no attempt to be reproducible bit-for-bit with upstream `rand`.

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit resolution.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

signed_sample_range!(i64: u64, i32: u32, i16: u16, i8: u8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                let value = self.start + (self.end - self.start) * unit;
                // `unit` is < 1 in f64, but narrowing to f32 (or the final
                // fma rounding) can land exactly on `end`; keep the range
                // half-open.
                if value < self.end {
                    value
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: one u64 of state, passes BigCrush-level smoke tests and
    /// is more than random enough for synthetic weights and test inputs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix so that nearby seeds do not yield correlated streams.
            let mut rng = StdRng { state: state ^ 0x5DEE_CE66_D123_4567 };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// The `Distribution` trait, matching `rand::distributions`.
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// Slice helpers, matching `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher-Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits} / 10000 at p = 0.3");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should reorder 50 elements");
    }
}
