//! Offline stand-in for `proptest`: deterministic randomized testing with
//! the same source-level API the workspace's property tests use.
//!
//! Supported surface: the `proptest!` macro (with an optional
//! `#![proptest_config(..)]` inner attribute), `prop_assert!` /
//! `prop_assert_eq!`, range and tuple strategies, `any::<T>()` and
//! [`Strategy::prop_map`].  Unlike upstream proptest there is no shrinking:
//! a failing case panics with its case number, and the run is fully
//! deterministic (the RNG is seeded from the test's module path and case
//! index), so failures reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything a property test module needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length bounds accepted by [`fn@vec`].
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn into_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn into_bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn into_bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn into_bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in bounds.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// A vector strategy with element strategy `elem` and the given length
    /// bounds.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.into_bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Number of cases to run per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property-test assertion.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps an assertion failure message.
    pub fn fail(message: String) -> Self {
        Self { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// The RNG driving strategy generation.
pub type TestRng = StdRng;

/// Deterministic per-(test, case) RNG so failures reproduce exactly.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash ^ ((case as u64) << 32 | case as u64))
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy producing `f(value)`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u16, u8, i64, i32, f32, f64);

macro_rules! range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_inclusive_strategy!(usize, u64, u32, u16, u8);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

int_arbitrary!(u64, u32, u16, u8, usize, i64, i32, i16, i8);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1.0e12f64..1.0e12)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Property-failure assertion; only valid inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left_val, right_val) = (&$left, &$right);
        $crate::prop_assert!(
            left_val == right_val,
            "assertion failed: `{:?} == {:?}`",
            left_val,
            right_val
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::test_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..17, b in 0.25f64..0.75, c in 1usize..=4) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((0.25..0.75).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn tuples_and_map_compose(pair in (1usize..8, 1usize..8).prop_map(|(x, y)| x * y)) {
            prop_assert!((1..64).contains(&pair));
        }

        #[test]
        fn any_u64_varies(seed in any::<u64>()) {
            let parity = seed % 2;
            prop_assert!(parity < 2);
            prop_assert_eq!(seed / 2 * 2 + parity, seed);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = super::test_rng("x::y", 3);
        let mut b = super::test_rng("x::y", 3);
        assert_eq!(rand::RngCore::next_u64(&mut a), rand::RngCore::next_u64(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(v in 0usize..10) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
